//! Data-race detection for `omp parallel for` insertion.
//!
//! A loop may be executed in parallel iff no dependence is carried by it:
//! with the candidate loop as the analysis root, every dependence whose
//! outermost carrier is level 0 crosses two different iterations and
//! therefore two different threads. The detector reports each such pair
//! as a [`Race`] and classifies a *suggested fix*:
//!
//! * scalars updated only by `s = s ⊕ expr` / `s ⊕= expr` are reduction
//!   idioms — legal under an OpenMP `reduction(⊕:s)` clause;
//! * scalars written (plainly, unconditionally) before every use in each
//!   iteration are privatizable — legal under `private(s)`, assuming the
//!   value is not live-out of the loop;
//! * everything else (in particular loop-carried array recurrences such
//!   as `A[i] = A[i-1] + ...`) is refused.
//!
//! The detector is strip-mine aware: when the candidate is a *tile* loop
//! (whose variable appears in no subscript and would test as `*` at
//! every level), the nest is first coalesced back into its pre-tiling
//! form — see the `detile` module — so `omp parallel for` on the outer
//! tile loop of a tiled kernel is judged by the dependences of the
//! original loop, exactly as the paper's Fig. 7 space requires.

use std::fmt;

use locus_analysis::deps::{analyze_region, DepKind, Direction};
use locus_srcir::ast::{BinOp, Expr, Stmt, StmtKind};
use locus_srcir::visit::{walk_exprs, walk_exprs_in_stmt};

use crate::Verdict;

/// The remedy the detector suggests for one detected race.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceFix {
    /// Every touch of the scalar is the same reduction update; an OpenMP
    /// `reduction` clause over `op` makes the loop legal.
    Reduction {
        /// The reduced scalar.
        var: String,
        /// The (associative) combining operator.
        op: BinOp,
    },
    /// The scalar is written before it is used in each iteration; a
    /// `private` clause makes the loop legal (provided the value is not
    /// live-out).
    Privatize {
        /// The privatizable scalar.
        var: String,
    },
    /// No clause fixes this race; parallelizing the loop is refused.
    Refuse,
}

/// One dependence carried by the candidate parallel loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// Index of the source statement (region statement order).
    pub src_stmt: usize,
    /// Index of the destination statement.
    pub dst_stmt: usize,
    /// The array or scalar both statements touch.
    pub array: String,
    /// Kind of the carried dependence.
    pub kind: DepKind,
    /// Direction vector, outermost loop first.
    pub directions: Vec<Direction>,
    /// Suggested remedy.
    pub fix: RaceFix,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dirs: Vec<String> = self.directions.iter().map(|d| d.to_string()).collect();
        write!(
            f,
            "{:?} dependence on `{}` S{} -> S{} carried by the parallel loop, directions ({})",
            self.kind,
            self.array,
            self.src_stmt,
            self.dst_stmt,
            dirs.join(", ")
        )?;
        match &self.fix {
            RaceFix::Reduction { var, op } => {
                write!(f, "; fix: reduction({}:{var}) clause", op.symbol())
            }
            RaceFix::Privatize { var } => write!(f, "; fix: private({var}) clause"),
            RaceFix::Refuse => write!(f, "; no fixing clause — refuse"),
        }
    }
}

/// The full race analysis of one candidate `omp parallel for` loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// `false` when the dependence analysis could not model the loop
    /// (non-affine subscripts, opaque pointer writes); parallelization is
    /// then refused conservatively.
    pub available: bool,
    /// `true` when every dependence behind this report was decided by
    /// the exact polyhedral engine; `false` when at least one verdict
    /// fell back to the conservative direction enumeration (or the
    /// analysis was unavailable altogether).
    pub exact: bool,
    /// All dependences carried by the candidate loop.
    pub races: Vec<Race>,
}

impl RaceReport {
    /// `true` when the loop may be parallelized: the analysis succeeded
    /// and every carried dependence has a fixing clause.
    ///
    /// The fixes are *prescriptive*: the emitted pragma must actually
    /// carry each named `reduction`/`private` clause, or the loop races
    /// anyway. `legality::parallel_for_clauses` computes the clause
    /// list for the insertion path (and additionally refuses
    /// privatization of live-out scalars, which this loop-local report
    /// cannot see).
    pub fn is_parallelizable(&self) -> bool {
        self.available && self.races.iter().all(|r| r.fix != RaceFix::Refuse)
    }

    /// Folds the report into a [`Verdict`], refusing on the first race
    /// without a fixing clause.
    pub fn verdict(&self) -> Verdict {
        if !self.available {
            return Verdict::illegal("dependence information unavailable");
        }
        let marker = if self.exact { " [exact]" } else { "" };
        match self.races.iter().find(|r| r.fix == RaceFix::Refuse) {
            Some(r) => Verdict::illegal(format!("data race: {r}{marker}")),
            None => Verdict::Legal,
        }
    }
}

/// Analyzes `loop_stmt` as a candidate `omp parallel for` target.
///
/// The loop itself becomes the root of the analyzed nest, so "carried at
/// level 0" means carried by exactly the loop whose iterations would run
/// concurrently. Non-loops and unanalyzable regions yield an unavailable
/// report (conservatively not parallelizable).
pub fn analyze_parallel_for(loop_stmt: &Stmt) -> RaceReport {
    if !loop_stmt.is_for() {
        return RaceReport {
            available: false,
            exact: false,
            races: Vec::new(),
        };
    }
    // Tiled nests: coalesce strip-mined pairs so the tile loop's race
    // question becomes the level-0 question of the pre-tiling nest.
    let coalesced = crate::detile::coalesce_strip_mines(loop_stmt);
    let region = coalesced.as_ref().unwrap_or(loop_stmt);
    let info = analyze_region(region);
    if !info.available {
        return RaceReport {
            available: false,
            exact: false,
            races: Vec::new(),
        };
    }
    let races = info
        .deps
        .iter()
        .filter(|d| d.carrier_level() == Some(0))
        .map(|d| Race {
            src_stmt: d.src_stmt,
            dst_stmt: d.dst_stmt,
            array: d.array.clone(),
            kind: d.kind,
            directions: d.directions.clone(),
            fix: suggest_fix(region, &d.array),
        })
        .collect();
    RaceReport {
        available: true,
        exact: info.exact,
        races,
    }
}

/// How one statement of the loop body touches a given scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Usage {
    /// `s = s ⊕ expr` or `s ⊕= expr`, `expr` not reading `s`.
    Reduction(BinOp),
    /// `s = expr`, `expr` not reading `s`; `top` records whether the
    /// write sits straight-line at the top level of the loop body (and
    /// therefore dominates the rest of the iteration).
    PlainWrite {
        /// Unconditional, top-of-body write.
        top: bool,
    },
    /// Any other touch (read-before-write, conditional use, ...).
    Other,
}

/// Classifies the fix for a carried dependence on `name` inside the body
/// of the candidate loop. Arrays are never fixable by a clause.
fn suggest_fix(loop_stmt: &Stmt, name: &str) -> RaceFix {
    let mut subscripted = false;
    walk_exprs_in_stmt(loop_stmt, &mut |e| {
        if let Some((base, _)) = e.as_array_access() {
            if base == name {
                subscripted = true;
            }
        }
    });
    if subscripted {
        return RaceFix::Refuse;
    }

    let body = &loop_stmt.as_for().expect("candidate is a loop").body;
    let mut usages = Vec::new();
    collect_usages(body, name, true, &mut usages);
    if usages.is_empty() {
        return RaceFix::Refuse;
    }

    let mut ops = usages.iter().filter_map(|u| match u {
        Usage::Reduction(op) => Some(*op),
        _ => None,
    });
    if let Some(first) = ops.next() {
        if usages.iter().all(|u| matches!(u, Usage::Reduction(_))) && ops.all(|op| op == first) {
            return RaceFix::Reduction {
                var: name.to_string(),
                op: first,
            };
        }
    }
    if matches!(usages.first(), Some(Usage::PlainWrite { top: true })) {
        return RaceFix::Privatize {
            var: name.to_string(),
        };
    }
    RaceFix::Refuse
}

/// Walks the loop body in the same pre-order the dependence analysis
/// uses, recording how each statement touches `name`. `top` is true only
/// while we are in straight-line code directly under the parallel loop.
fn collect_usages(stmt: &Stmt, name: &str, top: bool, out: &mut Vec<Usage>) {
    let mentions = |e: &Expr| {
        let mut found = false;
        walk_exprs(e, &mut |x| {
            if matches!(x, Expr::Ident(n) if n == name) {
                found = true;
            }
        });
        found
    };
    match &stmt.kind {
        StmtKind::Expr(e) => {
            if mentions(e) {
                out.push(classify_expr(e, name, top));
            }
        }
        StmtKind::Decl { dims, init, .. } => {
            if init.as_ref().is_some_and(&mentions) || dims.iter().any(&mentions) {
                out.push(Usage::Other);
            }
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                collect_usages(s, name, top, out);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            if mentions(cond) {
                out.push(Usage::Other);
            }
            collect_usages(then_branch, name, false, out);
            if let Some(e) = else_branch {
                collect_usages(e, name, false, out);
            }
        }
        StmtKind::For(f) => {
            if let Some(init) = &f.init {
                collect_usages(init, name, false, out);
            }
            if f.cond.as_ref().is_some_and(&mentions) || f.step.as_ref().is_some_and(&mentions) {
                out.push(Usage::Other);
            }
            collect_usages(&f.body, name, false, out);
        }
        StmtKind::While { cond, body } => {
            if mentions(cond) {
                out.push(Usage::Other);
            }
            collect_usages(body, name, false, out);
        }
        StmtKind::Return(Some(e)) => {
            if mentions(e) {
                out.push(Usage::Other);
            }
        }
        StmtKind::Return(None) | StmtKind::Empty => {}
    }
}

/// Classifies one expression statement that mentions `name`.
fn classify_expr(e: &Expr, name: &str, top: bool) -> Usage {
    let reads = |e: &Expr| {
        let mut found = false;
        walk_exprs(e, &mut |x| {
            if matches!(x, Expr::Ident(n) if n == name) {
                found = true;
            }
        });
        found
    };
    if let Expr::Assign { op, lhs, rhs } = e {
        if matches!(lhs.as_ref(), Expr::Ident(n) if n == name) {
            // Compound update `s ⊕= expr`.
            if let Some(bin) = op.to_bin_op() {
                if reduction_op(bin) && !reads(rhs) {
                    return Usage::Reduction(bin);
                }
                return Usage::Other;
            }
            // Plain `s = s ⊕ expr` (or `s = expr ⊕ s` for commutative ⊕).
            if let Expr::Binary {
                op: bin,
                lhs: a,
                rhs: b,
            } = rhs.as_ref()
            {
                if reduction_op(*bin) {
                    let a_is_s = matches!(a.as_ref(), Expr::Ident(n) if n == name);
                    let b_is_s = matches!(b.as_ref(), Expr::Ident(n) if n == name);
                    if a_is_s && !reads(b) {
                        return Usage::Reduction(*bin);
                    }
                    if b_is_s && !reads(a) && commutative(*bin) {
                        return Usage::Reduction(*bin);
                    }
                }
            }
            if !reads(rhs) {
                return Usage::PlainWrite { top };
            }
        }
    }
    Usage::Other
}

/// Operators OpenMP reduction clauses support (of the subset mini-C has).
fn reduction_op(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul)
}

fn commutative(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Mul)
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn independent_loop_is_parallelizable() {
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < n; i++)
                A[i] = B[i] * 2.0;
            }"#,
        ));
        assert!(report.available);
        assert!(report.races.is_empty());
        assert!(report.is_parallelizable());
        assert_eq!(report.verdict(), Verdict::Legal);
    }

    #[test]
    fn refuses_loop_carried_recurrence() {
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 1; i < n; i++)
                A[i] = A[i - 1] + 1.0;
            }"#,
        ));
        assert!(report.available);
        assert!(!report.is_parallelizable());
        let race = report
            .races
            .iter()
            .find(|r| r.fix == RaceFix::Refuse)
            .expect("a refused race");
        assert_eq!(race.array, "A");
        assert_eq!(race.kind, DepKind::Flow);
        assert_eq!(race.directions, vec![Direction::Lt]);
        assert!(report.verdict().reason().unwrap().contains("data race"));
    }

    #[test]
    fn recognizes_scalar_sum_reduction() {
        for src in [
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = s + A[i];
            }"#,
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s += A[i];
            }"#,
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = A[i] + s;
            }"#,
        ] {
            let report = analyze_parallel_for(&region(src));
            assert!(report.available);
            assert!(!report.races.is_empty(), "scalar dep must be reported");
            assert!(report.is_parallelizable(), "reduction is fixable: {src}");
            assert!(report.races.iter().all(|r| matches!(
                &r.fix,
                RaceFix::Reduction { var, op: BinOp::Add } if var == "s"
            )));
        }
    }

    #[test]
    fn recognizes_product_reduction_but_not_division() {
        let prod = analyze_parallel_for(&region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = s * A[i];
            }"#,
        ));
        assert!(prod.is_parallelizable());

        // `s = s / A[i]` is not associative; refuse.
        let div = analyze_parallel_for(&region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = s / A[i];
            }"#,
        ));
        assert!(div.available);
        assert!(!div.is_parallelizable());
    }

    #[test]
    fn subtraction_reduction_only_on_the_left() {
        // `s = s - A[i]` is a sum of negatives; `s = A[i] - s` is not.
        let ok = analyze_parallel_for(&region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = s - A[i];
            }"#,
        ));
        assert!(ok.is_parallelizable());
        let bad = analyze_parallel_for(&region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s = A[i] - s;
            }"#,
        ));
        assert!(!bad.is_parallelizable());
    }

    #[test]
    fn mixed_operator_updates_are_refused() {
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++) {
                s = s + A[i];
                s = s * 2.0;
            }
            }"#,
        ));
        assert!(report.available);
        assert!(!report.is_parallelizable());
    }

    #[test]
    fn recognizes_privatizable_scalar() {
        // `t` is written (top of body, unconditionally) before every use.
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double t, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                t = A[i] * 2.0;
                B[i] = t + 1.0;
            }
            }"#,
        ));
        assert!(report.available);
        assert!(!report.races.is_empty());
        assert!(report.is_parallelizable());
        assert!(report
            .races
            .iter()
            .all(|r| matches!(&r.fix, RaceFix::Privatize { var } if var == "t")));
    }

    #[test]
    fn conditional_first_write_is_not_privatizable() {
        // The write does not dominate the read: refuse.
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double t, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                if (A[i] > 0.0) { t = A[i]; }
                B[i] = t + 1.0;
            }
            }"#,
        ));
        assert!(report.available);
        assert!(!report.is_parallelizable());
    }

    #[test]
    fn read_before_write_scalar_is_refused() {
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double t, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                B[i] = t + 1.0;
                t = A[i];
            }
            }"#,
        ));
        assert!(report.available);
        assert!(!report.is_parallelizable());
    }

    #[test]
    fn matmul_outer_loop_is_parallelizable() {
        // C[i][j] accumulation is carried by k, not by i.
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        ));
        assert!(report.available);
        assert!(report.races.is_empty());
        assert!(report.is_parallelizable());
    }

    #[test]
    fn matmul_k_loop_is_racy() {
        // With the k loop as the parallel candidate, the C accumulation
        // is carried at level 0 and C is an array: refuse.
        let root = region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        );
        let k_loop = locus_srcir::HierIndex::new(vec![0, 0, 0])
            .resolve(&root)
            .unwrap();
        let report = analyze_parallel_for(k_loop);
        assert!(report.available);
        assert!(!report.is_parallelizable());
        assert!(report.races.iter().any(|r| r.array == "C"));
    }

    #[test]
    fn tiled_independent_loop_is_parallelizable() {
        // The omp target is the *tile* loop: its variable appears in no
        // subscript, so only the strip-mine coalescing makes this legal.
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i_t = 0; i_t < n; i_t += 8)
                for (int i = i_t; i < min(n, i_t + 8); i++)
                    A[i] = B[i] * 2.0;
            }"#,
        ));
        assert!(report.available);
        assert!(report.races.is_empty());
        assert!(report.is_parallelizable());
    }

    #[test]
    fn tiled_recurrence_is_still_refused() {
        // Coalescing must not hide a genuine cross-tile recurrence.
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double A[64]) {
            for (int i_t = 1; i_t < n; i_t += 8)
                for (int i = i_t; i < min(n, i_t + 8); i++)
                    A[i] = A[i - 1] + 1.0;
            }"#,
        ));
        assert!(report.available);
        assert!(!report.is_parallelizable());
    }

    #[test]
    fn unguarded_exact_tiling_is_parallelizable() {
        // No remainder guard, but 64 divides by the tile width 8, so
        // the nest never overruns and coalescing is exact.
        let report = analyze_parallel_for(&region(
            r#"void f(double A[64], double B[64]) {
            for (int i_t = 0; i_t < 64; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = B[i] * 2.0;
            }"#,
        ));
        assert!(report.available);
        assert!(report.is_parallelizable());
    }

    #[test]
    fn unguarded_tile_overrun_dependences_are_not_missed() {
        // Tile bound 60 with width 8: the unguarded nest executes i up
        // to 63, and the A[i] / A[i + 60] pair only conflicts in those
        // overrun iterations — coalescing back to bound 60 would
        // wrongly approve the loop.
        let report = analyze_parallel_for(&region(
            r#"void f(double A[128]) {
            for (int i_t = 0; i_t < 60; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = A[i + 60] + 1.0;
            }"#,
        ));
        assert!(!report.is_parallelizable());
    }

    #[test]
    fn unguarded_tiling_with_symbolic_bounds_is_judged_conservatively() {
        // With a symbolic tile bound the overrun extent past `n` is
        // unknown, so the pair is not coalesced; the recurrence is then
        // refused through the uncoalesced nest's `*` direction at the
        // tile level.
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double A[64]) {
            for (int i_t = 1; i_t < n; i_t += 8)
                for (int i = i_t; i < i_t + 8; i++)
                    A[i] = A[i - 1] + 1.0;
            }"#,
        ));
        assert!(report.available);
        assert!(!report.is_parallelizable());
    }

    #[test]
    fn nonaffine_subscripts_are_refused_conservatively() {
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double A[64], int idx[64]) {
            for (int i = 0; i < n; i++)
                A[idx[i]] = 1.0;
            }"#,
        ));
        assert!(!report.available);
        assert!(!report.is_parallelizable());
        assert_eq!(
            report.verdict(),
            Verdict::illegal("dependence information unavailable")
        );
    }

    #[test]
    fn non_loop_statement_is_refused() {
        let stmt = Stmt::new(StmtKind::Empty);
        assert!(!analyze_parallel_for(&stmt).is_parallelizable());
    }

    #[test]
    fn race_display_names_the_fix() {
        let report = analyze_parallel_for(&region(
            r#"void f(int n, double s, double A[64]) {
            for (int i = 0; i < n; i++)
                s += A[i];
            }"#,
        ));
        let text = report.races[0].to_string();
        assert!(text.contains("reduction(+:s)"), "{text}");
    }
}
