//! IR well-formedness validation.
//!
//! Two entry points with two audiences:
//!
//! * [`validate_region`] judges a single region root after a
//!   transformation step — it is cheap and is run after every applied
//!   step during tuning in debug builds, catching transformations that
//!   silently produce nonsense (duplicate pragma kinds, loop pragmas on
//!   non-loops, a parallel loop whose bounds no longer canonicalize).
//! * [`validate_program`] judges a whole parsed translation unit — used
//!   by the `locus-lint` binary, it additionally checks every identifier
//!   against the scopes that declare it (globals, parameters, locals,
//!   loop induction variables).

use std::mem::discriminant;

use locus_analysis::loops::canonicalize;
use locus_srcir::ast::{Expr, Function, Item, Pragma, Program, Stmt, StmtKind};
use locus_srcir::visit::{walk_exprs, walk_stmts};

/// Validates the region rooted at `root`, returning one human-readable
/// issue per defect found (empty = well-formed).
pub fn validate_region(root: &Stmt) -> Vec<String> {
    let mut issues = Vec::new();
    walk_stmts(root, &mut |stmt| {
        for (i, pragma) in stmt.pragmas.iter().enumerate() {
            if loop_only(pragma) && !stmt.is_for() {
                issues.push(format!(
                    "pragma `{}` attached to a non-loop statement",
                    pragma_name(pragma)
                ));
            }
            if !matches!(pragma, Pragma::Raw(_))
                && stmt.pragmas[..i]
                    .iter()
                    .any(|p| discriminant(p) == discriminant(pragma))
            {
                issues.push(format!(
                    "duplicate `{}` pragmas on one statement",
                    pragma_name(pragma)
                ));
            }
        }
        if stmt.is_for()
            && stmt
                .pragmas
                .iter()
                .any(|p| matches!(p, Pragma::OmpParallelFor { .. }))
            && canonicalize(stmt).is_none()
        {
            issues.push("`omp parallel for` on a loop with non-canonical bounds".to_string());
        }
    });
    issues
}

/// Validates a whole parsed program: every region check of
/// [`validate_region`] plus undefined-variable detection with proper
/// scoping.
pub fn validate_program(program: &Program) -> Vec<String> {
    let mut issues = Vec::new();
    let mut globals = Vec::new();
    for item in &program.items {
        if let Item::Global(stmt) = item {
            if let StmtKind::Decl { name, .. } = &stmt.kind {
                globals.push(name.clone());
            }
        }
    }
    for function in program.functions() {
        check_function(function, &globals, &mut issues);
    }
    issues
}

fn check_function(function: &Function, globals: &[String], issues: &mut Vec<String>) {
    let mut scopes: Vec<Vec<String>> = vec![globals.to_vec()];
    scopes.push(function.params.iter().map(|p| p.name.clone()).collect());
    scopes.push(Vec::new());
    for stmt in &function.body {
        check_stmt(stmt, &mut scopes, &function.name, issues);
        for issue in validate_region(stmt) {
            issues.push(format!("{}: {issue}", function.name));
        }
    }
}

fn check_stmt(stmt: &Stmt, scopes: &mut Vec<Vec<String>>, fname: &str, issues: &mut Vec<String>) {
    match &stmt.kind {
        StmtKind::Expr(e) => check_expr(e, scopes, fname, issues),
        StmtKind::Decl {
            name, dims, init, ..
        } => {
            for d in dims {
                check_expr(d, scopes, fname, issues);
            }
            if let Some(init) = init {
                check_expr(init, scopes, fname, issues);
            }
            scopes.last_mut().expect("scope stack").push(name.clone());
        }
        StmtKind::Block(stmts) => {
            scopes.push(Vec::new());
            for s in stmts {
                check_stmt(s, scopes, fname, issues);
            }
            scopes.pop();
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            check_expr(cond, scopes, fname, issues);
            scopes.push(Vec::new());
            check_stmt(then_branch, scopes, fname, issues);
            scopes.pop();
            if let Some(e) = else_branch {
                scopes.push(Vec::new());
                check_stmt(e, scopes, fname, issues);
                scopes.pop();
            }
        }
        StmtKind::For(f) => {
            scopes.push(Vec::new());
            if let Some(init) = &f.init {
                check_stmt(init, scopes, fname, issues);
            }
            if let Some(cond) = &f.cond {
                check_expr(cond, scopes, fname, issues);
            }
            if let Some(step) = &f.step {
                check_expr(step, scopes, fname, issues);
            }
            check_stmt(&f.body, scopes, fname, issues);
            scopes.pop();
        }
        StmtKind::While { cond, body } => {
            check_expr(cond, scopes, fname, issues);
            scopes.push(Vec::new());
            check_stmt(body, scopes, fname, issues);
            scopes.pop();
        }
        StmtKind::Return(Some(e)) => check_expr(e, scopes, fname, issues),
        StmtKind::Return(None) | StmtKind::Empty => {}
    }
}

fn check_expr(e: &Expr, scopes: &[Vec<String>], fname: &str, issues: &mut Vec<String>) {
    walk_exprs(e, &mut |x| {
        if let Expr::Ident(name) = x {
            if !scopes.iter().any(|s| s.iter().any(|n| n == name)) {
                issues.push(format!("{fname}: undefined variable `{name}`"));
            }
        }
    });
}

fn loop_only(pragma: &Pragma) -> bool {
    matches!(
        pragma,
        Pragma::LocusLoop(_) | Pragma::Ivdep | Pragma::VectorAlways | Pragma::OmpParallelFor { .. }
    )
}

fn pragma_name(pragma: &Pragma) -> &'static str {
    match pragma {
        Pragma::LocusLoop(_) => "@Locus loop",
        Pragma::LocusBlock(_) => "@Locus block",
        Pragma::Ivdep => "ivdep",
        Pragma::VectorAlways => "vector always",
        Pragma::OmpParallelFor { .. } => "omp parallel for",
        Pragma::Raw(_) => "raw",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    #[test]
    fn clean_program_has_no_issues() {
        let p = parse_program(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[i][j] = 0.0;
            }"#,
        )
        .unwrap();
        assert!(validate_program(&p).is_empty());
    }

    #[test]
    fn undefined_variable_is_reported() {
        let p = parse_program(
            r#"void f(int n, double A[8]) {
            for (int i = 0; i < n; i++)
                A[i] = x * 2.0;
            }"#,
        )
        .unwrap();
        let issues = validate_program(&p);
        assert!(
            issues.iter().any(|m| m.contains("undefined variable `x`")),
            "{issues:?}"
        );
    }

    #[test]
    fn scoped_locals_do_not_leak() {
        // `t` declared inside the first loop is not visible in the second.
        let p = parse_program(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++) {
                double t = A[i];
                A[i] = t;
            }
            for (int j = 0; j < n; j++)
                B[j] = t;
            }"#,
        )
        .unwrap();
        let issues = validate_program(&p);
        assert!(
            issues.iter().any(|m| m.contains("undefined variable `t`")),
            "{issues:?}"
        );
    }

    #[test]
    fn pragma_on_non_loop_is_reported() {
        let mut stmt = Stmt::expr(Expr::assign(Expr::ident("x"), Expr::int(1)));
        stmt.pragmas.push(Pragma::Ivdep);
        let issues = validate_region(&stmt);
        assert!(issues.iter().any(|m| m.contains("non-loop")), "{issues:?}");
    }

    #[test]
    fn duplicate_pragma_kind_is_reported() {
        let p = parse_program(
            r#"void f(int n, double A[8]) {
            for (int i = 0; i < n; i++)
                A[i] = 0.0;
            }"#,
        )
        .unwrap();
        let mut root = p.functions().next().unwrap().body[0].clone();
        root.pragmas.push(Pragma::OmpParallelFor {
            schedule: None,
            clauses: Vec::new(),
        });
        root.pragmas.push(Pragma::OmpParallelFor {
            schedule: Some(locus_srcir::ast::OmpSchedule {
                kind: locus_srcir::ast::OmpScheduleKind::Static,
                chunk: None,
            }),
            clauses: Vec::new(),
        });
        let issues = validate_region(&root);
        assert!(issues.iter().any(|m| m.contains("duplicate")), "{issues:?}");
    }

    #[test]
    fn omp_on_non_canonical_loop_is_reported() {
        let p = parse_program(
            r#"void f(int n, double A[8]) {
            for (int i = n; i > 0; i--)
                A[i] = 0.0;
            }"#,
        )
        .unwrap();
        let mut root = p.functions().next().unwrap().body[0].clone();
        root.pragmas.push(Pragma::OmpParallelFor {
            schedule: None,
            clauses: Vec::new(),
        });
        let issues = validate_region(&root);
        assert!(
            issues.iter().any(|m| m.contains("non-canonical")),
            "{issues:?}"
        );
    }
}
