//! The unified legality engine.
//!
//! Every transformation module used to carry its own ad-hoc
//! `check_legality` block; this module consolidates them behind one
//! question — *may this step be applied to this region?* — so that the
//! transforms, the search driver and the `locus-lint` binary all consult
//! the same dependence-based reasoning. The engine never mutates the
//! program: fusion legality, for instance, is judged on a privately
//! reconstructed fused candidate.

use locus_analysis::deps::{analyze_region, Dependence, DependenceInfo};
use locus_analysis::loops::{canonicalize, perfect_nest_loops, CanonLoop};
use locus_analysis::polyhedron::band_hull;
use locus_srcir::ast::{Expr, OmpClause, Pragma, Stmt, StmtKind};
use locus_srcir::index::HierIndex;
use locus_srcir::visit::{
    child, child_count, substitute_ident, walk_exprs, walk_exprs_in_stmt, walk_stmts,
};

use crate::races::{analyze_parallel_for, RaceFix};
use crate::Verdict;

/// One transformation step, described by what it does to the region —
/// the vocabulary the legality engine reasons over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformStep {
    /// Permute the perfect nest at the region root;
    /// `order[new_level] = old_level` over a prefix of the nest.
    Interchange {
        /// The permutation, old levels listed in their new order.
        order: Vec<usize>,
    },
    /// Tile the band of `width` perfectly nested loops at `target`.
    Tile {
        /// Root loop of the band.
        target: HierIndex,
        /// Number of band loops being tiled.
        width: usize,
    },
    /// Unroll the loop at `target` and jam the copies into its single
    /// inner loop.
    UnrollAndJam {
        /// The outer loop being unrolled.
        target: HierIndex,
    },
    /// Fuse the loop at `first` with its immediately following sibling.
    Fuse {
        /// The first of the two loops.
        first: HierIndex,
    },
    /// Distribute the loop at `target` over its body statements.
    Distribute {
        /// The loop being distributed.
        target: HierIndex,
    },
    /// Insert `#pragma omp parallel for` on the loop at `target`.
    ParallelFor {
        /// The candidate parallel loop.
        target: HierIndex,
    },
    /// Assert the loop at `target` free of loop-carried dependences
    /// (`#pragma ivdep` / vectorization).
    Vectorize {
        /// The candidate vector loop.
        target: HierIndex,
    },
}

/// Judges whether `step` may legally be applied to the region rooted at
/// `root`. The program is never modified.
///
/// Unavailable dependence information is always `Illegal("dependence
/// information unavailable")` — the engine is conservative, exactly like
/// the per-module checks it replaces. Callers that know better (the
/// paper's expert-override philosophy) skip the call entirely via their
/// `check_legality = false` flags.
pub fn legal(root: &Stmt, step: &TransformStep) -> Verdict {
    match step {
        TransformStep::Interchange { order } => interchange_verdict(root, order),
        TransformStep::Tile { target, width } => band_verdict(
            root,
            target,
            *width,
            "band is not fully permutable; tiling would reverse a dependence",
            BandShape::HullOk,
        ),
        TransformStep::UnrollAndJam { target } => band_verdict(
            root,
            target,
            2,
            "outer and inner loops are not permutable; jamming would reverse a dependence",
            BandShape::RectangularOnly,
        ),
        TransformStep::Fuse { first } => fuse_verdict(root, first),
        TransformStep::Distribute { target } => distribute_verdict(root, target),
        TransformStep::ParallelFor { target } => parallel_for_verdict(root, target),
        TransformStep::Vectorize { target } => vectorize_verdict(root, target),
    }
}

fn unavailable() -> Verdict {
    Verdict::illegal("dependence information unavailable")
}

/// A legality verdict unpacked for humans: what was decided, on which
/// engine's authority, which dependence forced a refusal, and the
/// iteration-domain constraints that were considered. Backs
/// `locus-lint --explain`.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The verdict [`legal`] returns for the same `(root, step)`.
    pub verdict: Verdict,
    /// `"exact"` when the region's dependence set was decided entirely by
    /// the polyhedral engine, `"conservative"` otherwise.
    pub provenance: &'static str,
    /// The offending dependence (rendered with its direction vector and
    /// per-dependence provenance), when the refusal is dependence-based.
    pub offending: Option<String>,
    /// The iteration-domain constraints, one per nest level, e.g.
    /// `0 <= j < i + 1`.
    pub domain: Vec<String>,
}

/// Judges `step` like [`legal`] and additionally reports the dependence
/// evidence behind the verdict.
pub fn explain(root: &Stmt, step: &TransformStep) -> Explanation {
    let verdict = legal(root, step);
    let region = match step {
        TransformStep::Interchange { .. } | TransformStep::Fuse { .. } => Some(root),
        TransformStep::Tile { target, .. }
        | TransformStep::UnrollAndJam { target }
        | TransformStep::Distribute { target }
        | TransformStep::ParallelFor { target }
        | TransformStep::Vectorize { target } => target.resolve(root).filter(|s| s.is_for()),
    };
    let Some(region) = region else {
        return Explanation {
            verdict,
            provenance: "conservative",
            offending: None,
            domain: Vec::new(),
        };
    };
    let info = analyze_region(region);
    let provenance = if info.available && info.exact {
        "exact"
    } else {
        "conservative"
    };
    let domain = perfect_nest_loops(region)
        .iter()
        .map(|l| {
            let mut s = format!(
                "{} <= {} < {}",
                locus_srcir::printer::print_expr(&l.lower),
                l.var,
                locus_srcir::printer::print_expr(&l.exclusive_upper()),
            );
            if l.step != 1 {
                s.push_str(&format!(" step {}", l.step));
            }
            s
        })
        .collect();
    let offending = offending_dep(&info, step).map(|d| d.to_string());
    Explanation {
        verdict,
        provenance,
        offending,
        domain,
    }
}

/// The first dependence that forces a refusal of `step`, found by
/// re-judging the step's legality predicate one dependence at a time.
fn offending_dep<'a>(info: &'a DependenceInfo, step: &TransformStep) -> Option<&'a Dependence> {
    if !info.available {
        return None;
    }
    let one = |d: &Dependence| DependenceInfo {
        available: true,
        loop_vars: info.loop_vars.clone(),
        deps: vec![d.clone()],
        stmt_count: info.stmt_count,
        exact: info.exact,
    };
    match step {
        TransformStep::Interchange { order } => {
            let full: Vec<usize> = order
                .iter()
                .copied()
                .chain(order.len()..info.loop_vars.len())
                .collect();
            info.deps.iter().find(|d| !one(d).interchange_legal(&full))
        }
        TransformStep::Tile { width, .. } => {
            let levels: Vec<usize> = (0..*width).collect();
            info.deps.iter().find(|d| !one(d).band_permutable(&levels))
        }
        TransformStep::UnrollAndJam { .. } => {
            info.deps.iter().find(|d| !one(d).band_permutable(&[0, 1]))
        }
        TransformStep::Distribute { .. } => info.deps.iter().find(|d| d.src_stmt > d.dst_stmt),
        TransformStep::Vectorize { .. } => info.deps.iter().find(|d| !d.is_loop_independent()),
        TransformStep::ParallelFor { .. } => {
            info.deps.iter().find(|d| d.carrier_level() == Some(0))
        }
        TransformStep::Fuse { .. } => None,
    }
}

fn resolve_loop<'a>(root: &'a Stmt, target: &HierIndex) -> Result<&'a Stmt, Verdict> {
    match target.resolve(root) {
        Some(stmt) if stmt.is_for() => Ok(stmt),
        Some(_) => Err(Verdict::illegal(format!(
            "statement at `{target}` is not a loop"
        ))),
        None => Err(Verdict::illegal(format!("no statement at `{target}`"))),
    }
}

/// Structural screening shared by the restructuring verdicts: walks
/// `width` perfectly nested loops from `loop_stmt`, refusing
/// non-canonical headers and imperfect nesting, and returns the band.
/// Shape questions beyond that — rectangularity, hull derivability,
/// permutation constructibility — are judged per-transform, because the
/// exact engine now proves many non-rectangular bands restructurable.
fn structured_band(loop_stmt: &Stmt, width: usize) -> Result<Vec<CanonLoop>, Verdict> {
    let mut band = Vec::with_capacity(width);
    let mut cur = loop_stmt;
    for level in 0..width {
        let Some(canon) = canonicalize(cur) else {
            return Err(Verdict::illegal(format!(
                "loop at band level {level} is not canonical"
            )));
        };
        band.push(canon);
        if level + 1 < width {
            let body = cur.as_for().expect("canonical loop").body.body_stmts();
            if body.len() != 1 || !body[0].is_for() {
                return Err(Verdict::illegal(format!(
                    "band is not perfectly nested at level {level}"
                )));
            }
            cur = &body[0];
        }
    }
    Ok(band)
}

/// For each band level, the *other* band levels whose induction variable
/// appears in this level's bounds. All-empty means a rectangular band.
fn band_bound_refs(band: &[CanonLoop]) -> Vec<Vec<usize>> {
    band.iter()
        .map(|canon| {
            let mut refs = Vec::new();
            for bound in [&canon.lower, &canon.upper] {
                walk_exprs(bound, &mut |e| {
                    if let Expr::Ident(n) = e {
                        if let Some(m) = band.iter().position(|l| &l.var == n && l.var != canon.var)
                        {
                            if !refs.contains(&m) {
                                refs.push(m);
                            }
                        }
                    }
                });
            }
            refs
        })
        .collect()
}

/// Marks a dependence-based refusal with its provenance: when the
/// region's dependence set is exact, the refusal is a proof, not a
/// conservative guess, and the reason says so.
fn dep_illegal(info: &DependenceInfo, msg: impl Into<String>) -> Verdict {
    let msg = msg.into();
    if info.exact {
        Verdict::Illegal(format!("{msg} [exact]"))
    } else {
        Verdict::Illegal(msg)
    }
}

fn interchange_verdict(root: &Stmt, order: &[usize]) -> Verdict {
    if order.iter().enumerate().all(|(i, &o)| i == o) {
        return Verdict::Legal;
    }
    let info = analyze_region(root);
    if !info.available {
        return unavailable();
    }
    let band = match structured_band(root, order.len()) {
        Ok(b) => b,
        Err(v) => return v,
    };
    // Constructibility on (possibly triangular) bands: a bound of loop
    // `l` referencing loop `m` is still well-defined after permutation
    // only if `m` remains *outside* `l` in the new order.
    let refs = band_bound_refs(&band);
    for (l, refs_l) in refs.iter().enumerate() {
        let pos_l = order.iter().position(|&o| o == l).expect("permutation");
        for &m in refs_l {
            let pos_m = order.iter().position(|&o| o == m).expect("permutation");
            if pos_m > pos_l {
                return Verdict::illegal(format!(
                    "band is not rectangular under permutation {order:?}: the bound of \
                     `{}` references `{}`, which the permutation moves inside it",
                    band[l].var, band[m].var
                ));
            }
        }
    }
    // Extend the permutation to the full analyzed nest depth: unlisted
    // deeper loops stay in place.
    let full: Vec<usize> = order
        .iter()
        .copied()
        .chain(order.len()..info.loop_vars.len())
        .collect();
    if info.interchange_legal(&full) {
        Verdict::Legal
    } else {
        dep_illegal(
            &info,
            format!("permutation {order:?} reverses a dependence"),
        )
    }
}

/// Which band shapes a restructuring transform can rebuild.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BandShape {
    /// Rectangular, or any non-rectangular band with a derivable affine
    /// bound hull (tiling lays rectangular tile loops over the hull and
    /// clips the point loops with `max`/`min` guards).
    HullOk,
    /// Strictly rectangular (unroll-and-jam duplicates the inner loop
    /// body across outer iterations, which has no hull construction).
    RectangularOnly,
}

fn band_verdict(
    root: &Stmt,
    target: &HierIndex,
    width: usize,
    refusal: &str,
    shape: BandShape,
) -> Verdict {
    let loop_stmt = match resolve_loop(root, target) {
        Ok(s) => s,
        Err(v) => return v,
    };
    let info = analyze_region(loop_stmt);
    if !info.available {
        return unavailable();
    }
    let band = match structured_band(loop_stmt, width) {
        Ok(b) => b,
        Err(v) => return v,
    };
    if band_bound_refs(&band).iter().any(|r| !r.is_empty()) {
        match shape {
            BandShape::RectangularOnly => {
                return Verdict::illegal(
                    "band is not rectangular: a bound references a band variable",
                );
            }
            BandShape::HullOk => {
                if band_hull(&band).is_none() {
                    return Verdict::illegal(
                        "band is not rectangular and no affine tile hull is derivable",
                    );
                }
            }
        }
    }
    let levels: Vec<usize> = (0..width).collect();
    if info.band_permutable(&levels) {
        Verdict::Legal
    } else {
        dep_illegal(&info, refusal)
    }
}

fn distribute_verdict(root: &Stmt, target: &HierIndex) -> Verdict {
    let loop_stmt = match resolve_loop(root, target) {
        Ok(s) => s,
        Err(v) => return v,
    };
    let info = analyze_region(loop_stmt);
    if !info.available {
        return unavailable();
    }
    if info.distribution_legal() {
        Verdict::Legal
    } else {
        dep_illegal(&info, "a backward dependence prevents distribution")
    }
}

fn vectorize_verdict(root: &Stmt, target: &HierIndex) -> Verdict {
    let loop_stmt = match resolve_loop(root, target) {
        Ok(s) => s,
        Err(v) => return v,
    };
    let info = analyze_region(loop_stmt);
    if !info.available {
        return unavailable();
    }
    if info.vectorizable() {
        Verdict::Legal
    } else {
        dep_illegal(&info, "a loop-carried dependence prevents vectorization")
    }
}

/// Fusion legality, judged on a reconstructed fused candidate: after
/// concatenating the bodies (second induction variable renamed to the
/// first's), no dependence may point from a second-body statement back
/// into the first body.
fn fuse_verdict(root: &Stmt, first: &HierIndex) -> Verdict {
    let Some(parent_idx) = first.parent() else {
        return Verdict::illegal("cannot fuse the region root");
    };
    let Some(parent) = parent_idx.resolve(root) else {
        return Verdict::illegal(format!("no statement at `{parent_idx}`"));
    };
    let position = *first.0.last().expect("non-empty index");
    let siblings = parent.body_stmts();
    let Some(a) = siblings.get(position) else {
        return Verdict::illegal(format!("no statement at `{first}`"));
    };
    let Some(b) = siblings.get(position + 1) else {
        return Verdict::illegal("loop to fuse has no following sibling statement");
    };
    let (Some(ca), Some(cb)) = (canonicalize(a), canonicalize(b)) else {
        return Verdict::illegal("loops to fuse are not canonical");
    };

    let mut body = a.as_for().expect("loop").body.body_stmts().to_vec();
    let first_len = body.len();
    let mut second_body = b.as_for().expect("loop").body.body_stmts().to_vec();
    if ca.var != cb.var {
        for s in &mut second_body {
            substitute_ident(s, &cb.var, &locus_srcir::ast::Expr::ident(&ca.var));
        }
    }
    body.extend(second_body);
    let mut fused = a.clone();
    *fused.as_for_mut().expect("loop").body = Stmt::block(body);

    let info = analyze_region(&fused);
    if !info.available {
        return unavailable();
    }
    let boundary = count_stmts(&fused.as_for().unwrap().body.body_stmts()[..first_len]);
    let preventing = info
        .deps
        .iter()
        .any(|d| d.src_stmt >= boundary && d.dst_stmt < boundary);
    if preventing {
        dep_illegal(
            &info,
            "fusion-preventing dependence between the loop bodies",
        )
    } else {
        Verdict::Legal
    }
}

/// `omp parallel for` legality: no nested parallelism (neither an
/// ancestor nor a descendant of the target may already carry the
/// pragma), and the loop must be race-free per [`analyze_parallel_for`].
fn parallel_for_verdict(root: &Stmt, target: &HierIndex) -> Verdict {
    match parallel_for_clauses(root, target) {
        Ok(_) => Verdict::Legal,
        Err(v) => v,
    }
}

/// Computes the data-sharing clauses `#pragma omp parallel for` on the
/// loop at `target` must carry for the parallelization to be legal.
///
/// This is the insertion-path companion of [`legal`]: a carried scalar
/// dependence whose suggested fix is a reduction or privatization is
/// only safe when the emitted pragma actually carries the fixing
/// clause, so `insert_omp_for` consults this function and attaches
/// exactly what the analyzer names. A privatization fix is additionally
/// refused when the scalar is live-out — read after the loop anywhere
/// in the region — because `private()` leaves the original variable
/// undefined once the loop completes.
///
/// Errors mirror [`legal`] on [`TransformStep::ParallelFor`]: nested
/// parallelism, unavailable dependence information, and unfixable races
/// all yield the corresponding illegal [`Verdict`].
pub fn parallel_for_clauses(root: &Stmt, target: &HierIndex) -> Result<Vec<OmpClause>, Verdict> {
    let loop_stmt = resolve_loop(root, target)?;
    for len in 1..target.0.len() {
        let ancestor = HierIndex::new(target.0[..len].to_vec());
        if let Some(s) = ancestor.resolve(root) {
            if has_omp(s) {
                return Err(Verdict::illegal(format!(
                    "nested parallelism: enclosing loop at `{ancestor}` already carries \
                     `omp parallel for`"
                )));
            }
        }
    }
    let mut nested = false;
    walk_stmts(loop_stmt, &mut |s| {
        if !std::ptr::eq(s, loop_stmt) && has_omp(s) {
            nested = true;
        }
    });
    if nested {
        return Err(Verdict::illegal(format!(
            "nested parallelism: loop at `{target}` contains an `omp parallel for`"
        )));
    }

    let report = analyze_parallel_for(loop_stmt);
    if !report.available {
        return Err(unavailable());
    }
    let mut clauses: Vec<OmpClause> = Vec::new();
    let marker = if report.exact { " [exact]" } else { "" };
    for race in &report.races {
        let clause = match &race.fix {
            RaceFix::Refuse => return Err(Verdict::illegal(format!("data race: {race}{marker}"))),
            RaceFix::Reduction { var, op } => OmpClause::Reduction {
                op: *op,
                var: var.clone(),
            },
            RaceFix::Privatize { var } => {
                if scalar_live_after(root, target, var) {
                    return Err(Verdict::illegal(format!(
                        "data race on `{var}`: the scalar is read after the loop \
                         (live-out), so a private({var}) clause would change its \
                         final value"
                    )));
                }
                OmpClause::Private { var: var.clone() }
            }
        };
        if !clauses.contains(&clause) {
            clauses.push(clause);
        }
    }
    Ok(clauses)
}

/// `true` when scalar `var` may still be used after the loop at
/// `target` has finished executing. With straight-line ancestors the
/// statements that run after the target are exactly the following
/// siblings at each ancestor level; when a strict ancestor is itself a
/// loop, its next trip re-runs the whole region, so any mention outside
/// the target subtree keeps the value live. Mentions include writes;
/// the scan is conservative.
fn scalar_live_after(root: &Stmt, target: &HierIndex, var: &str) -> bool {
    let mentions_in = |s: &Stmt| {
        let mut count = 0usize;
        walk_exprs_in_stmt(s, &mut |e| {
            if matches!(e, Expr::Ident(n) if n == var) {
                count += 1;
            }
        });
        count
    };
    let reruns = (1..target.0.len()).any(|len| {
        HierIndex::new(target.0[..len].to_vec())
            .resolve(root)
            .is_some_and(|s| matches!(s.kind, StmtKind::For(_) | StmtKind::While { .. }))
    });
    if reruns {
        let inside = target.resolve(root).map_or(0, mentions_in);
        return mentions_in(root) > inside;
    }
    for len in 1..target.0.len() {
        let Some(ancestor) = HierIndex::new(target.0[..len].to_vec()).resolve(root) else {
            continue;
        };
        for i in (target.0[len] + 1)..child_count(ancestor) {
            if child(ancestor, i).is_some_and(|s| mentions_in(s) > 0) {
                return true;
            }
        }
    }
    false
}

fn has_omp(stmt: &Stmt) -> bool {
    stmt.pragmas
        .iter()
        .any(|p| matches!(p, Pragma::OmpParallelFor { .. }))
}

/// Counts assignment/expression statements the dependence analysis
/// numbers, in the same order it numbers them.
pub(crate) fn count_stmts(stmts: &[Stmt]) -> usize {
    fn rec(s: &Stmt, count: &mut usize) {
        match &s.kind {
            StmtKind::Expr(_) | StmtKind::Decl { init: Some(_), .. } => *count += 1,
            _ => {
                for i in 0..child_count(s) {
                    if let Some(c) = child(s, i) {
                        rec(c, count);
                    }
                }
            }
        }
    }
    let mut count = 0;
    for s in stmts {
        rec(s, &mut count);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn block_region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let f = p.functions().next().unwrap();
        Stmt::block(f.body.clone())
    }

    fn matmul() -> Stmt {
        region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
    }

    fn idx(s: &str) -> HierIndex {
        s.parse().unwrap()
    }

    #[test]
    fn matmul_interchange_and_tiling_are_legal() {
        let root = matmul();
        assert!(legal(
            &root,
            &TransformStep::Interchange {
                order: vec![0, 2, 1]
            }
        )
        .is_legal());
        assert!(legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 3
            }
        )
        .is_legal());
        assert!(legal(&root, &TransformStep::UnrollAndJam { target: idx("0") }).is_legal());
    }

    #[test]
    fn skewed_dependence_blocks_interchange() {
        let root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        let verdict = legal(&root, &TransformStep::Interchange { order: vec![1, 0] });
        assert!(verdict.reason().unwrap().contains("reverses a dependence"));
        // Identity stays legal without even consulting the analysis.
        assert!(legal(&root, &TransformStep::Interchange { order: vec![0, 1] }).is_legal());
        assert!(!legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 2
            }
        )
        .is_legal());
    }

    #[test]
    fn fusion_verdict_matches_the_transform() {
        let fusable = block_region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int i = 0; i < 64; i++) A[i] = 1.0;
            for (int j = 0; j < 64; j++) B[j] = A[j] * 2.0;
            }"#,
        );
        assert!(legal(&fusable, &TransformStep::Fuse { first: idx("0.0") }).is_legal());

        let preventing = block_region(
            r#"void f(int n, double A[66], double B[64]) {
            for (int i = 0; i < 64; i++) A[i] = 1.0;
            for (int j = 0; j < 64; j++) B[j] = A[j + 1];
            }"#,
        );
        let verdict = legal(&preventing, &TransformStep::Fuse { first: idx("0.0") });
        assert!(verdict.reason().unwrap().contains("fusion-preventing"));
    }

    #[test]
    fn distribution_verdict() {
        let backward = region(
            r#"void f(int n, double A[8], double B[8], double C[8]) {
            for (int i = 1; i < n; i++) {
                B[i] = A[i - 1];
                A[i] = C[i] + 1.0;
            }
            }"#,
        );
        assert!(!legal(&backward, &TransformStep::Distribute { target: idx("0") }).is_legal());
        let forward = region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++) {
                A[i] = 1.0;
                B[i] = A[i] * 2.0;
            }
            }"#,
        );
        assert!(legal(&forward, &TransformStep::Distribute { target: idx("0") }).is_legal());
    }

    #[test]
    fn parallel_for_verdict_detects_races() {
        let root = matmul();
        assert!(legal(&root, &TransformStep::ParallelFor { target: idx("0") }).is_legal());
        let verdict = legal(
            &root,
            &TransformStep::ParallelFor {
                target: idx("0.0.0"),
            },
        );
        assert!(
            verdict.reason().unwrap().contains("data race"),
            "{verdict:?}"
        );
    }

    #[test]
    fn parallel_for_refuses_nested_parallelism() {
        let mut root = matmul();
        root.pragmas.push(Pragma::OmpParallelFor {
            schedule: None,
            clauses: Vec::new(),
        });
        // An inner loop under an already-parallel outer loop.
        let verdict = legal(&root, &TransformStep::ParallelFor { target: idx("0.0") });
        assert!(
            verdict.reason().unwrap().contains("nested parallelism"),
            "{verdict:?}"
        );
        // The other direction: parallelizing an ancestor of a parallel loop.
        let mut root = matmul();
        idx("0.0")
            .resolve_mut(&mut root)
            .unwrap()
            .pragmas
            .push(Pragma::OmpParallelFor {
                schedule: None,
                clauses: Vec::new(),
            });
        let verdict = legal(&root, &TransformStep::ParallelFor { target: idx("0") });
        assert!(
            verdict.reason().unwrap().contains("nested parallelism"),
            "{verdict:?}"
        );
        // Re-judging the already-parallel loop itself is fine (the
        // insertion replaces the schedule, it does not nest).
        assert!(legal(&root, &TransformStep::ParallelFor { target: idx("0.0") }).is_legal());
    }

    #[test]
    fn parallel_for_clauses_name_the_analyzer_fixes() {
        // The reduction idiom is legal only under a reduction clause,
        // and the clause list says exactly that — even with a read of
        // `s` after the loop, since the reduction writes the combined
        // value back.
        let root = block_region(
            r#"void f(int n, double s, double r, double A[64]) {
            for (int i = 0; i < n; i++)
                s = s + A[i];
            r = s;
            }"#,
        );
        let clauses = parallel_for_clauses(&root, &idx("0.0")).unwrap();
        assert_eq!(
            clauses,
            vec![OmpClause::Reduction {
                op: locus_srcir::ast::BinOp::Add,
                var: "s".to_string()
            }]
        );
        // An independent loop needs no clauses at all.
        let root = matmul();
        assert_eq!(parallel_for_clauses(&root, &idx("0")).unwrap(), Vec::new());
    }

    #[test]
    fn live_out_scalar_is_not_privatizable() {
        // `t` is written before read in each iteration, but the value
        // of the last iteration is consumed after the loop — private()
        // would leave it undefined there.
        let root = block_region(
            r#"void f(int n, double t, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                t = A[i] * 2.0;
                B[i] = t + 1.0;
            }
            B[0] = t;
            }"#,
        );
        let verdict = legal(&root, &TransformStep::ParallelFor { target: idx("0.0") });
        assert!(
            verdict.reason().unwrap().contains("live-out"),
            "{verdict:?}"
        );
        // Without the trailing read the same loop is privatizable.
        let root = block_region(
            r#"void f(int n, double t, double A[64], double B[64]) {
            for (int i = 0; i < n; i++) {
                t = A[i] * 2.0;
                B[i] = t + 1.0;
            }
            }"#,
        );
        assert_eq!(
            parallel_for_clauses(&root, &idx("0.0")).unwrap(),
            vec![OmpClause::Private {
                var: "t".to_string()
            }]
        );
    }

    #[test]
    fn enclosing_loop_rerun_keeps_the_scalar_live() {
        // The read of `t` before the inner loop executes again on the
        // outer loop's next trip — i.e. after the candidate parallel
        // loop completes — so privatization must still be refused.
        let root = region(
            r#"void f(int n, double t, double A[64], double B[64], double C[64]) {
            for (int r = 0; r < n; r++) {
                C[r] = t;
                for (int i = 0; i < n; i++) {
                    t = A[i] * 2.0;
                    B[i] = t + 1.0;
                }
            }
            }"#,
        );
        let verdict = legal(&root, &TransformStep::ParallelFor { target: idx("0.1") });
        assert!(
            verdict.reason().unwrap().contains("live-out"),
            "{verdict:?}"
        );
    }

    #[test]
    fn vectorize_verdict() {
        let root = region(
            r#"void f(int n, double A[64]) {
            for (int i = 1; i < n; i++)
                A[i] = A[i - 1] + 1.0;
            }"#,
        );
        assert!(!legal(&root, &TransformStep::Vectorize { target: idx("0") }).is_legal());
    }

    #[test]
    fn missing_or_non_loop_targets_are_illegal() {
        let root = matmul();
        assert!(!legal(
            &root,
            &TransformStep::Tile {
                target: idx("0.7"),
                width: 1
            }
        )
        .is_legal());
        assert!(
            !legal(
                &root,
                &TransformStep::ParallelFor {
                    target: idx("0.0.0.0")
                }
            )
            .is_legal(),
            "the innermost statement is not a loop"
        );
    }

    #[test]
    fn triangular_band_tiling_is_proven_legal() {
        // The SYRK / Cholesky update shape: the inner bound references
        // the outer induction variable. The polyhedral engine proves the
        // band fully permutable, and a rectangular tile hull exists, so
        // tiling is now *legal* — only unroll-and-jam (which has no hull
        // construction) and a permutation that would move `i` inside the
        // `j <= i` bound keep their structural refusals.
        let root = region(
            r#"void f(int n, double C[8][8], double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j <= i; j++)
                    C[i][j] = C[i][j] + A[i][j];
            }"#,
        );
        assert!(legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 2
            }
        )
        .is_legal());
        for step in [
            TransformStep::UnrollAndJam { target: idx("0") },
            TransformStep::Interchange { order: vec![1, 0] },
        ] {
            let verdict = legal(&root, &step);
            assert!(
                verdict.reason().unwrap().contains("not rectangular"),
                "{step:?}: {verdict:?}"
            );
        }
        // The identity permutation stays legal without consulting
        // anything — a no-op never needs restructuring.
        assert!(legal(&root, &TransformStep::Interchange { order: vec![0, 1] }).is_legal());
        // A width-1 band of the outer loop alone is rectangular: its
        // own bound references no *other* band variable.
        assert!(legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 1
            }
        )
        .is_legal());
    }

    #[test]
    fn shifted_lower_bound_band_is_proven_tileable() {
        // The TRMM shape: `k = i + 1` makes the band non-rectangular
        // through the *lower* bound. The exact engine decides the cross
        // dependence `B[k][0]` vs `B[i][0]` as (<,<) — the conservative
        // engine could only say (*,*) — so the band is fully permutable
        // and tiling becomes legal.
        let root = region(
            r#"void f(int n, double B[8][8], double A[8][8]) {
            for (int i = 0; i < n; i++)
                for (int k = i + 1; k < n; k++)
                    B[i][0] = B[i][0] + A[k][i] * B[k][0];
            }"#,
        );
        let verdict = legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 2,
            },
        );
        assert!(verdict.is_legal(), "{verdict:?}");
    }

    #[test]
    fn exact_refusals_carry_the_provenance_marker() {
        // Constant bounds and affine subscripts: the whole region is
        // decided exactly, so a dependence-based refusal says so.
        let root = region(
            r#"void f(double A[8][8]) {
            for (int i = 1; i < 8; i++)
                for (int j = 0; j < 7; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        let verdict = legal(&root, &TransformStep::Interchange { order: vec![1, 0] });
        let reason = verdict.reason().unwrap();
        assert!(reason.contains("reverses a dependence"), "{reason}");
        assert!(reason.ends_with(" [exact]"), "{reason}");
        // Symbolic bounds force the conservative tag even though the
        // refusal itself is the same.
        let root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        let verdict = legal(&root, &TransformStep::Interchange { order: vec![1, 0] });
        assert!(!verdict.reason().unwrap().contains("[exact]"));
    }

    #[test]
    fn explain_names_the_offending_dependence_and_domain() {
        let root = region(
            r#"void f(double A[8][8]) {
            for (int i = 1; i < 8; i++)
                for (int j = 0; j < 7; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        );
        let ex = explain(&root, &TransformStep::Interchange { order: vec![1, 0] });
        assert!(!ex.verdict.is_legal());
        assert_eq!(ex.provenance, "exact");
        let off = ex.offending.expect("a dependence forced the refusal");
        assert!(off.contains("A"), "{off}");
        assert!(off.contains("(<,>)"), "{off}");
        assert_eq!(ex.domain, vec!["1 <= i < 8", "0 <= j < 7"]);

        // A legal step explains itself with no offending dependence
        // (strip-mining one loop never reorders across iterations).
        let ex = explain(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 1,
            },
        );
        assert!(ex.verdict.is_legal(), "{:?}", ex.verdict);
        assert!(ex.offending.is_none());
    }

    #[test]
    fn imperfect_nest_band_is_refused_with_a_typed_reason() {
        // The LU/Cholesky factorization shape: a statement between the
        // band loops makes the nest imperfect at level 0.
        let root = region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 0; i < n; i++) {
                A[i][i] = A[i][i] + 1.0;
                for (int j = 0; j < n; j++)
                    A[i][j] = A[i][j] * 0.5;
            }
            }"#,
        );
        let verdict = legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 2,
            },
        );
        assert!(
            verdict.reason().unwrap().contains("not perfectly nested"),
            "{verdict:?}"
        );
    }

    #[test]
    fn rectangular_guarded_nest_still_tiles() {
        // A guard *inside* the body does not make the band triangular:
        // the guarded-stencil corpus shape must stay verdict-legal.
        let root = region(
            r#"void f(int n, double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++) {
                    if (A[i][j] > 12.0)
                        B[i][j] = A[i][j] * 0.5;
                    else
                        B[i][j] = A[i][j] + 1.0;
                }
            }"#,
        );
        assert!(legal(
            &root,
            &TransformStep::Tile {
                target: idx("0"),
                width: 2
            }
        )
        .is_legal());
    }

    #[test]
    fn unavailable_dependences_refuse_everything() {
        let root = region(
            r#"void f(int n, double A[64], int idx[64]) {
            for (int i = 0; i < n; i++)
                A[idx[i]] = 1.0;
            }"#,
        );
        for step in [
            TransformStep::Interchange { order: vec![1, 0] },
            TransformStep::Tile {
                target: idx("0"),
                width: 1,
            },
            TransformStep::Distribute { target: idx("0") },
            TransformStep::ParallelFor { target: idx("0") },
            TransformStep::Vectorize { target: idx("0") },
        ] {
            assert_eq!(
                legal(&root, &step),
                Verdict::illegal("dependence information unavailable"),
                "{step:?}"
            );
        }
    }
}
