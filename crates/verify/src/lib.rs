//! Static safety analysis for the Locus system.
//!
//! Locus composes transformation sequences and inserts compiler pragmas
//! (Sec. IV-A.3 of the paper); whether a *composed* sequence is still
//! semantics-preserving is what makes a search space trustworthy. This
//! crate layers three passes on top of the dependence analysis of
//! `locus-analysis`:
//!
//! * [`races`] — a data-race detector for `omp parallel for` insertion.
//!   A loop is parallelizable iff no dependence is carried by it; the
//!   detector recognizes reduction idioms (`s += ...` on a scalar) and
//!   privatizable scalars (defined before used each iteration) and
//!   returns a structured [`races::RaceReport`] naming the offending
//!   statement pair, its direction vector and a suggested fix.
//! * [`legality`] — a unified legality engine. Every transformation
//!   module's `check_legality` logic funnels through one
//!   [`legality::legal`]`(root, &TransformStep) -> Verdict` API, so new
//!   transforms (and the search driver) get legality for free.
//! * [`wellformed`] — an IR well-formedness validator (pragmas on
//!   non-loops, duplicate pragma kinds, non-canonicalizable parallel
//!   loops, undefined variables) run after every applied step during
//!   tuning in debug builds and by the `locus-lint` binary.
//!
//! The crate deliberately depends only on `locus-srcir` and
//! `locus-analysis`: verdicts flow *into* the transformation and search
//! layers, never the other way around.

#![warn(missing_docs)]

mod detile;
pub mod legality;
pub mod races;
pub mod wellformed;

/// The outcome of a legality or safety judgement.
///
/// Mirrors the paper's wrapper exit statuses: a transformation either
/// passes its legality check or is *illegal* with a reason. Structural
/// problems (missing targets, malformed arguments) are reported as
/// [`Verdict::Illegal`] too — the engine judges what it is given and
/// never mutates the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The step preserves all dependences.
    Legal,
    /// The step would violate a dependence (or safety could not be
    /// established); the payload says why.
    Illegal(String),
}

impl Verdict {
    /// Builds a [`Verdict::Illegal`] from any message.
    pub fn illegal(msg: impl Into<String>) -> Verdict {
        Verdict::Illegal(msg.into())
    }

    /// `true` when the verdict is [`Verdict::Legal`].
    pub fn is_legal(&self) -> bool {
        matches!(self, Verdict::Legal)
    }

    /// The refusal reason, when illegal.
    pub fn reason(&self) -> Option<&str> {
        match self {
            Verdict::Legal => None,
            Verdict::Illegal(msg) => Some(msg),
        }
    }
}

/// Coarse category of a refusal reason, for observability rollups
/// (`locus-report` groups pruned points by it): `"race"` for data-race
/// refusals, `"dependence"` for dependence or legality violations
/// (including unavailable dependence information, which the engine
/// conservatively refuses), `"structure"` for unresolvable or malformed
/// targets and nested parallelism, `"other"` for anything else.
pub fn refusal_category(reason: &str) -> &'static str {
    if reason.contains("data race") {
        "race"
    } else if reason.contains("dependence") || reason.contains("fusion-preventing") {
        "dependence"
    } else if reason.contains("nested parallelism")
        || reason.contains("no statement at")
        || reason.contains("is not a loop")
    {
        "structure"
    } else {
        "other"
    }
}

/// Provenance of a refusal reason: `"exact"` when the legality engine
/// marked the refusal as polyhedrally proven (the reason carries an
/// ` [exact]` suffix), `"conservative"` otherwise — including every
/// structural refusal, which no dependence engine decides.
pub fn refusal_provenance(reason: &str) -> &'static str {
    if reason.ends_with(" [exact]") {
        "exact"
    } else {
        "conservative"
    }
}

pub use legality::{explain, legal, parallel_for_clauses, Explanation, TransformStep};
pub use locus_analysis::deps::Provenance;
pub use races::{analyze_parallel_for, Race, RaceFix, RaceReport};
pub use wellformed::{validate_program, validate_region};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusal_categories_cover_the_engine_messages() {
        assert_eq!(refusal_category("data race: flow s->s"), "race");
        assert_eq!(
            refusal_category("permutation [1, 0] reverses a dependence"),
            "dependence"
        );
        assert_eq!(
            refusal_category("dependence information unavailable"),
            "dependence"
        );
        assert_eq!(
            refusal_category("nested parallelism: loop at `0` contains an `omp parallel for`"),
            "structure"
        );
        assert_eq!(refusal_category("no statement at `3.1`"), "structure");
        assert_eq!(
            refusal_category("statement at `0` is not a loop"),
            "structure"
        );
        assert_eq!(refusal_category("unknown module"), "other");
    }

    #[test]
    fn refusal_provenance_reads_the_exact_marker() {
        assert_eq!(
            refusal_provenance("permutation [1, 0] reverses a dependence [exact]"),
            "exact"
        );
        assert_eq!(
            refusal_provenance("permutation [1, 0] reverses a dependence"),
            "conservative"
        );
        assert_eq!(
            refusal_provenance("dependence information unavailable"),
            "conservative"
        );
        // The marker also keeps the coarse category of the base reason.
        assert_eq!(
            refusal_category("a backward dependence prevents distribution [exact]"),
            "dependence"
        );
    }
}
