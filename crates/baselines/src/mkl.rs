//! An MKL-like oracle DGEMM.
//!
//! Intel MKL ships kernels hand-tuned per microarchitecture. The
//! simulated-machine equivalent is a DGEMM variant whose blocking is
//! derived *analytically from the machine's cache geometry* (rather
//! than searched): interchange to `i,k,j`, two-level tiling sized so the
//! inner working set fits L1 and the outer fits L2, vectorization
//! pragmas on the innermost loop, and `omp parallel for` outside.

use locus_machine::MachineConfig;
use locus_srcir::ast::Program;
use locus_srcir::index::HierIndex;
use locus_srcir::region::{extract_region, find_regions, replace_region};
use locus_transform::interchange::interchange;
use locus_transform::pragmas::{insert_ivdep, insert_omp_for, insert_vector_always};
use locus_transform::tiling::tile;
use locus_transform::LoopSel;

/// Builds the MKL-like DGEMM variant for matrices of size `n` on the
/// given machine configuration.
///
/// # Panics
///
/// Panics if the oracle transformations fail on the canonical DGEMM
/// source (they cannot: the kernel shape is fixed).
pub fn mkl_like_dgemm(n: usize, config: &MachineConfig) -> Program {
    let mut program = locus_corpus_dgemm(n);
    let regions = find_regions(&program);
    let region = &regions[0];
    let mut stmt = extract_region(&program, region)
        .expect("region exists")
        .stmt;

    // Blocking analysis: the inner tile of C (bi x bj doubles) plus a
    // row of A and a column strip of B must fit L1; choose the largest
    // power of two that does, clamped to the problem.
    let l1 = config.cache.levels.first().map_or(4096, |l| l.capacity);
    let mut b1: i64 = 4;
    while 3 * (b1 * 2) * (b1 * 2) * 8 <= l1 as i64 && (b1 * 2) as usize <= n {
        b1 *= 2;
    }
    let l2 = config.cache.levels.get(1).map_or(32 * 1024, |l| l.capacity);
    let mut b2: i64 = b1;
    while 3 * (b2 * 2) * (b2 * 2) * 8 <= l2 as i64 && (b2 * 2) as usize <= n {
        b2 *= 2;
    }

    // `i` stays outermost and untiled so the parallel loop keeps `n`
    // iterations; the (k, j) band is blocked for L2 and then L1.
    interchange(&mut stmt, &[0, 2, 1], true).expect("ikj interchange is legal for DGEMM");
    let kj: HierIndex = "0.0".parse().expect("valid index");
    if (b2 as usize) < n && b1 < b2 {
        tile(&mut stmt, &kj, &[b2, b2], true).expect("outer tiling");
        let inner: HierIndex = "0.0.0.0".parse().expect("valid index");
        tile(&mut stmt, &inner, &[b1, b1], true).expect("inner tiling");
    } else if (b1 as usize) < n {
        tile(&mut stmt, &kj, &[b1, b1], true).expect("tiling");
    }
    insert_ivdep(&mut stmt, &LoopSel::Innermost).expect("innermost exists");
    insert_vector_always(&mut stmt, &LoopSel::Innermost).expect("innermost exists");
    // The oracle encodes expert knowledge; skip the safety analyzer.
    insert_omp_for(
        &mut stmt,
        &LoopSel::parse("0").expect("valid selector"),
        None,
        false,
    )
    .expect("outermost exists");

    replace_region(&mut program, region, stmt);
    program
}

fn locus_corpus_dgemm(n: usize) -> Program {
    // Kept textual to avoid a circular dependency on locus-corpus.
    let src = format!(
        r#"
double A[{n}][{n}];
double B[{n}][{n}];
double C[{n}][{n}];
double alpha = 1.5;
double beta = 1.2;
void kernel() {{
    int i;
    int j;
    int k;
    #pragma @Locus loop=matmul
    for (i = 0; i < {n}; i++)
        for (j = 0; j < {n}; j++)
            for (k = 0; k < {n}; k++)
                C[i][j] = beta * C[i][j] + alpha * A[i][k] * B[k][j];
}}
"#
    );
    locus_srcir::parse_program(&src).expect("DGEMM source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::Machine;

    #[test]
    fn oracle_beats_naive_baseline() {
        let config = MachineConfig::scaled_small().with_cores(1);
        let machine = Machine::new(config.clone());
        let naive = locus_corpus::dgemm_program(48);
        let oracle = mkl_like_dgemm(48, &config);
        let base = machine.run(&naive, "kernel").unwrap();
        let fast = machine.run(&oracle, "kernel").unwrap();
        assert_eq!(base.checksum, fast.checksum, "oracle must be exact");
        assert!(
            fast.cycles < base.cycles,
            "oracle {} vs naive {}",
            fast.cycles,
            base.cycles
        );
    }

    #[test]
    fn parallel_oracle_scales() {
        let config = MachineConfig::scaled_small().with_cores(8);
        let machine = Machine::new(config.clone());
        let oracle = mkl_like_dgemm(48, &config);
        let seq = Machine::new(config.clone().with_cores(1))
            .run(&oracle, "kernel")
            .unwrap();
        let par = machine.run(&oracle, "kernel").unwrap();
        assert!(par.cycles < seq.cycles / 2.0);
    }

    #[test]
    fn blocking_adapts_to_cache_size() {
        let small = MachineConfig::scaled_small();
        let big = MachineConfig::xeon_e5_2660_v3();
        // Different cache geometry must produce different programs for a
        // large-enough problem.
        let a = mkl_like_dgemm(256, &small);
        let b = mkl_like_dgemm(256, &big);
        assert_ne!(
            locus_srcir::print_program(&a),
            locus_srcir::print_program(&b)
        );
    }
}
