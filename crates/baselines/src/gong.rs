//! The hard-coded transformation sequences of Gong et al. (Sec. V-D).
//!
//! The paper's comparison point: Gong et al. implemented, in ~1,200
//! lines of driver code, two fixed source-level sequences applied to
//! extracted loop nests:
//!
//! 1. interchange → unroll-and-jam → distribution → unrolling;
//! 2. interchange → tiling → distribution → unrolling.
//!
//! This module reproduces them with fixed parameters and per-step
//! legality gating (a step that does not apply is skipped), which is
//! exactly what the 37-line Locus program of Fig. 13 generalizes with
//! search.

use locus_analysis::loops::loop_nest_info;
use locus_srcir::ast::{Program, Stmt};
use locus_srcir::index::HierIndex;
use locus_srcir::region::{extract_region, find_regions, replace_region};
use locus_transform::distribution::distribute_all;
use locus_transform::interchange::interchange;
use locus_transform::queries::{is_dep_available, list_inner_loops};
use locus_transform::tiling::tile;
use locus_transform::unroll::unroll_all;
use locus_transform::unroll_jam::unroll_and_jam;

/// Which of the two fixed sequences to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GongSequence {
    /// interchange → unroll-and-jam → distribution → unrolling.
    UnrollAndJam,
    /// interchange → tiling → distribution → unrolling.
    Tiling,
}

/// Applies a sequence to every annotated region. Returns the transformed
/// program and whether *any* step beyond unrolling applied (used by the
/// Table I statistics).
pub fn apply_gong_sequence(program: &Program, sequence: GongSequence) -> (Program, bool) {
    let mut out = program.clone();
    let mut any = false;
    for region in find_regions(program) {
        let Some(code) = extract_region(&out, &region) else {
            continue;
        };
        let mut stmt = code.stmt;
        if apply_to_region(&mut stmt, sequence) {
            any = true;
        }
        replace_region(&mut out, &region, stmt);
    }
    (out, any)
}

fn apply_to_region(stmt: &mut Stmt, sequence: GongSequence) -> bool {
    let mut applied = false;
    let deps_ok = is_dep_available(stmt);

    if deps_ok {
        let info = loop_nest_info(stmt);
        // Fixed interchange: reverse the first two loops when legal.
        if info.perfect && info.depth > 1 {
            let mut order: Vec<usize> = (0..info.depth).collect();
            order.swap(0, 1);
            if interchange(stmt, &order, true).is_ok() {
                applied = true;
            }
        }
        match sequence {
            GongSequence::UnrollAndJam => {
                if loop_nest_info(stmt).depth > 1
                    && unroll_and_jam(stmt, &HierIndex::root(), 2, true).is_ok()
                {
                    applied = true;
                }
            }
            GongSequence::Tiling => {
                let info = loop_nest_info(stmt);
                if info.perfect && info.depth > 1 {
                    let sizes = vec![16i64; info.depth.min(3)];
                    if tile(stmt, &HierIndex::root(), &sizes, true).is_ok() {
                        applied = true;
                    }
                }
            }
        }
        let inner = list_inner_loops(stmt);
        if distribute_all(stmt, &inner, true).is_ok() {
            // Distribution either applied or was silently skipped for
            // single-statement bodies; only count multi-loop results.
        }
    }

    // Unrolling always applies (Fig. 13 applies it even without
    // dependence information).
    let inner = list_inner_loops(stmt);
    if unroll_all(stmt, &inner, 4).is_ok() {
        applied = true;
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::{Machine, MachineConfig};

    #[test]
    fn both_sequences_preserve_matmul_semantics() {
        let program = locus_corpus::dgemm_program(24);
        let machine = Machine::new(MachineConfig::scaled_small().with_cores(1));
        let base = machine.run(&program, "kernel").unwrap();
        for seq in [GongSequence::UnrollAndJam, GongSequence::Tiling] {
            let (optimized, applied) = apply_gong_sequence(&program, seq);
            assert!(applied, "{seq:?}");
            let m = machine.run(&optimized, "kernel").unwrap();
            assert_eq!(m.checksum, base.checksum, "{seq:?}");
        }
    }

    #[test]
    fn non_affine_nests_still_get_unrolled() {
        let src = r#"
        double A[256];
        int idx[256];
        void kernel() {
            #pragma @Locus loop=scop
            for (int i = 0; i < 256; i++)
                A[idx[i]] = A[idx[i]] + 1.0;
        }
        "#;
        let program = locus_srcir::parse_program(src).unwrap();
        let (optimized, applied) = apply_gong_sequence(&program, GongSequence::Tiling);
        assert!(applied);
        let printed = locus_srcir::print_program(&optimized);
        assert!(printed.contains("i += 4"), "unrolled:\n{printed}");
    }

    #[test]
    fn sequences_differ() {
        let program = locus_corpus::dgemm_program(24);
        let (a, _) = apply_gong_sequence(&program, GongSequence::UnrollAndJam);
        let (b, _) = apply_gong_sequence(&program, GongSequence::Tiling);
        assert_ne!(
            locus_srcir::print_program(&a),
            locus_srcir::print_program(&b)
        );
    }
}
