//! A deterministic model of the Pluto polyhedral restructurer.
//!
//! Pluto derives a tiling-and-parallelization schedule from the
//! polyhedral model using a cost heuristic, with *fixed* default tile
//! sizes (32, plus a second level with `--l2tile`). Two properties
//! matter for reproducing the paper's comparisons:
//!
//! 1. **Applicability**: only static-control parts — affine subscripts
//!    and bounds — are handled (Sec. V-D: Pluto transformed 397 of 856
//!    extracted nests, Locus 822);
//! 2. **No empirical tuning**: the model picks one variant in under a
//!    second; whatever the machine, the tile size is 32 (the reason the
//!    empirically searched Locus variants win in Fig. 6).

use locus_analysis::deps::analyze_region;
use locus_analysis::loops::{loop_nest_info, perfect_nest_loops};
use locus_machine::Machine;
use locus_srcir::ast::{Program, Stmt};
use locus_srcir::index::HierIndex;
use locus_srcir::region::{extract_region, find_regions, replace_region};
use locus_transform::generic_tiling::{generic_tile, skewing1_matrix};
use locus_transform::pragmas::{insert_ivdep, insert_omp_for, insert_vector_always};
use locus_transform::tiling::tile;
use locus_transform::LoopSel;

/// What the restructurer did to a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlutoOutcome {
    /// The nest was transformed (tiled / skew-tiled / annotated).
    Transformed,
    /// Outside the polyhedral model (non-affine): left untouched.
    NotStaticControl,
    /// In model but nothing profitable found: left untouched.
    NoTransformation,
}

/// The Pluto-like baseline.
#[derive(Debug, Clone)]
pub struct PlutoLike {
    /// First-level tile size (Pluto's default 32).
    pub tile: i64,
    /// Second-level (L2) tile multiplier (`--l2tile`; 0 disables).
    pub l2_multiplier: i64,
    /// Insert `omp parallel for` on the outermost parallel loop
    /// (`-parallel`).
    pub parallelize: bool,
    /// Insert vectorization pragmas on the innermost loop
    /// (`-prevector`).
    pub prevector: bool,
    /// Unroll innermost loops by a fixed factor of 4 (`--unroll`, the
    /// Sec. V-D flag).
    pub unroll: bool,
}

impl Default for PlutoLike {
    fn default() -> PlutoLike {
        PlutoLike {
            tile: 32,
            l2_multiplier: 4,
            parallelize: true,
            prevector: true,
            unroll: false,
        }
    }
}

impl PlutoLike {
    /// Pluto invoked with `-tile -pet` only (the stencil comparison of
    /// Sec. V-B).
    pub fn tiling_only() -> PlutoLike {
        PlutoLike {
            tile: 32,
            l2_multiplier: 0,
            parallelize: false,
            prevector: true,
            unroll: false,
        }
    }

    /// Pluto as invoked for the arbitrary-loop-nest study of Sec. V-D:
    /// `-tile -prevector -unroll`.
    pub fn gong_flags() -> PlutoLike {
        PlutoLike {
            tile: 32,
            l2_multiplier: 0,
            parallelize: false,
            prevector: true,
            unroll: true,
        }
    }

    /// Transforms every Locus-annotated region of the program.
    ///
    /// Returns the transformed program plus the per-region outcomes (in
    /// region order). The `machine` is used only to *verify* the
    /// transformation preserved semantics (Pluto never emits wrong
    /// code); a diverging region falls back to the original.
    pub fn optimize(&self, program: &Program, machine: &Machine) -> (Program, Vec<PlutoOutcome>) {
        let baseline_checksum = machine
            .run(program, entry_of(program))
            .map(|m| m.checksum)
            .ok();
        let mut out = program.clone();
        let mut outcomes = Vec::new();
        for region in find_regions(program) {
            let Some(code) = extract_region(&out, &region) else {
                outcomes.push(PlutoOutcome::NoTransformation);
                continue;
            };
            let mut stmt = code.stmt.clone();
            let outcome = self.transform_region(&mut stmt);
            if outcome == PlutoOutcome::Transformed {
                let mut candidate = out.clone();
                replace_region(&mut candidate, &region, stmt);
                let ok = match (
                    baseline_checksum,
                    machine.run(&candidate, entry_of(&candidate)),
                ) {
                    (Some(expect), Ok(m)) => m.checksum == expect,
                    _ => false,
                };
                if ok {
                    out = candidate;
                    outcomes.push(PlutoOutcome::Transformed);
                } else {
                    outcomes.push(PlutoOutcome::NoTransformation);
                }
            } else {
                outcomes.push(outcome);
            }
        }
        (out, outcomes)
    }

    /// The scheduling heuristic on one region root.
    fn transform_region(&self, stmt: &mut Stmt) -> PlutoOutcome {
        // pet's static-control test: affine subscripts, allowing
        // modulo-by-constant (the double-buffer `t % 2` of the stencils).
        if !is_static_control(stmt) {
            return PlutoOutcome::NotStaticControl;
        }
        let deps = analyze_region(stmt);
        let info = loop_nest_info(stmt);
        let nest = perfect_nest_loops(stmt);
        if info.depth == 0 {
            return PlutoOutcome::NoTransformation;
        }

        let band: Vec<usize> = (0..nest.len()).collect();
        let mut transformed = false;
        // Whether this region went down the skewed-tiling path, where
        // the polyhedral model knows the point loops are parallel even
        // though the ad-hoc dependence tests cannot prove it.
        let mut skewed = false;

        if !nest.is_empty() && deps.band_permutable(&band) {
            // Pluto's prevector preparation: within a fully permutable
            // band, move a dependence-free (parallel) loop innermost so
            // the intra-tile loop vectorizes.
            if nest.len() >= 2 {
                let parallel_level = (0..nest.len()).rev().find(|&l| {
                    deps.deps.iter().all(|d| {
                        matches!(
                            d.directions.get(l),
                            None | Some(locus_analysis::deps::Direction::Eq)
                        )
                    })
                });
                if let Some(l) = parallel_level {
                    if l != nest.len() - 1 {
                        let mut perm: Vec<usize> = (0..nest.len()).filter(|&x| x != l).collect();
                        perm.push(l);
                        let _ = locus_transform::interchange::interchange(stmt, &perm, true);
                    }
                }
            }
            // Fully permutable band: rectangular tiling, Pluto's bread
            // and butter. One level of `tile`, plus an outer L2 level.
            // Degenerate levels (tile >= extent) are skipped — Pluto's
            // code generator never emits single-iteration tile bands.
            let min_extent = nest
                .iter()
                .filter_map(|l| l.const_trip_count())
                .min()
                .unwrap_or(i64::MAX);
            let sizes: Vec<i64> = nest.iter().map(|_| self.tile).collect();
            let l2_size = self.tile * self.l2_multiplier;
            if self.l2_multiplier > 1 && l2_size < min_extent {
                let l2: Vec<i64> = nest.iter().map(|_| l2_size).collect();
                if tile(stmt, &HierIndex::root(), &l2, true).is_ok() {
                    // Point band starts below the l2 tile loops.
                    let mut idx = vec![0usize];
                    idx.extend(std::iter::repeat_n(0, nest.len()));
                    let _ = tile(stmt, &HierIndex::new(idx), &sizes, true);
                    transformed = true;
                }
            } else if self.tile < min_extent && tile(stmt, &HierIndex::root(), &sizes, true).is_ok()
            {
                transformed = true;
            }
        } else if nest.len() >= 2 {
            // Not permutable as-is: Pluto's scheduler finds a skewed
            // band for uniform-dependence (stencil-like) nests.
            let matrix = skewing1_matrix(nest.len(), self.tile);
            if generic_tile(stmt, &HierIndex::root(), &matrix, None).is_ok() {
                transformed = true;
                skewed = true;
            }
        }

        if self.prevector {
            // Pluto's -prevector marks loops its *model* proves parallel.
            // On the skewed path that knowledge exceeds the subscript
            // tests (it understands the `t % 2` buffers), so the pragmas
            // are emitted unconditionally; elsewhere they are emitted
            // only when the innermost loops are provably vectorizable —
            // in which case the compiler's auto-vectorizer would have
            // handled them anyway.
            let provable = deps.available
                && locus_analysis::loops::loop_nest_info(stmt)
                    .inner_loops
                    .iter()
                    .all(|idx| {
                        idx.resolve(stmt)
                            .map(|l| analyze_region(l).vectorizable())
                            .unwrap_or(false)
                    });
            if skewed || provable {
                let _ = insert_ivdep(stmt, &LoopSel::Innermost);
                let _ = insert_vector_always(stmt, &LoopSel::Innermost);
            }
        }
        if self.unroll {
            // `--unroll` is a post-pass: it does not make a nest count as
            // "transformed" (the paper's 397/856 measures polyhedral
            // applicability, i.e. whether Pluto restructured the nest).
            let inner = locus_analysis::loops::loop_nest_info(stmt).inner_loops;
            let _ = locus_transform::unroll::unroll_all(stmt, &inner, 4);
        }
        if self.parallelize {
            // Outermost loop is marked parallel when the model *proves*
            // it carries no dependence.
            let outer_parallel =
                deps.available && deps.deps.iter().all(|d| d.carrier_level() != Some(0));
            if outer_parallel {
                // Legality was just proven above; skip the re-check.
                let _ = insert_omp_for(
                    stmt,
                    &LoopSel::parse("0").unwrap_or(LoopSel::Outermost),
                    None,
                    false,
                );
                transformed = true;
            }
        }

        if transformed {
            PlutoOutcome::Transformed
        } else {
            PlutoOutcome::NoTransformation
        }
    }
}

/// The entry function of a corpus program (always `kernel` in this
/// workspace).
fn entry_of(_program: &Program) -> &'static str {
    "kernel"
}

/// pet-style static-control check: every array subscript is affine or a
/// modulo-by-constant of an affine expression.
fn is_static_control(stmt: &Stmt) -> bool {
    use locus_srcir::ast::{BinOp, Expr};
    let mut ok = true;
    locus_srcir::visit::walk_exprs_in_stmt(stmt, &mut |e| {
        if let Expr::Index { index, .. } = e {
            let fine = match index.as_ref() {
                Expr::Binary {
                    op: BinOp::Rem,
                    lhs,
                    rhs,
                } => {
                    locus_analysis::affine::extract_affine(lhs).is_some()
                        && rhs.as_const_int().is_some()
                }
                other => locus_analysis::affine::extract_affine(other).is_some(),
            };
            if !fine {
                ok = false;
            }
        }
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::scaled_small().with_cores(1))
    }

    #[test]
    fn tiles_matmul_and_preserves_semantics() {
        let program = locus_corpus::dgemm_program(64);
        let m = machine();
        let (optimized, outcomes) = PlutoLike::default().optimize(&program, &m);
        assert_eq!(outcomes, vec![PlutoOutcome::Transformed]);
        let base = m.run(&program, "kernel").unwrap();
        let opt = m.run(&optimized, "kernel").unwrap();
        assert_eq!(base.checksum, opt.checksum);
        let printed = locus_srcir::print_program(&optimized);
        // 64^3 exceeds the 32-tile: a single-level tile band appears
        // (the 128-wide l2 band would degenerate and is skipped).
        assert!(printed.matches("for (").count() == 6, "{printed}");
    }

    #[test]
    fn rejects_non_affine_nests() {
        let src = r#"
        double A[64];
        int idx[64];
        void kernel() {
            #pragma @Locus loop=scop
            for (int i = 0; i < 64; i++)
                A[idx[i]] = 1.0;
        }
        "#;
        let program = locus_srcir::parse_program(src).unwrap();
        let m = machine();
        let pluto = PlutoLike {
            prevector: false,
            parallelize: false,
            ..PlutoLike::default()
        };
        let (_, outcomes) = pluto.optimize(&program, &m);
        assert_eq!(outcomes, vec![PlutoOutcome::NotStaticControl]);
    }

    #[test]
    fn stencils_get_skewed_tiling() {
        let program = locus_corpus::stencil_program(locus_corpus::Stencil::Heat1d, 64, 8);
        let m = machine();
        let (optimized, outcomes) = PlutoLike::tiling_only().optimize(&program, &m);
        assert_eq!(outcomes, vec![PlutoOutcome::Transformed]);
        let base = m.run(&program, "kernel").unwrap();
        let opt = m.run(&optimized, "kernel").unwrap();
        assert_eq!(base.checksum, opt.checksum, "skewed tiling must be exact");
    }

    #[test]
    fn is_deterministic() {
        let program = locus_corpus::dgemm_program(24);
        let m = machine();
        let (a, _) = PlutoLike::default().optimize(&program, &m);
        let (b, _) = PlutoLike::default().optimize(&program, &m);
        assert_eq!(a, b);
    }
}
