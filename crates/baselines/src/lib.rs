//! Baseline comparators for the Locus evaluation (Sec. V of the paper).
//!
//! * [`pluto`] — a model of Pluto (0.11.4-pet with `-tile -l2tile
//!   -parallel`): a deterministic, heuristic polyhedral restructurer.
//!   It transforms only nests its model covers (affine subscripts and
//!   bounds — the reason Pluto transforms 397 of the 856 nests in
//!   Sec. V-D), picks *fixed* tile sizes rather than searching (the
//!   reason Locus beats it by ~3.45x on DGEMM), and generates in under a
//!   second;
//! * [`mkl`] — an MKL-like oracle DGEMM: a hand-tuned variant whose tile
//!   sizes are derived analytically from the machine's cache geometry;
//! * [`gong`] — the two hard-coded transformation sequences of Gong et
//!   al. that the paper's Fig. 13 program replaces with 37 lines of
//!   Locus.

#![warn(missing_docs)]

pub mod gong;
pub mod mkl;
pub mod pluto;

pub use gong::{apply_gong_sequence, GongSequence};
pub use mkl::mkl_like_dgemm;
pub use pluto::{PlutoLike, PlutoOutcome};
