//! Unparser for Locus programs.
//!
//! Renders a [`LocusProgram`] back to Locus source. Together with
//! [`crate::specialize::specialize`], this implements the paper's Sec. II
//! promise:
//! "At the end, the result is a Locus *direct* program that can be
//! shipped with the baseline source code to be reused for machines with
//! similar environments."

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole program.
pub fn print_program(program: &LocusProgram) -> String {
    let mut out = String::new();
    for item in &program.items {
        print_item(&mut out, item);
    }
    out
}

fn print_item(out: &mut String, item: &LItem) {
    match item {
        LItem::Import(path) => {
            let _ = writeln!(out, "import \"{path}\";");
        }
        LItem::Extern(e) => {
            let _ = writeln!(out, "extern {};", print_expr(e));
        }
        LItem::CodeReg { name, body } => {
            let _ = write!(out, "CodeReg {name} ");
            print_block(out, body, 0);
        }
        LItem::OptSeq { name, params, body } => {
            let _ = write!(out, "OptSeq {name}({}) ", params.join(", "));
            print_block(out, body, 0);
        }
        LItem::Query { name, params, body } => {
            let _ = write!(out, "Query {name}({}) ", params.join(", "));
            print_block(out, body, 0);
        }
        LItem::ModuleDecl { name, body } => {
            let _ = write!(out, "Module {name} ");
            print_block(out, body, 0);
        }
        LItem::Def { name, params, body } => {
            let _ = write!(out, "def {name}({}) ", params.join(", "));
            print_block(out, body, 0);
        }
        LItem::SearchBlock(body) => {
            out.push_str("Search ");
            print_block(out, body, 0);
        }
        LItem::Stmt(stmt) => print_stmt(out, stmt, 0),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, block: &LBlock, level: usize) {
    for (i, alt) in block.alternatives.iter().enumerate() {
        if i > 0 {
            out.push_str(" OR ");
        }
        out.push_str("{\n");
        for stmt in alt {
            print_stmt(out, stmt, level + 1);
        }
        indent(out, level);
        out.push('}');
    }
    out.push('\n');
}

fn print_stmt(out: &mut String, stmt: &LStmt, level: usize) {
    match stmt {
        LStmt::Pass => {
            indent(out, level);
            out.push_str("None;\n");
        }
        LStmt::Expr(e) => {
            indent(out, level);
            let _ = writeln!(out, "{};", print_expr(e));
        }
        LStmt::Print(e) => {
            indent(out, level);
            let _ = writeln!(out, "print {};", print_expr(e));
        }
        LStmt::Return(Some(e)) => {
            indent(out, level);
            let _ = writeln!(out, "return {};", print_expr(e));
        }
        LStmt::Return(None) => {
            indent(out, level);
            out.push_str("return;\n");
        }
        LStmt::Assign { targets, value } => {
            indent(out, level);
            let ts: Vec<String> = targets.iter().map(print_expr).collect();
            let _ = writeln!(out, "{} = {};", ts.join(", "), print_expr(value));
        }
        LStmt::Optional { stmt, .. } => {
            indent(out, level);
            let mut inner = String::new();
            print_stmt(&mut inner, stmt, 0);
            out.push('*');
            out.push_str(inner.trim_start());
        }
        LStmt::Block(block) => {
            indent(out, level);
            print_block(out, block, level);
        }
        LStmt::If {
            cond,
            then,
            elifs,
            els,
        } => {
            indent(out, level);
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_block_inline(out, then, level);
            for (c, b) in elifs {
                indent(out, level);
                let _ = write!(out, "elif ({}) ", print_expr(c));
                print_block_inline(out, b, level);
            }
            if let Some(b) = els {
                indent(out, level);
                out.push_str("else ");
                print_block_inline(out, b, level);
            }
        }
        LStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            let mut i = String::new();
            print_stmt(&mut i, init, 0);
            let mut s = String::new();
            print_stmt(&mut s, step, 0);
            let _ = write!(
                out,
                "for ({}; {}; {}) ",
                i.trim().trim_end_matches(';'),
                print_expr(cond),
                s.trim().trim_end_matches(';')
            );
            print_block_inline(out, body, level);
        }
        LStmt::While { cond, body } => {
            indent(out, level);
            let _ = write!(out, "while {} ", print_expr(cond));
            print_block_inline(out, body, level);
        }
    }
}

/// Prints a block that continues an `if`/`for` header line.
fn print_block_inline(out: &mut String, block: &LBlock, level: usize) {
    print_block(out, block, level);
}

/// Renders an expression.
pub fn print_expr(e: &LExpr) -> String {
    expr_prec(e, 0)
}

fn bin_prec(op: LBinOp) -> u8 {
    match op {
        LBinOp::Or => 1,
        LBinOp::And => 2,
        LBinOp::Eq | LBinOp::Ne | LBinOp::Lt | LBinOp::Le | LBinOp::Gt | LBinOp::Ge => 3,
        LBinOp::Add | LBinOp::Sub => 4,
        LBinOp::Mul | LBinOp::Div | LBinOp::Rem => 5,
        LBinOp::Pow => 6,
    }
}

fn bin_symbol(op: LBinOp) -> &'static str {
    match op {
        LBinOp::Add => "+",
        LBinOp::Sub => "-",
        LBinOp::Mul => "*",
        LBinOp::Div => "/",
        LBinOp::Rem => "%",
        LBinOp::Pow => "**",
        LBinOp::Lt => "<",
        LBinOp::Le => "<=",
        LBinOp::Gt => ">",
        LBinOp::Ge => ">=",
        LBinOp::Eq => "==",
        LBinOp::Ne => "!=",
        LBinOp::And => "&&",
        LBinOp::Or => "||",
    }
}

fn expr_prec(e: &LExpr, parent: u8) -> String {
    match e {
        LExpr::Int(v) => v.to_string(),
        LExpr::Float(v) => {
            if v.fract() == 0.0 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        LExpr::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        LExpr::Ident(name) => name.clone(),
        LExpr::None => "None".to_string(),
        LExpr::List(items) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        LExpr::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("({})", inner.join(", "))
        }
        LExpr::Dict(entries) => {
            let inner: Vec<String> = entries
                .iter()
                .map(|(k, v)| format!("{k}={}", print_expr(v)))
                .collect();
            format!("dict({})", inner.join(", "))
        }
        LExpr::Attr { base, name } => format!("{}.{name}", expr_prec(base, 9)),
        LExpr::Call { callee, args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| match &a.name {
                    Some(n) => format!("{n}={}", print_expr(&a.value)),
                    None => print_expr(&a.value),
                })
                .collect();
            format!("{}({})", expr_prec(callee, 9), rendered.join(", "))
        }
        LExpr::Index { base, index } => {
            format!("{}[{}]", expr_prec(base, 9), print_expr(index))
        }
        LExpr::Range { lo, hi, step } => {
            let mut s = format!("{}..{}", expr_prec(lo, 5), expr_prec(hi, 5));
            if let Some(st) = step {
                let _ = write!(s, "..{}", expr_prec(st, 5));
            }
            s
        }
        LExpr::Neg(inner) => format!("-{}", expr_prec(inner, 8)),
        LExpr::Not(inner) => format!("not {}", expr_prec(inner, 8)),
        LExpr::Binary { op, lhs, rhs } => {
            let prec = bin_prec(*op);
            let text = format!(
                "{} {} {}",
                expr_prec(lhs, prec),
                bin_symbol(*op),
                expr_prec(rhs, prec + 1)
            );
            if prec < parent {
                format!("({text})")
            } else {
                text
            }
        }
        LExpr::Search { kind, args, .. } => {
            let name = match kind {
                SearchKind::Enum => "enum",
                SearchKind::Integer => "integer",
                SearchKind::Float => "float",
                SearchKind::Permutation => "permutation",
                SearchKind::PowerOfTwo => "poweroftwo",
                SearchKind::LogInteger => "loginteger",
                SearchKind::LogFloat => "logfloat",
            };
            let inner: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", inner.join(", "))
        }
        LExpr::OrExpr { options, .. } => {
            let inner: Vec<String> = options.iter().map(print_expr).collect();
            inner.join(" OR ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn round_trip(src: &str) -> LocusProgram {
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"))
    }

    /// Compares programs ignoring serial numbers (re-parsing renumbers).
    fn assert_equivalent(a: &LocusProgram, b: &LocusProgram) {
        assert_eq!(strip(format!("{a:?}")), strip(format!("{b:?}")));
    }

    fn strip(s: String) -> String {
        // Remove `serial: N` occurrences.
        let re_like: String = s
            .split("serial:")
            .enumerate()
            .map(|(i, part)| {
                if i == 0 {
                    part.to_string()
                } else {
                    let rest = part.split_once([',', ' ', '}']).map(|x| x.1).unwrap_or("");
                    format!("serial:<>{rest}")
                }
            })
            .collect();
        re_like
    }

    #[test]
    fn fig7_round_trips() {
        let src = r#"
        Search {
            buildcmd = "make";
            runcmd = "./matmul";
        }
        CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(2..512);
            Pips.Tiling(loop="0", factor=[tileI, 4, 8]);
            {
                Pragma.OMPFor(loop="0");
            } OR {
                Pragma.OMPFor(loop="0", schedule=enum("static", "dynamic"), chunk=integer(1..32));
            }
        }
        "#;
        let p1 = parse(src).unwrap();
        let p2 = round_trip(src);
        assert_equivalent(&p1, &p2);
    }

    #[test]
    fn fig13_round_trips() {
        let src = r#"
        CodeReg scop {
            perfect = BuiltIn.IsPerfectLoopNest();
            depth = BuiltIn.LoopNestDepth();
            if (RoseLocus.IsDepAvailable()) {
                if (perfect && depth > 1) {
                    permorder = permutation(seq(0, depth));
                    RoseLocus.Interchange(order=permorder);
                }
                {
                    if (perfect) {
                        indexT1 = integer(1..depth);
                        T1fac = poweroftwo(2..32);
                        RoseLocus.Tiling(loop=indexT1, factor=T1fac);
                    }
                } OR {
                    if (depth > 1) {
                        RoseLocus.UnrollAndJam(loop=1, factor=poweroftwo(2..4));
                    }
                } OR {
                    None;
                }
                innerloops = BuiltIn.ListInnerLoops();
                *RoseLocus.Distribute(loop=innerloops);
            }
            RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));
        }
        "#;
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_equivalent(&p1, &p2);
    }

    #[test]
    fn expressions_round_trip_with_precedence() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "not x && y",
            "a ** 2 + 1",
            "x == \"2D\"",
            "[1, 2, [3, 4]]",
            "dict(a=1, b=2)",
            "seq(0, depth)",
            "2..tileI",
        ] {
            let text = format!("CodeReg r {{ x = {src}; }}");
            let p1 = parse(&text).unwrap();
            let printed = print_program(&p1);
            let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
            assert_equivalent(&p1, &p2);
        }
    }

    #[test]
    fn control_flow_round_trips() {
        let src = r#"
        CodeReg r {
            if (a == 1) { x = 1; } elif (a == 2) { x = 2; } else { x = 3; }
            for (i = 0; i < 4; i = i + 1) { y = i; }
            while y > 0 { y = y - 1; }
            *Maybe.Do();
            transfA() OR transfB();
        }
        "#;
        let p1 = parse(src).unwrap();
        let p2 = round_trip(src);
        assert_equivalent(&p1, &p2);
    }
}
