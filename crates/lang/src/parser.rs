//! Recursive-descent parser for the Locus language (the EBNF of the
//! paper's Fig. 4).

use std::error::Error;
use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LocusLexError, SpannedTok, Tok};

/// Parse error for Locus programs.
#[derive(Debug, Clone, PartialEq)]
pub struct LocusParseError {
    /// 1-based source line of the offending token.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LocusParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Locus parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for LocusParseError {}

impl From<LocusLexError> for LocusParseError {
    fn from(e: LocusLexError) -> LocusParseError {
        LocusParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a Locus program.
///
/// # Errors
///
/// Returns [`LocusParseError`] on malformed input.
pub fn parse(src: &str) -> Result<LocusProgram, LocusParseError> {
    let tokens = lex(src)?;
    let mut p = P {
        tokens,
        pos: 0,
        serial: 0,
    };
    let mut items = Vec::new();
    while p.peek().is_some() {
        items.push(p.item()?);
    }
    Ok(LocusProgram {
        items,
        serial_count: p.serial,
    })
}

struct P {
    tokens: Vec<SpannedTok>,
    pos: usize,
    serial: usize,
}

impl P {
    fn next_serial(&mut self) -> usize {
        let s = self.serial;
        self.serial += 1;
        s
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + off).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> LocusParseError {
        LocusParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<(), LocusParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{want}`, found end of input"))),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(name)) if name == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, LocusParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(name),
            Some(t) => Err(self.err(format!("expected identifier, found `{t}`"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    // ---- items ----------------------------------------------------------

    fn item(&mut self) -> Result<LItem, LocusParseError> {
        if self.eat_kw("import") {
            let Some(Tok::Str(path)) = self.bump() else {
                return Err(self.err("import expects a string"));
            };
            self.expect(&Tok::Semi)?;
            return Ok(LItem::Import(path));
        }
        if self.eat_kw("extern") {
            let e = self.mol()?;
            self.expect(&Tok::Semi)?;
            return Ok(LItem::Extern(e));
        }
        if self.eat_kw("CodeReg") {
            let name = self.expect_ident()?;
            let body = self.block()?;
            return Ok(LItem::CodeReg { name, body });
        }
        if self.eat_kw("OptSeq") {
            let name = self.expect_ident()?;
            let params = self.param_list()?;
            let body = self.block()?;
            return Ok(LItem::OptSeq { name, params, body });
        }
        if self.eat_kw("Query") {
            let name = self.expect_ident()?;
            let params = self.param_list()?;
            let body = self.block()?;
            return Ok(LItem::Query { name, params, body });
        }
        if self.is_kw("Module")
            && matches!(self.peek_at(1), Some(Tok::Ident(_)))
            && self.peek_at(2) == Some(&Tok::LBrace)
        {
            self.bump();
            let name = self.expect_ident()?;
            let body = self.block()?;
            return Ok(LItem::ModuleDecl { name, body });
        }
        if self.eat_kw("def") {
            let name = self.expect_ident()?;
            let params = self.param_list()?;
            let body = self.block()?;
            return Ok(LItem::Def { name, params, body });
        }
        if self.is_kw("Search") && self.peek_at(1) == Some(&Tok::LBrace) {
            self.bump();
            let body = self.block()?;
            return Ok(LItem::SearchBlock(body));
        }
        Ok(LItem::Stmt(self.stmt()?))
    }

    fn param_list(&mut self) -> Result<Vec<String>, LocusParseError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.expect_ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(params)
    }

    // ---- blocks ---------------------------------------------------------

    /// Parses `{ stmts }` and any `OR { stmts }` continuation.
    fn block(&mut self) -> Result<LBlock, LocusParseError> {
        let mut alternatives = vec![self.braced_stmts()?];
        while self.is_kw("OR") && self.peek_at(1) == Some(&Tok::LBrace) {
            self.bump();
            alternatives.push(self.braced_stmts()?);
        }
        let serial = if alternatives.len() > 1 {
            Some(self.next_serial())
        } else {
            None
        };
        Ok(LBlock {
            alternatives,
            serial,
        })
    }

    fn braced_stmts(&mut self) -> Result<Vec<LStmt>, LocusParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    // ---- statements -----------------------------------------------------

    fn stmt(&mut self) -> Result<LStmt, LocusParseError> {
        if self.peek() == Some(&Tok::LBrace) {
            let block = self.block()?;
            return Ok(LStmt::Block(block));
        }
        if self.is_kw("if") {
            return self.if_stmt();
        }
        if self.is_kw("for") && self.peek_at(1) == Some(&Tok::LParen) {
            return self.for_stmt();
        }
        if self.is_kw("while") {
            self.bump();
            let cond = self.test()?;
            let body = self.block()?;
            return Ok(LStmt::While { cond, body });
        }
        if self.eat_kw("return") {
            if self.eat(&Tok::Semi) {
                return Ok(LStmt::Return(None));
            }
            let e = self.test()?;
            self.expect(&Tok::Semi)?;
            return Ok(LStmt::Return(Some(e)));
        }
        if self.eat_kw("print") {
            let e = self.test()?;
            self.expect(&Tok::Semi)?;
            return Ok(LStmt::Print(e));
        }
        if self.is_kw("None") && self.peek_at(1) == Some(&Tok::Semi) {
            self.bump();
            self.bump();
            return Ok(LStmt::Pass);
        }
        if self.peek() == Some(&Tok::Star) {
            // Optional statement: `*stmt`.
            self.bump();
            let serial = self.next_serial();
            let inner = self.simple_stmt()?;
            return Ok(LStmt::Optional {
                serial,
                stmt: Box::new(inner),
            });
        }
        self.simple_stmt()
    }

    /// Assignment or (OR-)expression statement, consuming the `;`.
    fn simple_stmt(&mut self) -> Result<LStmt, LocusParseError> {
        let first = self.test()?;
        match self.peek() {
            Some(Tok::Eq) => {
                self.bump();
                let value = self.or_expr_rhs()?;
                self.expect(&Tok::Semi)?;
                Ok(LStmt::Assign {
                    targets: vec![first],
                    value,
                })
            }
            Some(Tok::Comma) => {
                // Multiple targets: `a, b = value;`
                let mut targets = vec![first];
                while self.eat(&Tok::Comma) {
                    targets.push(self.test()?);
                }
                self.expect(&Tok::Eq)?;
                let value = self.or_expr_rhs()?;
                self.expect(&Tok::Semi)?;
                Ok(LStmt::Assign { targets, value })
            }
            _ => {
                // Possibly an OR statement.
                let expr = self.or_expr_tail(first)?;
                self.expect(&Tok::Semi)?;
                Ok(LStmt::Expr(expr))
            }
        }
    }

    /// Parses the right-hand side of an assignment: `test (OR test)*`.
    fn or_expr_rhs(&mut self) -> Result<LExpr, LocusParseError> {
        let first = self.test()?;
        self.or_expr_tail(first)
    }

    fn or_expr_tail(&mut self, first: LExpr) -> Result<LExpr, LocusParseError> {
        if !self.is_kw("OR") {
            return Ok(first);
        }
        let mut options = vec![first];
        while self.eat_kw("OR") {
            options.push(self.test()?);
        }
        Ok(LExpr::OrExpr {
            serial: self.next_serial(),
            options,
        })
    }

    fn if_stmt(&mut self) -> Result<LStmt, LocusParseError> {
        self.bump(); // `if`
        let cond = self.test()?;
        let then = self.block()?;
        let mut elifs = Vec::new();
        let mut els = None;
        loop {
            if self.is_kw("elif") {
                self.bump();
                let c = self.test()?;
                let b = self.block()?;
                elifs.push((c, b));
            } else if self.is_kw("else") {
                self.bump();
                els = Some(self.block()?);
                break;
            } else {
                break;
            }
        }
        Ok(LStmt::If {
            cond,
            then,
            elifs,
            els,
        })
    }

    fn for_stmt(&mut self) -> Result<LStmt, LocusParseError> {
        self.bump(); // `for`
        self.expect(&Tok::LParen)?;
        let init = self.small_stmt_no_semi()?;
        self.expect(&Tok::Semi)?;
        let cond = self.test()?;
        self.expect(&Tok::Semi)?;
        let step = self.small_stmt_no_semi()?;
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(LStmt::For {
            init: Box::new(init),
            cond,
            step: Box::new(step),
            body,
        })
    }

    /// A small statement without the trailing `;` (for-loop header).
    fn small_stmt_no_semi(&mut self) -> Result<LStmt, LocusParseError> {
        let first = self.test()?;
        if self.eat(&Tok::Eq) {
            let value = self.test()?;
            Ok(LStmt::Assign {
                targets: vec![first],
                value,
            })
        } else {
            Ok(LStmt::Expr(first))
        }
    }

    // ---- expressions ------------------------------------------------------

    fn test(&mut self) -> Result<LExpr, LocusParseError> {
        let mut lhs = self.and_test()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_test()?;
            lhs = bin(LBinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_test(&mut self) -> Result<LExpr, LocusParseError> {
        let mut lhs = self.not_test()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.not_test()?;
            lhs = bin(LBinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_test(&mut self) -> Result<LExpr, LocusParseError> {
        if self.eat_kw("not") {
            let inner = self.not_test()?;
            return Ok(LExpr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<LExpr, LocusParseError> {
        let mut lhs = self.arith()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => LBinOp::Lt,
                Some(Tok::Le) => LBinOp::Le,
                Some(Tok::Gt) => LBinOp::Gt,
                Some(Tok::Ge) => LBinOp::Ge,
                Some(Tok::EqEq) => LBinOp::Eq,
                Some(Tok::Ne) => LBinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.arith()?;
            lhs = bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn arith(&mut self) -> Result<LExpr, LocusParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => LBinOp::Add,
                Some(Tok::Minus) => LBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = bin(op, lhs, rhs);
        }
        // Range expression: `a..b` or `a..b..c`.
        if self.eat(&Tok::DotDot) {
            let hi = {
                let mut h = self.term()?;
                loop {
                    let op = match self.peek() {
                        Some(Tok::Plus) => LBinOp::Add,
                        Some(Tok::Minus) => LBinOp::Sub,
                        _ => break,
                    };
                    self.bump();
                    let rhs = self.term()?;
                    h = bin(op, h, rhs);
                }
                h
            };
            let step = if self.eat(&Tok::DotDot) {
                Some(Box::new(self.term()?))
            } else {
                None
            };
            return Ok(LExpr::Range {
                lo: Box::new(lhs),
                hi: Box::new(hi),
                step,
            });
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<LExpr, LocusParseError> {
        let mut lhs = self.power()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => LBinOp::Mul,
                Some(Tok::Slash) => LBinOp::Div,
                Some(Tok::Percent) => LBinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.power()?;
            lhs = bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn power(&mut self) -> Result<LExpr, LocusParseError> {
        let base = self.unary()?;
        if self.eat(&Tok::StarStar) {
            let exp = self.unary()?;
            return Ok(bin(LBinOp::Pow, base, exp));
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<LExpr, LocusParseError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary()?;
            return Ok(LExpr::Neg(Box::new(inner)));
        }
        self.mol()
    }

    /// The grammar's `mol`: an atom with call/index/attribute postfixes.
    fn mol(&mut self) -> Result<LExpr, LocusParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::LParen) => {
                    self.bump();
                    let args = self.arg_list()?;
                    e = LExpr::Call {
                        callee: Box::new(e),
                        args,
                    };
                }
                Some(Tok::LBracket) => {
                    self.bump();
                    let index = self.test()?;
                    self.expect(&Tok::RBracket)?;
                    e = LExpr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    };
                }
                Some(Tok::Dot) => {
                    self.bump();
                    let name = self.expect_ident()?;
                    e = LExpr::Attr {
                        base: Box::new(e),
                        name,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<LArg>, LocusParseError> {
        let mut args = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(args);
        }
        loop {
            // Named argument: IDENT '=' test (not '==').
            let named = matches!(
                (self.peek(), self.peek_at(1)),
                (Some(Tok::Ident(_)), Some(Tok::Eq))
            );
            if named {
                let Some(Tok::Ident(name)) = self.bump() else {
                    unreachable!()
                };
                self.bump(); // '='
                let value = self.test()?;
                args.push(LArg {
                    name: Some(name),
                    value,
                });
            } else {
                let value = self.test()?;
                args.push(LArg { name: None, value });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    fn atom(&mut self) -> Result<LExpr, LocusParseError> {
        // Search-construct keywords.
        if let Some(Tok::Ident(name)) = self.peek() {
            if let Some(kind) = SearchKind::from_name(name) {
                if self.peek_at(1) == Some(&Tok::LParen) {
                    self.bump();
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.test()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    return Ok(LExpr::Search {
                        serial: self.next_serial(),
                        kind,
                        args,
                    });
                }
            }
            if name == "dict" && self.peek_at(1) == Some(&Tok::LParen) {
                self.bump();
                self.bump();
                let mut entries = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        let key = self.expect_ident()?;
                        self.expect(&Tok::Eq)?;
                        let value = self.test()?;
                        entries.push((key, value));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                }
                return Ok(LExpr::Dict(entries));
            }
            if name == "None" {
                self.bump();
                return Ok(LExpr::None);
            }
        }
        let line = self.line();
        match self.bump() {
            Some(Tok::Int(v)) => Ok(LExpr::Int(v)),
            Some(Tok::Float(v)) => Ok(LExpr::Float(v)),
            Some(Tok::Str(s)) => Ok(LExpr::Str(s)),
            Some(Tok::Ident(name)) => Ok(LExpr::Ident(name)),
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    loop {
                        items.push(self.test()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                Ok(LExpr::List(items))
            }
            Some(Tok::LParen) => {
                let first = self.test()?;
                if self.eat(&Tok::Comma) {
                    let mut items = vec![first];
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            items.push(self.test()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(LExpr::Tuple(items))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Some(t) => Err(LocusParseError {
                line,
                message: format!("unexpected token `{t}` in expression"),
            }),
            None => Err(self.err("unexpected end of input in expression")),
        }
    }
}

fn bin(op: LBinOp, lhs: LExpr, rhs: LExpr) -> LExpr {
    LExpr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig5_program() {
        let src = r#"
import "RoseLocus";
def printstatus(type) {
    print "Tiling selected: " + type;
}
OptSeq Tiling2D() {
    tileI = poweroftwo(2..32);
    tileJ = poweroftwo(2..32);
    RoseLocus.Tiling(loop="0", factor=[tileI, tileJ]);
    return "2D";
}
OptSeq Tiling3D() {
    RoseLocus.Tiling(loop="0", factor=[4, 4, 8]);
    return "3D";
}
CodeReg matmul {
    tiledim = 4;
    tiletype = Tiling2D() OR Tiling3D();
    printstatus(tiletype);
    if (tiletype == "2D") {
        RoseLocus.Unroll(loop=innermost, factor=tiledim);
    }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.codereg_names(), vec!["matmul"]);
        assert!(p.optseq("Tiling2D").is_some());
        assert!(p.optseq("Tiling3D").is_some());
        assert!(p.method("printstatus").is_some());
        // Three search constructs: two pow2 + the OR expression.
        assert_eq!(p.serial_count, 3);
    }

    #[test]
    fn parses_fig7_program() {
        let src = r#"
Search {
    buildcmd = "make clean; make";
    runcmd = "./matmul";
}
CodeReg matmul {
    RoseLocus.Interchange(order=[0, 2, 1]);
    tileI = poweroftwo(2..512);
    tileK = poweroftwo(2..512);
    tileJ = poweroftwo(2..512);
    Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
    tileI_2 = poweroftwo(2..tileI);
    tileK_2 = poweroftwo(2..tileK);
    tileJ_2 = poweroftwo(2..tileJ);
    Pips.Tiling(loop="0.0.0.0", factor=[tileI_2, tileK_2, tileJ_2]);
    {
        Pragma.OMPFor(loop="0");
    } OR {
        Pragma.OMPFor(loop="0",
                      schedule=enum("static", "dynamic"),
                      chunk=integer(1..32));
    }
}
"#;
        let p = parse(src).unwrap();
        assert!(p.search_block().is_some());
        // 6 pow2 + enum + integer + the OR block = 9 serials.
        assert_eq!(p.serial_count, 9);
        let body = p.codereg("matmul").unwrap();
        // The OR block is the last statement.
        let last = body.alternatives[0].last().unwrap();
        match last {
            LStmt::Block(b) => assert_eq!(b.alternatives.len(), 2),
            other => panic!("expected OR block, got {other:?}"),
        }
    }

    #[test]
    fn parses_fig13_generic_program() {
        let src = r#"
Search {
    buildcmd = "make clean; make LOOPEXTRACTED";
    runcmd = "LOOPEXTRACTED ../input 10";
}
CodeReg scop {
    perfect = BuiltIn.IsPerfectLoopNest();
    depth = BuiltIn.LoopNestDepth();
    if (RoseLocus.IsDepAvailable()) {
        if (perfect && depth > 1) {
            permorder = permutation(seq(0, depth));
            RoseLocus.Interchange(order=permorder);
        }
        {
            if (perfect) {
                indexT1 = integer(1..depth);
                T1fac = poweroftwo(2..32);
                RoseLocus.Tiling(loop=indexT1, factor=T1fac);
            }
        } OR {
            if (depth > 1) {
                indexUAJ = integer(1..depth-1);
                UAJfac = poweroftwo(2..4);
                RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);
            }
        } OR {
            None; # No tiling, interchange, or unroll and jam.
        }
        innerloops = BuiltIn.ListInnerLoops();
        *RoseLocus.Distribute(loop=innerloops);
    }
    innerloops = BuiltIn.ListInnerLoops();
    RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));
}
"#;
        let p = parse(src).unwrap();
        // permutation + OR block(3) + integer + pow2 + integer + pow2 +
        // optional + pow2 = 8 serials.
        assert_eq!(p.serial_count, 8);
    }

    #[test]
    fn parses_fig11_kripke_program() {
        let src = r#"
datalayout = enum("DZG", "DGZ", "GDZ", "GZD", "ZDG", "ZGD");
CodeReg Scattering {
    if (datalayout == "DGZ") {
        looporder = [0, 1, 2, 3, 4];
        omploop = "0.0.0.0";
    } elif (datalayout == "GDZ") {
        looporder = [1, 2, 0, 3, 4];
        omploop = "0.0.0.0";
    } else {
        looporder = [0, 3, 4, 1, 2];
        omploop = "0.0";
    }
    sourcepath = "scatter_" + datalayout + ".txt";
    BuiltIn.Altdesc(stmt="0.0.0.0.0.3", source=sourcepath);
    RoseLocus.Interchange(order=looporder);
    RoseLocus.LICM();
    RoseLocus.ScalarRepl();
    Pragma.OMPFor(loop=omploop);
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.serial_count, 1);
        assert_eq!(p.codereg_names(), vec!["Scattering"]);
    }

    #[test]
    fn parses_or_statement_and_optional() {
        let p = parse("CodeReg r { transfA() OR transfB(); *maybe(); }").unwrap();
        let body = p.codereg("r").unwrap();
        assert!(matches!(
            &body.alternatives[0][0],
            LStmt::Expr(LExpr::OrExpr { options, .. }) if options.len() == 2
        ));
        assert!(matches!(&body.alternatives[0][1], LStmt::Optional { .. }));
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            r#"CodeReg r {
                for (i = 0; i < 4; i = i + 1) { x = i; }
                while x > 0 { x = x - 1; }
            }"#,
        )
        .unwrap();
        let body = p.codereg("r").unwrap();
        assert!(matches!(&body.alternatives[0][0], LStmt::For { .. }));
        assert!(matches!(&body.alternatives[0][1], LStmt::While { .. }));
    }

    #[test]
    fn parses_data_structures() {
        let p = parse(
            r#"CodeReg r {
                l = [1, 2, 3];
                t = (1, "two");
                d = dict(a=1, b=2);
                m = [[s1, 0], [0 - s1, s1]];
                x = l[0] + d.a;
            }"#,
        )
        .unwrap();
        assert_eq!(p.serial_count, 0);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let err = parse("CodeReg r {\n x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn range_with_arithmetic_endpoints() {
        let p = parse("CodeReg r { x = integer(1..depth-1); }").unwrap();
        let body = p.codereg("r").unwrap();
        let LStmt::Assign { value, .. } = &body.alternatives[0][0] else {
            panic!("expected assignment")
        };
        let LExpr::Search { kind, args, .. } = value else {
            panic!("expected search construct, got {value:?}")
        };
        assert_eq!(*kind, SearchKind::Integer);
        assert!(matches!(&args[0], LExpr::Range { .. }));
    }
}
