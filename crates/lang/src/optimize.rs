//! Optimizations applied to Locus programs (Sec. IV-C of the paper).
//!
//! Before a program's space is converted for a search module, the system
//! applies:
//!
//! 1. **Query pre-evaluation** ([`substitute_queries`]) — `Query`
//!    operations used by search constructs must be known before the
//!    search starts, so they are executed once against the region and
//!    their results replace the calls;
//! 2. **Constant propagation, constant folding and dead-code
//!    elimination** ([`optimize`]) — with query results inlined, entire
//!    conditional arms become statically dead (e.g. everything guarded
//!    by `depth > 1` for a depth-1 nest in Fig. 13), removing their
//!    search constructs from the space and thereby shrinking the search.

use std::collections::HashMap;

use crate::ast::*;
use crate::interp::binary_values;
use crate::value::Value;

/// Resolver callback for [`substitute_queries`]: receives the module,
/// function and literal arguments of a call; `Some(value)` substitutes.
pub type QueryResolver<'a> =
    &'a mut dyn FnMut(&str, &str, &[(Option<String>, Value)]) -> Option<Value>;

/// Statistics of one optimizer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Expressions replaced by constants.
    pub folded: usize,
    /// Conditional branches removed as dead.
    pub branches_removed: usize,
    /// Query calls substituted.
    pub queries_substituted: usize,
}

/// Replaces query invocations with their (pre-computed) results.
///
/// `resolve` receives `(module, function, literal args)` for every module
/// call whose arguments are compile-time literals; returning
/// `Some(value)` substitutes the call (queries), `None` leaves it in
/// place (transformations).
pub fn substitute_queries(program: &mut LocusProgram, resolve: QueryResolver<'_>) -> OptStats {
    let mut stats = OptStats::default();
    let mut items = std::mem::take(&mut program.items);
    for item in &mut items {
        for block in item_blocks(item) {
            subst_block(block, resolve, &mut stats);
        }
    }
    program.items = items;
    stats
}

fn item_blocks(item: &mut LItem) -> Vec<&mut LBlock> {
    match item {
        LItem::CodeReg { body, .. }
        | LItem::OptSeq { body, .. }
        | LItem::Query { body, .. }
        | LItem::ModuleDecl { body, .. }
        | LItem::Def { body, .. }
        | LItem::SearchBlock(body) => vec![body],
        LItem::Stmt(stmt) => {
            // Wrap in a helper: collect blocks within the statement by
            // walking it below (handled by subst_stmt directly).
            let _ = stmt;
            Vec::new()
        }
        _ => Vec::new(),
    }
}

fn subst_block(block: &mut LBlock, resolve: QueryResolver<'_>, stats: &mut OptStats) {
    for alt in &mut block.alternatives {
        for stmt in alt {
            subst_stmt(stmt, resolve, stats);
        }
    }
}

fn subst_stmt(stmt: &mut LStmt, resolve: QueryResolver<'_>, stats: &mut OptStats) {
    match stmt {
        LStmt::Expr(e) | LStmt::Print(e) | LStmt::Return(Some(e)) => subst_expr(e, resolve, stats),
        LStmt::Assign { targets, value } => {
            for t in targets {
                subst_expr(t, resolve, stats);
            }
            subst_expr(value, resolve, stats);
        }
        LStmt::Optional { stmt, .. } => subst_stmt(stmt, resolve, stats),
        LStmt::Block(b) => subst_block(b, resolve, stats),
        LStmt::If {
            cond,
            then,
            elifs,
            els,
        } => {
            subst_expr(cond, resolve, stats);
            subst_block(then, resolve, stats);
            for (c, b) in elifs {
                subst_expr(c, resolve, stats);
                subst_block(b, resolve, stats);
            }
            if let Some(b) = els {
                subst_block(b, resolve, stats);
            }
        }
        LStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            subst_stmt(init, resolve, stats);
            subst_expr(cond, resolve, stats);
            subst_stmt(step, resolve, stats);
            subst_block(body, resolve, stats);
        }
        LStmt::While { cond, body } => {
            subst_expr(cond, resolve, stats);
            subst_block(body, resolve, stats);
        }
        LStmt::Return(None) | LStmt::Pass => {}
    }
}

fn subst_expr(e: &mut LExpr, resolve: QueryResolver<'_>, stats: &mut OptStats) {
    // Recurse first so nested query calls in arguments substitute.
    match e {
        LExpr::List(items) | LExpr::Tuple(items) => {
            for i in items {
                subst_expr(i, resolve, stats);
            }
        }
        LExpr::Dict(entries) => {
            for (_, v) in entries {
                subst_expr(v, resolve, stats);
            }
        }
        LExpr::Attr { base, .. } => subst_expr(base, resolve, stats),
        LExpr::Index { base, index } => {
            subst_expr(base, resolve, stats);
            subst_expr(index, resolve, stats);
        }
        LExpr::Range { lo, hi, step } => {
            subst_expr(lo, resolve, stats);
            subst_expr(hi, resolve, stats);
            if let Some(s) = step {
                subst_expr(s, resolve, stats);
            }
        }
        LExpr::Neg(i) | LExpr::Not(i) => subst_expr(i, resolve, stats),
        LExpr::Binary { lhs, rhs, .. } => {
            subst_expr(lhs, resolve, stats);
            subst_expr(rhs, resolve, stats);
        }
        LExpr::Search { args, .. } => {
            for a in args {
                subst_expr(a, resolve, stats);
            }
        }
        LExpr::OrExpr { options, .. } => {
            for o in options {
                subst_expr(o, resolve, stats);
            }
        }
        LExpr::Call { callee, args } => {
            for a in args.iter_mut() {
                subst_expr(&mut a.value, resolve, stats);
            }
            if let LExpr::Attr { base, name } = callee.as_ref() {
                if let LExpr::Ident(module) = base.as_ref() {
                    let mut literal_args = Vec::with_capacity(args.len());
                    let mut all_literal = true;
                    for a in args.iter() {
                        match expr_to_value(&a.value) {
                            Some(v) => literal_args.push((a.name.clone(), v)),
                            None => {
                                all_literal = false;
                                break;
                            }
                        }
                    }
                    if all_literal {
                        if let Some(result) = resolve(module, name, &literal_args) {
                            stats.queries_substituted += 1;
                            *e = value_to_expr(&result);
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

/// Applies constant propagation, folding and dead-code elimination.
/// Iterates to a fixpoint.
pub fn optimize(program: &mut LocusProgram) -> OptStats {
    let mut total = OptStats::default();
    for _ in 0..8 {
        let mut stats = OptStats::default();
        let mut items = std::mem::take(&mut program.items);
        for item in &mut items {
            match item {
                LItem::Stmt(stmt) => {
                    let mut env = HashMap::new();
                    opt_stmt(stmt, &mut env, &mut stats);
                }
                other => {
                    for block in item_blocks(other) {
                        let mut env = HashMap::new();
                        opt_block(block, &mut env, &mut stats);
                    }
                }
            }
        }
        program.items = items;
        let changed = stats != OptStats::default();
        total.folded += stats.folded;
        total.branches_removed += stats.branches_removed;
        if !changed {
            break;
        }
    }
    total
}

type Env = HashMap<String, LExpr>;

fn opt_block(block: &mut LBlock, env: &mut Env, stats: &mut OptStats) {
    if block.alternatives.len() == 1 {
        opt_stmts(&mut block.alternatives[0], env, stats);
        return;
    }
    // OR block: each alternative sees the same incoming env; afterwards
    // anything assigned anywhere becomes unknown.
    let before = env.clone();
    let mut assigned = Vec::new();
    for alt in &mut block.alternatives {
        let mut branch_env = before.clone();
        opt_stmts(alt, &mut branch_env, stats);
        for k in branch_env.keys() {
            if before.get(k) != branch_env.get(k) {
                assigned.push(k.clone());
            }
        }
        for (k, _) in before.iter() {
            if !branch_env.contains_key(k) {
                assigned.push(k.clone());
            }
        }
    }
    for k in assigned {
        env.remove(&k);
    }
}

fn opt_stmts(stmts: &mut Vec<LStmt>, env: &mut Env, stats: &mut OptStats) {
    let mut i = 0;
    while i < stmts.len() {
        // If-statements with constant conditions get flattened into the
        // surrounding statement list.
        if let LStmt::If { .. } = &stmts[i] {
            if let Some(replacement) = try_flatten_if(&mut stmts[i], env, stats) {
                let removed = stmts.remove(i);
                drop(removed);
                let n = replacement.len();
                for (k, s) in replacement.into_iter().enumerate() {
                    stmts.insert(i + k, s);
                }
                stats.branches_removed += 1;
                // Re-process the spliced statements.
                let _ = n;
                continue;
            }
        }
        opt_stmt(&mut stmts[i], env, stats);
        i += 1;
    }
}

/// When the if's condition (after folding) is a constant, returns the
/// statements of the branch that will run.
fn try_flatten_if(stmt: &mut LStmt, env: &mut Env, stats: &mut OptStats) -> Option<Vec<LStmt>> {
    let LStmt::If {
        cond,
        then,
        elifs,
        els,
    } = stmt
    else {
        return None;
    };
    fold_expr(cond, env, stats);
    let c = expr_to_value(cond)?;
    if c.truthy() {
        if then.alternatives.len() == 1 && then.serial.is_none() {
            return Some(then.alternatives[0].clone());
        }
        return Some(vec![LStmt::Block(then.clone())]);
    }
    // Condition false: the if reduces to its elif chain / else.
    if let Some(((c2, b2), rest)) = elifs.split_first() {
        let reduced = LStmt::If {
            cond: c2.clone(),
            then: b2.clone(),
            elifs: rest.to_vec(),
            els: els.clone(),
        };
        return Some(vec![reduced]);
    }
    if let Some(b) = els {
        if b.alternatives.len() == 1 && b.serial.is_none() {
            return Some(b.alternatives[0].clone());
        }
        return Some(vec![LStmt::Block(b.clone())]);
    }
    Some(Vec::new())
}

fn opt_stmt(stmt: &mut LStmt, env: &mut Env, stats: &mut OptStats) {
    match stmt {
        LStmt::Expr(e) | LStmt::Print(e) | LStmt::Return(Some(e)) => fold_expr(e, env, stats),
        LStmt::Assign { targets, value } => {
            fold_expr(value, env, stats);
            match targets.as_slice() {
                [LExpr::Ident(name)] => {
                    if is_literal(value) {
                        env.insert(name.clone(), value.clone());
                    } else {
                        env.remove(name);
                    }
                }
                _ => {
                    for t in targets.iter() {
                        if let LExpr::Ident(name) = t {
                            env.remove(name);
                        }
                    }
                }
            }
        }
        LStmt::Optional { stmt, .. } => opt_stmt(stmt, env, stats),
        LStmt::Block(b) => opt_block(b, env, stats),
        LStmt::If {
            cond,
            then,
            elifs,
            els,
        } => {
            fold_expr(cond, env, stats);
            let before = env.clone();
            let mut branch_envs = Vec::new();
            {
                let mut e = before.clone();
                opt_block(then, &mut e, stats);
                branch_envs.push(e);
            }
            for (c, b) in elifs {
                fold_expr(c, &mut before.clone(), stats);
                let mut e = before.clone();
                opt_block(b, &mut e, stats);
                branch_envs.push(e);
            }
            if let Some(b) = els {
                let mut e = before.clone();
                opt_block(b, &mut e, stats);
                branch_envs.push(e);
            }
            // Keep only facts that hold on every path (including the
            // fall-through when no else exists).
            env.retain(|k, v| {
                branch_envs.iter().all(|be| be.get(k) == Some(v))
                    && (els.is_some() || before.get(k) == Some(v))
            });
        }
        LStmt::For {
            init,
            cond,
            step,
            body,
        } => {
            opt_stmt(init, env, stats);
            // Loop bodies run an unknown number of times: drop facts
            // about anything they assign.
            let mut body_env = Env::new();
            fold_expr(cond, &mut body_env, stats);
            opt_block(body, &mut body_env, stats);
            opt_stmt(step, &mut body_env, stats);
            invalidate_assigned(stmt_assigned(body), env);
            if let LStmt::Assign { targets, .. } = init.as_ref() {
                for t in targets {
                    if let LExpr::Ident(n) = t {
                        env.remove(n);
                    }
                }
            }
        }
        LStmt::While { cond, body } => {
            let mut body_env = Env::new();
            fold_expr(cond, &mut body_env, stats);
            opt_block(body, &mut body_env, stats);
            invalidate_assigned(stmt_assigned(body), env);
        }
        LStmt::Return(None) | LStmt::Pass => {}
    }
}

fn stmt_assigned(block: &LBlock) -> Vec<String> {
    let mut out = Vec::new();
    fn rec_stmt(s: &LStmt, out: &mut Vec<String>) {
        match s {
            LStmt::Assign { targets, .. } => {
                for t in targets {
                    if let LExpr::Ident(n) = t {
                        out.push(n.clone());
                    }
                }
            }
            LStmt::Optional { stmt, .. } => rec_stmt(stmt, out),
            LStmt::Block(b) => rec_block(b, out),
            LStmt::If {
                then, elifs, els, ..
            } => {
                rec_block(then, out);
                for (_, b) in elifs {
                    rec_block(b, out);
                }
                if let Some(b) = els {
                    rec_block(b, out);
                }
            }
            LStmt::For {
                init, step, body, ..
            } => {
                rec_stmt(init, out);
                rec_stmt(step, out);
                rec_block(body, out);
            }
            LStmt::While { body, .. } => rec_block(body, out),
            _ => {}
        }
    }
    fn rec_block(b: &LBlock, out: &mut Vec<String>) {
        for alt in &b.alternatives {
            for s in alt {
                rec_stmt(s, out);
            }
        }
    }
    rec_block(block, &mut out);
    out
}

fn invalidate_assigned(names: Vec<String>, env: &mut Env) {
    for n in names {
        env.remove(&n);
    }
}

fn fold_expr(e: &mut LExpr, env: &mut Env, stats: &mut OptStats) {
    match e {
        LExpr::Ident(name) => {
            if let Some(lit) = env.get(name) {
                *e = lit.clone();
                stats.folded += 1;
            }
        }
        LExpr::List(items) | LExpr::Tuple(items) => {
            for i in items {
                fold_expr(i, env, stats);
            }
        }
        LExpr::Dict(entries) => {
            for (_, v) in entries {
                fold_expr(v, env, stats);
            }
        }
        LExpr::Attr { base, .. } if !matches!(base.as_ref(), LExpr::Ident(_)) => {
            fold_expr(base, env, stats);
        }
        LExpr::Index { base, index } => {
            fold_expr(base, env, stats);
            fold_expr(index, env, stats);
            // Constant list indexing folds.
            if let (LExpr::List(items), LExpr::Int(i)) = (base.as_ref(), index.as_ref()) {
                let idx = if *i < 0 { items.len() as i64 + i } else { *i };
                if idx >= 0 && (idx as usize) < items.len() && is_literal(&items[idx as usize]) {
                    *e = items[idx as usize].clone();
                    stats.folded += 1;
                }
            }
        }
        LExpr::Range { lo, hi, step } => {
            fold_expr(lo, env, stats);
            fold_expr(hi, env, stats);
            if let Some(s) = step {
                fold_expr(s, env, stats);
            }
        }
        LExpr::Neg(inner) => {
            fold_expr(inner, env, stats);
            match inner.as_ref() {
                LExpr::Int(v) => {
                    *e = LExpr::Int(-v);
                    stats.folded += 1;
                }
                LExpr::Float(v) => {
                    *e = LExpr::Float(-v);
                    stats.folded += 1;
                }
                _ => {}
            }
        }
        LExpr::Not(inner) => {
            fold_expr(inner, env, stats);
            if let Some(v) = expr_to_value(inner) {
                *e = LExpr::Int(i64::from(!v.truthy()));
                stats.folded += 1;
            }
        }
        LExpr::Binary { op, lhs, rhs } => {
            fold_expr(lhs, env, stats);
            fold_expr(rhs, env, stats);
            let (op, l, r) = (*op, expr_to_value(lhs), expr_to_value(rhs));
            // Short-circuit folds.
            if op == LBinOp::And {
                if let Some(l) = &l {
                    if !l.truthy() {
                        *e = LExpr::Int(0);
                        stats.folded += 1;
                        return;
                    } else if let Some(r) = &r {
                        *e = LExpr::Int(i64::from(r.truthy()));
                        stats.folded += 1;
                        return;
                    }
                }
                return;
            }
            if op == LBinOp::Or {
                if let Some(l) = &l {
                    if l.truthy() {
                        *e = LExpr::Int(1);
                        stats.folded += 1;
                        return;
                    } else if let Some(r) = &r {
                        *e = LExpr::Int(i64::from(r.truthy()));
                        stats.folded += 1;
                        return;
                    }
                }
                return;
            }
            if let (Some(l), Some(r)) = (l, r) {
                if let Ok(v) = binary_values(op, l, r) {
                    *e = value_to_expr(&v);
                    stats.folded += 1;
                }
            }
        }
        LExpr::Search { args, .. } => {
            for a in args {
                fold_expr(a, env, stats);
            }
        }
        LExpr::OrExpr { options, .. } => {
            for o in options {
                fold_expr(o, env, stats);
            }
        }
        LExpr::Call { callee, args } => {
            for a in args.iter_mut() {
                fold_expr(&mut a.value, env, stats);
            }
            // seq over constants folds to a list literal.
            if let LExpr::Ident(name) = callee.as_ref() {
                if name == "seq" && args.len() == 2 {
                    if let (Some(LExpr::Int(lo)), Some(LExpr::Int(hi))) = (
                        args.first().map(|a| &a.value),
                        args.get(1).map(|a| &a.value),
                    ) {
                        *e = LExpr::List((*lo..*hi).map(LExpr::Int).collect());
                        stats.folded += 1;
                    }
                }
            }
        }
        _ => {}
    }
}

/// `true` for literal expressions (safe to propagate).
fn is_literal(e: &LExpr) -> bool {
    match e {
        LExpr::Int(_) | LExpr::Float(_) | LExpr::Str(_) | LExpr::None => true,
        LExpr::List(items) | LExpr::Tuple(items) => items.iter().all(is_literal),
        _ => false,
    }
}

/// Converts a literal expression to a runtime value.
pub(crate) fn expr_to_value(e: &LExpr) -> Option<Value> {
    match e {
        LExpr::Int(v) => Some(Value::Int(*v)),
        LExpr::Float(v) => Some(Value::Float(*v)),
        LExpr::Str(s) => Some(Value::Str(s.clone())),
        LExpr::None => Some(Value::None),
        LExpr::List(items) => items
            .iter()
            .map(expr_to_value)
            .collect::<Option<Vec<_>>>()
            .map(Value::List),
        LExpr::Tuple(items) => items
            .iter()
            .map(expr_to_value)
            .collect::<Option<Vec<_>>>()
            .map(Value::Tuple),
        _ => None,
    }
}

/// Converts a runtime value back to a literal expression.
pub fn value_to_expr_pub(v: &Value) -> LExpr {
    value_to_expr(v)
}

pub(crate) fn value_to_expr(v: &Value) -> LExpr {
    match v {
        Value::None => LExpr::None,
        Value::Int(x) => LExpr::Int(*x),
        Value::Float(x) => LExpr::Float(*x),
        Value::Str(s) => LExpr::Str(s.clone()),
        Value::List(items) => LExpr::List(items.iter().map(value_to_expr).collect()),
        Value::Tuple(items) => LExpr::Tuple(items.iter().map(value_to_expr).collect()),
        Value::Dict(map) => LExpr::Dict(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_expr(v)))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_space;
    use crate::parser::parse;

    #[test]
    fn folds_constants_and_removes_dead_branches() {
        let src = r#"
        CodeReg r {
            depth = 1;
            if (depth > 1) {
                t = poweroftwo(2..32);
                A.Tile(factor=t);
            }
            A.Unroll(factor=2 * 2);
        }
        "#;
        let mut program = parse(src).unwrap();
        let stats = optimize(&mut program);
        assert!(stats.branches_removed >= 1);
        assert!(stats.folded >= 1);
        // The dead branch's search construct is gone from the space.
        let info = extract_space(&program).unwrap();
        assert!(info.space.is_empty(), "{:?}", info.space);
    }

    #[test]
    fn keeps_live_branches() {
        let src = r#"
        CodeReg r {
            depth = 3;
            if (depth > 1) {
                t = poweroftwo(2..32);
                A.Tile(factor=t);
            }
        }
        "#;
        let mut program = parse(src).unwrap();
        optimize(&mut program);
        let info = extract_space(&program).unwrap();
        assert_eq!(info.space.len(), 1);
    }

    #[test]
    fn elif_chains_reduce_stepwise() {
        let src = r#"
        CodeReg r {
            x = "b";
            if (x == "a") {
                A.One();
            } elif (x == "b") {
                t = integer(1..4);
                A.Two(t=t);
            } else {
                A.Three();
            }
        }
        "#;
        let mut program = parse(src).unwrap();
        optimize(&mut program);
        let info = extract_space(&program).unwrap();
        assert_eq!(info.space.len(), 1, "only the elif branch survives");
    }

    #[test]
    fn query_substitution_enables_extraction() {
        let src = r#"
        CodeReg scop {
            depth = BuiltIn.LoopNestDepth();
            permorder = permutation(seq(0, depth));
            RoseLocus.Interchange(order=permorder);
        }
        "#;
        let mut program = parse(src).unwrap();
        let stats = substitute_queries(&mut program, &mut |module, func, _args| {
            if module == "BuiltIn" && func == "LoopNestDepth" {
                Some(Value::Int(3))
            } else {
                None
            }
        });
        assert_eq!(stats.queries_substituted, 1);
        optimize(&mut program);
        let info = extract_space(&program).unwrap();
        assert_eq!(
            info.space.param("permorder").unwrap().kind,
            locus_space::ParamKind::Permutation(3)
        );
    }

    #[test]
    fn transformations_are_not_substituted() {
        let src = "CodeReg r { RoseLocus.Unroll(factor=4); }";
        let mut program = parse(src).unwrap();
        let stats = substitute_queries(&mut program, &mut |_, _, _| None);
        assert_eq!(stats.queries_substituted, 0);
        // The call is still there.
        let body = program.codereg("r").unwrap();
        assert!(matches!(
            &body.alternatives[0][0],
            LStmt::Expr(LExpr::Call { .. })
        ));
    }

    #[test]
    fn string_concat_folds() {
        let src = r#"
        CodeReg r {
            layout = "DGZ";
            path = "scatter_" + layout + ".txt";
            BuiltIn.Altdesc(source=path);
        }
        "#;
        let mut program = parse(src).unwrap();
        optimize(&mut program);
        let body = program.codereg("r").unwrap();
        let LStmt::Expr(LExpr::Call { args, .. }) = &body.alternatives[0][2] else {
            panic!("expected call");
        };
        assert_eq!(args[0].value, LExpr::Str("scatter_DGZ.txt".into()));
    }

    #[test]
    fn fig13_depth1_space_shrinks() {
        // The paper's Sec. IV-C example: for depth-1 nests all constructs
        // conditional on depth > 1 drop out.
        let template = |depth: i64, perfect: i64| {
            format!(
                r#"
        CodeReg scop {{
            perfect = {perfect};
            depth = {depth};
            if (1) {{
                if (perfect && depth > 1) {{
                    permorder = permutation(seq(0, depth));
                    RoseLocus.Interchange(order=permorder);
                }}
                {{
                    if (perfect) {{
                        indexT1 = integer(1..depth);
                        T1fac = poweroftwo(2..32);
                        RoseLocus.Tiling(loop=indexT1, factor=T1fac);
                    }}
                }} OR {{
                    if (depth > 1) {{
                        indexUAJ = integer(1..depth-1);
                        UAJfac = poweroftwo(2..4);
                        RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);
                    }}
                }} OR {{
                    None;
                }}
                *RoseLocus.Distribute(loop=[1]);
            }}
            RoseLocus.Unroll(loop=[1], factor=poweroftwo(2..8));
        }}
        "#
            )
        };
        let mut deep = parse(&template(3, 1)).unwrap();
        optimize(&mut deep);
        let deep_info = extract_space(&deep).unwrap();

        let mut shallow = parse(&template(1, 1)).unwrap();
        optimize(&mut shallow);
        let shallow_info = extract_space(&shallow).unwrap();

        assert!(
            shallow_info.space.size() < deep_info.space.size(),
            "shallow {} vs deep {}",
            shallow_info.space.size(),
            deep_info.space.size()
        );
        // The interchange permutation must be gone for depth 1.
        assert!(shallow_info.space.param("permorder").is_none());
    }
}
