//! Point specialization: turning a search program into a *direct*
//! program (Sec. II of the paper: "At the end, the result is a Locus
//! direct program that can be shipped with the baseline source code").
//!
//! Given the point a search chose, every search construct is replaced by
//! its selected value, `OR` blocks keep only the chosen alternative, and
//! optional statements are kept or dropped. The result contains no
//! search constructs and reproduces the winning variant exactly when run
//! through the direct workflow.

use std::collections::HashMap;

use locus_space::{ParamValue, Point};

use crate::ast::*;

/// Specializes `program` to `point`, producing a direct program.
///
/// Missing parameters default exactly as the interpreter defaults them
/// (first alternative, range minimum, identity permutation, optional
/// statements kept), so a partially assigned point still yields a
/// runnable direct program.
pub fn specialize(
    program: &LocusProgram,
    point: &Point,
    ids: &HashMap<usize, String>,
) -> LocusProgram {
    let ctx = Ctx { point, ids };
    let items = program
        .items
        .iter()
        .map(|item| match item {
            LItem::CodeReg { name, body } => LItem::CodeReg {
                name: name.clone(),
                body: ctx.block(body),
            },
            LItem::OptSeq { name, params, body } => LItem::OptSeq {
                name: name.clone(),
                params: params.clone(),
                body: ctx.block(body),
            },
            LItem::Query { name, params, body } => LItem::Query {
                name: name.clone(),
                params: params.clone(),
                body: ctx.block(body),
            },
            LItem::ModuleDecl { name, body } => LItem::ModuleDecl {
                name: name.clone(),
                body: ctx.block(body),
            },
            LItem::Def { name, params, body } => LItem::Def {
                name: name.clone(),
                params: params.clone(),
                body: ctx.block(body),
            },
            LItem::SearchBlock(body) => LItem::SearchBlock(ctx.block(body)),
            LItem::Stmt(stmt) => LItem::Stmt(ctx.stmt(stmt).unwrap_or(LStmt::Pass)),
            other => other.clone(),
        })
        .collect();
    LocusProgram {
        items,
        serial_count: program.serial_count,
    }
}

struct Ctx<'a> {
    point: &'a Point,
    ids: &'a HashMap<usize, String>,
}

impl Ctx<'_> {
    fn id(&self, serial: usize) -> String {
        self.ids
            .get(&serial)
            .cloned()
            .unwrap_or_else(|| format!("p{serial}"))
    }

    fn choice(&self, serial: usize, n: usize, default: usize) -> usize {
        match self.point.get(&self.id(serial)) {
            Some(ParamValue::Choice(c)) => (*c).min(n.saturating_sub(1)),
            Some(ParamValue::Int(v)) => (*v as usize).min(n.saturating_sub(1)),
            _ => default,
        }
    }

    fn block(&self, block: &LBlock) -> LBlock {
        let alt = match block.serial {
            Some(serial) => self.choice(serial, block.alternatives.len(), 0),
            None => 0,
        };
        let stmts = block.alternatives[alt]
            .iter()
            .filter_map(|s| self.stmt(s))
            .collect();
        LBlock {
            alternatives: vec![stmts],
            serial: None,
        }
    }

    /// Specializes one statement; `None` drops it (a skipped optional).
    fn stmt(&self, stmt: &LStmt) -> Option<LStmt> {
        Some(match stmt {
            LStmt::Pass => LStmt::Pass,
            LStmt::Expr(e) => LStmt::Expr(self.expr(e)),
            LStmt::Print(e) => LStmt::Print(self.expr(e)),
            LStmt::Return(v) => LStmt::Return(v.as_ref().map(|e| self.expr(e))),
            LStmt::Assign { targets, value } => LStmt::Assign {
                targets: targets.clone(),
                value: self.expr(value),
            },
            LStmt::Optional { serial, stmt } => {
                if self.choice(*serial, 2, 1) == 1 {
                    return self.stmt(stmt);
                }
                return None;
            }
            LStmt::Block(b) => {
                let specialized = self.block(b);
                // A single-alternative block stays a block (scoping).
                LStmt::Block(specialized)
            }
            LStmt::If {
                cond,
                then,
                elifs,
                els,
            } => LStmt::If {
                cond: self.expr(cond),
                then: self.block(then),
                elifs: elifs
                    .iter()
                    .map(|(c, b)| (self.expr(c), self.block(b)))
                    .collect(),
                els: els.as_ref().map(|b| self.block(b)),
            },
            LStmt::For {
                init,
                cond,
                step,
                body,
            } => LStmt::For {
                init: Box::new(self.stmt(init)?),
                cond: self.expr(cond),
                step: Box::new(self.stmt(step)?),
                body: self.block(body),
            },
            LStmt::While { cond, body } => LStmt::While {
                cond: self.expr(cond),
                body: self.block(body),
            },
        })
    }

    fn expr(&self, e: &LExpr) -> LExpr {
        match e {
            LExpr::Search { serial, kind, args } => self.search(*serial, *kind, args),
            LExpr::OrExpr { serial, options } => {
                let pick = self.choice(*serial, options.len(), 0);
                self.expr(&options[pick])
            }
            LExpr::List(items) => LExpr::List(items.iter().map(|i| self.expr(i)).collect()),
            LExpr::Tuple(items) => LExpr::Tuple(items.iter().map(|i| self.expr(i)).collect()),
            LExpr::Dict(entries) => LExpr::Dict(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), self.expr(v)))
                    .collect(),
            ),
            LExpr::Attr { base, name } => LExpr::Attr {
                base: Box::new(self.expr(base)),
                name: name.clone(),
            },
            LExpr::Call { callee, args } => LExpr::Call {
                callee: Box::new(self.expr(callee)),
                args: args
                    .iter()
                    .map(|a| LArg {
                        name: a.name.clone(),
                        value: self.expr(&a.value),
                    })
                    .collect(),
            },
            LExpr::Index { base, index } => LExpr::Index {
                base: Box::new(self.expr(base)),
                index: Box::new(self.expr(index)),
            },
            LExpr::Range { lo, hi, step } => LExpr::Range {
                lo: Box::new(self.expr(lo)),
                hi: Box::new(self.expr(hi)),
                step: step.as_ref().map(|s| Box::new(self.expr(s))),
            },
            LExpr::Neg(i) => LExpr::Neg(Box::new(self.expr(i))),
            LExpr::Not(i) => LExpr::Not(Box::new(self.expr(i))),
            LExpr::Binary { op, lhs, rhs } => LExpr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
            other => other.clone(),
        }
    }

    fn search(&self, serial: usize, kind: SearchKind, args: &[LExpr]) -> LExpr {
        let value = self.point.get(&self.id(serial));
        match kind {
            SearchKind::Enum => {
                let pick = match value {
                    Some(ParamValue::Choice(c)) => (*c).min(args.len().saturating_sub(1)),
                    _ => 0,
                };
                args.get(pick).map(|e| self.expr(e)).unwrap_or(LExpr::None)
            }
            SearchKind::Integer | SearchKind::PowerOfTwo | SearchKind::LogInteger => {
                match value {
                    Some(ParamValue::Int(v)) => LExpr::Int(*v),
                    Some(ParamValue::Choice(c)) => LExpr::Int(*c as i64),
                    // Default: the range minimum, kept symbolic when the
                    // bound is an expression.
                    _ => match args {
                        [LExpr::Range { lo, .. }] => self.expr(lo),
                        [lo, ..] => self.expr(lo),
                        [] => LExpr::Int(0),
                    },
                }
            }
            SearchKind::Float | SearchKind::LogFloat => match value {
                Some(ParamValue::Float(v)) => LExpr::Float(*v),
                Some(ParamValue::Int(v)) => LExpr::Float(*v as f64),
                _ => match args {
                    [LExpr::Range { lo, .. }] => self.expr(lo),
                    [lo, ..] => self.expr(lo),
                    [] => LExpr::Float(0.0),
                },
            },
            SearchKind::Permutation => {
                // A statically known item list permutes into a literal
                // list; otherwise the construct survives with the
                // identity (no information is lost, the interpreter's
                // default matches).
                let items = match args.first() {
                    Some(LExpr::List(items)) => Some(items.clone()),
                    Some(LExpr::Call {
                        callee,
                        args: cargs,
                    }) => match callee.as_ref() {
                        LExpr::Ident(name) if name == "seq" && cargs.len() == 2 => {
                            match (&cargs[0].value, &cargs[1].value) {
                                (LExpr::Int(lo), LExpr::Int(hi)) => {
                                    Some((*lo..*hi).map(LExpr::Int).collect())
                                }
                                _ => None,
                            }
                        }
                        _ => None,
                    },
                    _ => None,
                };
                match (items, value) {
                    (Some(items), Some(ParamValue::Perm(perm))) if perm.len() == items.len() => {
                        LExpr::List(perm.iter().map(|&i| items[i].clone()).collect())
                    }
                    (Some(items), _) => LExpr::List(items),
                    (None, _) => LExpr::Search {
                        serial,
                        kind,
                        args: args.to_vec(),
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print_program;

    fn point(entries: &[(&str, ParamValue)]) -> Point {
        let mut p = Point::new();
        for (k, v) in entries {
            p.set(*k, v.clone());
        }
        p
    }

    #[test]
    fn specializes_fig7_to_a_direct_program() {
        let src = r#"
        CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(2..512);
            Pips.Tiling(loop="0", factor=[tileI, 8, 8]);
            {
                Pragma.OMPFor(loop="0");
            } OR {
                Pragma.OMPFor(loop="0", schedule=enum("static", "dynamic"), chunk=integer(1..32));
            }
        }
        "#;
        let program = parse(src).unwrap();
        // Serials: tileI=0, enum=1, chunk=2, OR block=3.
        let ids: HashMap<usize, String> = [
            (0usize, "tileI".to_string()),
            (1, "sched".to_string()),
            (2, "chunk".to_string()),
            (3, "orblock".to_string()),
        ]
        .into_iter()
        .collect();
        let p = point(&[
            ("tileI", ParamValue::Int(64)),
            ("sched", ParamValue::Choice(1)),
            ("chunk", ParamValue::Int(16)),
            ("orblock", ParamValue::Choice(1)),
        ]);
        let direct = specialize(&program, &p, &ids);
        assert_eq!(direct.serial_count, program.serial_count);
        let printed = print_program(&direct);
        assert!(printed.contains("tileI = 64;"), "{printed}");
        assert!(printed.contains("schedule=\"dynamic\""), "{printed}");
        assert!(printed.contains("chunk=16"), "{printed}");
        assert!(!printed.contains(" OR "), "{printed}");
        assert!(!printed.contains("poweroftwo"), "{printed}");
        // The direct program re-parses cleanly.
        assert!(parse(&printed).is_ok(), "{printed}");
    }

    #[test]
    fn optional_statements_are_kept_or_dropped() {
        let src = "CodeReg r { *A.Maybe(); B.Always(); }";
        let program = parse(src).unwrap();
        let ids: HashMap<usize, String> = [(0usize, "opt".to_string())].into_iter().collect();

        let kept = specialize(&program, &point(&[("opt", ParamValue::Choice(1))]), &ids);
        assert!(print_program(&kept).contains("A.Maybe()"));
        let dropped = specialize(&program, &point(&[("opt", ParamValue::Choice(0))]), &ids);
        let printed = print_program(&dropped);
        assert!(!printed.contains("A.Maybe()"), "{printed}");
        assert!(printed.contains("B.Always()"));
    }

    #[test]
    fn permutation_over_static_seq_becomes_a_list() {
        let src = "CodeReg r { order = permutation(seq(0, 3)); A.I(order=order); }";
        let program = parse(src).unwrap();
        let ids: HashMap<usize, String> = [(0usize, "order".to_string())].into_iter().collect();
        let direct = specialize(
            &program,
            &point(&[("order", ParamValue::Perm(vec![2, 0, 1]))]),
            &ids,
        );
        assert!(print_program(&direct).contains("order = [2, 0, 1];"));
    }

    #[test]
    fn defaults_mirror_the_interpreter() {
        let src = "CodeReg r { t = poweroftwo(4..64); x = enum(\"a\", \"b\"); *A.M(); }";
        let program = parse(src).unwrap();
        let direct = specialize(&program, &Point::new(), &HashMap::new());
        let printed = print_program(&direct);
        assert!(printed.contains("t = 4;"), "{printed}");
        assert!(printed.contains("x = \"a\";"), "{printed}");
        assert!(printed.contains("A.M()"), "kept by default: {printed}");
    }
}
