//! Runtime values of the Locus language: numbers, strings, lists,
//! tuples and dictionaries (Sec. III, *Data Structures* and *Types*).

use std::collections::BTreeMap;
use std::fmt;

/// A dynamically typed Locus value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `None`.
    None,
    /// Signed integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Mutable list.
    List(Vec<Value>),
    /// Immutable tuple.
    Tuple(Vec<Value>),
    /// Dictionary with string keys.
    Dict(BTreeMap<String, Value>),
}

impl Value {
    /// Locus truthiness: `None`, zero, empty containers are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(v) | Value::Tuple(v) => !v.is_empty(),
            Value::Dict(d) => !d.is_empty(),
        }
    }

    /// Integer view (floats truncate).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Float view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view (no coercion).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// List/tuple element view.
    pub fn as_slice(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) | Value::Tuple(v) => Some(v),
            _ => None,
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "None",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::Dict(_) => "dict",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => write!(f, "None"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Int(i64::from(v))
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_follows_python_conventions() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(Value::Str("x".into()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::List(vec![Value::Int(1)]).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(),
            "[1, a]"
        );
        assert_eq!(Value::None.to_string(), "None");
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Float(2.9).as_int(), Some(2));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }
}
