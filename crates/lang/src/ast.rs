//! Abstract syntax tree of the Locus language.
//!
//! Search constructs (`OR` blocks, `OR` statements/expressions, optional
//! statements, and the value constructs) each carry a *serial* assigned
//! during parsing. Serials identify the corresponding space parameter
//! across the extraction pass and every later interpretation of the
//! program, independent of execution order.

/// A whole optimization program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LocusProgram {
    /// Top-level items in source order.
    pub items: Vec<LItem>,
    /// Total number of search-construct serials issued by the parser.
    pub serial_count: usize,
}

impl LocusProgram {
    /// Finds a `CodeReg` by name.
    pub fn codereg(&self, name: &str) -> Option<&LBlock> {
        self.items.iter().find_map(|item| match item {
            LItem::CodeReg { name: n, body } if n == name => Some(body),
            _ => None,
        })
    }

    /// Names of all `CodeReg`s, in source order.
    pub fn codereg_names(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|item| match item {
                LItem::CodeReg { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Finds an `OptSeq` by name.
    pub fn optseq(&self, name: &str) -> Option<(&[String], &LBlock)> {
        self.items.iter().find_map(|item| match item {
            LItem::OptSeq {
                name: n,
                params,
                body,
            } if n == name => Some((params.as_slice(), body)),
            _ => None,
        })
    }

    /// Finds a `def` method by name.
    pub fn method(&self, name: &str) -> Option<(&[String], &LBlock)> {
        self.items.iter().find_map(|item| match item {
            LItem::Def {
                name: n,
                params,
                body,
            } if n == name => Some((params.as_slice(), body)),
            _ => None,
        })
    }

    /// The `Search { ... }` block, if present.
    pub fn search_block(&self) -> Option<&LBlock> {
        self.items.iter().find_map(|item| match item {
            LItem::SearchBlock(b) => Some(b),
            _ => None,
        })
    }
}

/// Top-level item. (Variant payload fields are conventional and carry
/// no per-field docs.)
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum LItem {
    /// `import "RoseLocus";`
    Import(String),
    /// `extern mol;`
    Extern(LExpr),
    /// `CodeReg NAME { ... }`
    CodeReg { name: String, body: LBlock },
    /// `OptSeq NAME(params) { ... }`
    OptSeq {
        name: String,
        params: Vec<String>,
        body: LBlock,
    },
    /// `Query NAME(params) { ... }`
    Query {
        name: String,
        params: Vec<String>,
        body: LBlock,
    },
    /// `Module NAME { ... }`
    ModuleDecl { name: String, body: LBlock },
    /// `def NAME(params) { ... }`
    Def {
        name: String,
        params: Vec<String>,
        body: LBlock,
    },
    /// `Search { ... }`
    SearchBlock(LBlock),
    /// A bare top-level statement (Fig. 11 defines `datalayout` this
    /// way).
    Stmt(LStmt),
}

/// A block. When `alternatives.len() > 1` this is an `OR` block — a
/// search construct choosing one alternative (and `serial` is its
/// space-parameter identity).
#[derive(Debug, Clone, PartialEq)]
pub struct LBlock {
    /// The alternative statement lists (one = plain block).
    pub alternatives: Vec<Vec<LStmt>>,
    /// Space-parameter serial when this is an `OR` block.
    pub serial: Option<usize>,
}

impl LBlock {
    /// A plain single-alternative block.
    pub fn simple(stmts: Vec<LStmt>) -> LBlock {
        LBlock {
            alternatives: vec![stmts],
            serial: None,
        }
    }
}

/// A statement. (Variant payload fields are conventional and carry no
/// per-field docs.)
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum LStmt {
    /// Expression statement (usually a module invocation).
    Expr(LExpr),
    /// `targets = value;` (multiple targets: `a, b = f();`).
    Assign { targets: Vec<LExpr>, value: LExpr },
    /// `*stmt;` — optional statement; `serial` is the boolean parameter.
    Optional { serial: usize, stmt: Box<LStmt> },
    /// `if / elif / else`.
    If {
        cond: LExpr,
        then: LBlock,
        elifs: Vec<(LExpr, LBlock)>,
        els: Option<LBlock>,
    },
    /// `for (init; cond; step) { ... }`
    For {
        init: Box<LStmt>,
        cond: LExpr,
        step: Box<LStmt>,
        body: LBlock,
    },
    /// `while cond { ... }`
    While { cond: LExpr, body: LBlock },
    /// `return expr;`
    Return(Option<LExpr>),
    /// `print expr;`
    Print(LExpr),
    /// Nested block (possibly an OR block).
    Block(LBlock),
    /// `None;` — explicit no-op (used inside OR alternatives).
    Pass,
}

/// The value-level search construct kinds of Sec. III, named after the
/// Locus keywords (`enum`, `integer`, `float`, `permutation`,
/// `poweroftwo`, `loginteger`, `logfloat`).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    Enum,
    Integer,
    Float,
    Permutation,
    PowerOfTwo,
    LogInteger,
    LogFloat,
}

impl SearchKind {
    /// Parses the construct keyword.
    pub fn from_name(name: &str) -> Option<SearchKind> {
        Some(match name {
            "enum" => SearchKind::Enum,
            "integer" => SearchKind::Integer,
            "float" => SearchKind::Float,
            "permutation" => SearchKind::Permutation,
            "poweroftwo" => SearchKind::PowerOfTwo,
            "loginteger" => SearchKind::LogInteger,
            "logfloat" => SearchKind::LogFloat,
            _ => return None,
        })
    }
}

/// Binary operators, named after their Locus spelling.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// A call argument, possibly named (`factor=[a,b]`).
#[derive(Debug, Clone, PartialEq)]
pub struct LArg {
    /// Argument name for `name=value` arguments.
    pub name: Option<String>,
    /// Argument value.
    pub value: LExpr,
}

/// An expression. (Variant payload fields are conventional — operand,
/// operator, base/index — and carry no per-field docs.)
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum LExpr {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    /// `None` literal.
    None,
    List(Vec<LExpr>),
    Tuple(Vec<LExpr>),
    /// `dict(key=value, ...)`.
    Dict(Vec<(String, LExpr)>),
    /// `base.name`.
    Attr {
        base: Box<LExpr>,
        name: String,
    },
    /// `callee(args)`.
    Call {
        callee: Box<LExpr>,
        args: Vec<LArg>,
    },
    /// `base[index]`.
    Index {
        base: Box<LExpr>,
        index: Box<LExpr>,
    },
    /// `lo..hi` (optionally `lo..hi..step`).
    Range {
        lo: Box<LExpr>,
        hi: Box<LExpr>,
        step: Option<Box<LExpr>>,
    },
    /// Unary negation / `not`.
    Neg(Box<LExpr>),
    Not(Box<LExpr>),
    Binary {
        op: LBinOp,
        lhs: Box<LExpr>,
        rhs: Box<LExpr>,
    },
    /// A value-level search construct, e.g. `poweroftwo(2..512)`.
    Search {
        serial: usize,
        kind: SearchKind,
        args: Vec<LExpr>,
    },
    /// `a OR b OR c` — an alternative-choice search construct.
    OrExpr {
        serial: usize,
        options: Vec<LExpr>,
    },
}

impl LExpr {
    /// Convenience: string literal.
    pub fn str(s: impl Into<String>) -> LExpr {
        LExpr::Str(s.into())
    }
}
