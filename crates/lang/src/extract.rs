//! Space extraction: the `convertOptUniverse` step of Sec. IV-B.
//!
//! Walks the program's reachable blocks, turning every search construct
//! into a [`locus_space::ParamDef`]:
//!
//! * `OR` blocks / statements / expressions → `Enum` over alternatives;
//! * optional statements → `Bool`;
//! * `enum(...)` → `Enum` over the argument labels;
//! * `integer` / `poweroftwo` / `loginteger` / `float` / `logfloat` →
//!   numeric domains whose bounds are inferred by an abstract (interval)
//!   evaluation over the use-def chains, exactly as Sec. IV-B.1
//!   describes for dependent ranges like `poweroftwo(2..tileI)`: the
//!   *static* parameter gets the outermost bounds, and the runtime
//!   interpreter revalidates the dependency per point;
//! * `permutation(list)` → `Permutation(n)`, requiring a statically
//!   known list length (queries must be pre-substituted first, see
//!   [`crate::optimize`]).
//!
//! Parameter ids prefer the assigned variable name (`tileI`) and fall
//! back to `p<serial>`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use locus_space::{ParamDef, ParamKind, Space};

use crate::ast::*;

/// Extraction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "space extraction error: {}", self.message)
    }
}

impl Error for ExtractError {}

/// The extracted space plus the serial-to-parameter-id mapping consumed
/// by [`crate::interp::Interp`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpaceInfo {
    /// The extracted optimization space.
    pub space: Space,
    /// Serial-to-parameter-id mapping for the interpreter.
    pub ids: HashMap<usize, String>,
}

/// Abstract value for bound inference.
#[derive(Debug, Clone, PartialEq)]
enum Abs {
    Int(i64),
    Float(f64),
    Str(String),
    List(usize),
    Range(i64, i64),
    Unknown,
}

impl Abs {
    fn bounds(&self) -> Option<(i64, i64)> {
        match self {
            Abs::Int(v) => Some((*v, *v)),
            Abs::Float(v) => Some((*v as i64, *v as i64)),
            Abs::Range(lo, hi) => Some((*lo, *hi)),
            _ => None,
        }
    }
}

/// Extracts the optimization space of a program.
///
/// Only `CodeReg` bodies, top-level statements, and `OptSeq`s /
/// `Query`s / `def`s reachable from them contribute parameters.
///
/// # Errors
///
/// Returns [`ExtractError`] when a search construct's parameters cannot
/// be statically bounded (e.g. `permutation` over a list of unknown
/// length) — run the Sec. IV-C optimizer with query substitution first.
pub fn extract_space(program: &LocusProgram) -> Result<SpaceInfo, ExtractError> {
    let mut ex = Extractor {
        program,
        info: SpaceInfo::default(),
        env: HashMap::new(),
        visited: Vec::new(),
    };
    // Top-level statements first: they establish globals like Fig. 11's
    // `datalayout`.
    for item in &program.items {
        if let LItem::Stmt(stmt) = item {
            ex.stmt(stmt)?;
        }
    }
    for item in &program.items {
        if let LItem::CodeReg { body, .. } = item {
            let saved = ex.env.clone();
            ex.block(body)?;
            ex.env = saved;
        }
    }
    Ok(ex.info)
}

struct Extractor<'p> {
    program: &'p LocusProgram,
    info: SpaceInfo,
    env: HashMap<String, Abs>,
    /// Call stack of named sequences, for recursion cut-off.
    visited: Vec<String>,
}

impl Extractor<'_> {
    fn err(&self, message: impl Into<String>) -> ExtractError {
        ExtractError {
            message: message.into(),
        }
    }

    fn register(&mut self, serial: usize, preferred: Option<&str>, kind: ParamKind) {
        if self.info.ids.contains_key(&serial) {
            // Re-walked (OptSeq called twice, or loop body): keep the
            // first registration.
            return;
        }
        let id = match preferred {
            Some(name) if self.info.space.param(name).is_none() => name.to_string(),
            _ => format!("p{serial}"),
        };
        self.info.space.add(ParamDef::new(id.clone(), kind));
        self.info.ids.insert(serial, id);
    }

    fn block(&mut self, block: &LBlock) -> Result<(), ExtractError> {
        if let Some(serial) = block.serial {
            let labels = (0..block.alternatives.len())
                .map(|i| format!("alt{i}"))
                .collect();
            self.register(serial, None, ParamKind::Enum(labels));
        }
        // All alternatives contribute; variables assigned in any
        // alternative become unknown-merged afterwards.
        let before = self.env.clone();
        let mut merged = before.clone();
        for alt in &block.alternatives {
            self.env = before.clone();
            for stmt in alt {
                self.stmt(stmt)?;
            }
            for (k, v) in &self.env {
                match merged.get(k) {
                    Some(existing) if existing == v => {}
                    Some(_) => {
                        merged.insert(k.clone(), Abs::Unknown);
                    }
                    None => {
                        merged.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        self.env = merged;
        Ok(())
    }

    fn stmt(&mut self, stmt: &LStmt) -> Result<(), ExtractError> {
        match stmt {
            LStmt::Pass => Ok(()),
            LStmt::Expr(e) | LStmt::Print(e) | LStmt::Return(Some(e)) => {
                self.expr(e, None)?;
                Ok(())
            }
            LStmt::Return(None) => Ok(()),
            LStmt::Assign { targets, value } => {
                let preferred = match targets.as_slice() {
                    [LExpr::Ident(name)] => Some(name.to_string()),
                    _ => None,
                };
                let abs = self.expr(value, preferred.as_deref())?;
                if let Some(name) = preferred {
                    self.env.insert(name, abs);
                } else {
                    for t in targets {
                        if let LExpr::Ident(name) = t {
                            self.env.insert(name.clone(), Abs::Unknown);
                        }
                    }
                }
                Ok(())
            }
            LStmt::Optional { serial, stmt } => {
                self.register(*serial, None, ParamKind::Bool);
                self.stmt(stmt)
            }
            LStmt::Block(block) => self.block(block),
            LStmt::If {
                cond,
                then,
                elifs,
                els,
            } => {
                self.expr(cond, None)?;
                let before = self.env.clone();
                let mut merged = before.clone();
                let mut branches: Vec<&LBlock> = vec![then];
                for (c, b) in elifs {
                    self.env = before.clone();
                    self.expr(c, None)?;
                    branches.push(b);
                }
                if let Some(b) = els {
                    branches.push(b);
                }
                for b in branches {
                    self.env = before.clone();
                    self.block(b)?;
                    let env = std::mem::take(&mut self.env);
                    for (k, v) in env {
                        match (before.get(&k), merged.get(&k)) {
                            (_, Some(existing)) if existing == &v => {}
                            (None, None) => {
                                merged.insert(k, v);
                            }
                            _ => {
                                merged.insert(k, Abs::Unknown);
                            }
                        }
                    }
                }
                self.env = merged;
                Ok(())
            }
            LStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init)?;
                self.expr(cond, None)?;
                let before = self.env.clone();
                self.block(body)?;
                self.stmt(step)?;
                // Anything assigned in the loop is unknown after it.
                let env = self.env.clone();
                for (k, v) in env {
                    if before.get(&k) != Some(&v) {
                        self.env.insert(k, Abs::Unknown);
                    }
                }
                Ok(())
            }
            LStmt::While { cond, body } => {
                self.expr(cond, None)?;
                let before = self.env.clone();
                self.block(body)?;
                let env = self.env.clone();
                for (k, v) in env {
                    if before.get(&k) != Some(&v) {
                        self.env.insert(k, Abs::Unknown);
                    }
                }
                Ok(())
            }
        }
    }

    /// Walks an expression, registering search constructs, and returns
    /// its abstract value.
    fn expr(&mut self, e: &LExpr, preferred: Option<&str>) -> Result<Abs, ExtractError> {
        match e {
            LExpr::Int(v) => Ok(Abs::Int(*v)),
            LExpr::Float(v) => Ok(Abs::Float(*v)),
            LExpr::Str(s) => Ok(Abs::Str(s.clone())),
            LExpr::None => Ok(Abs::Unknown),
            LExpr::Ident(name) => Ok(self.env.get(name).cloned().unwrap_or(Abs::Unknown)),
            LExpr::List(items) | LExpr::Tuple(items) => {
                for i in items {
                    self.expr(i, None)?;
                }
                Ok(Abs::List(items.len()))
            }
            LExpr::Dict(entries) => {
                for (_, v) in entries {
                    self.expr(v, None)?;
                }
                Ok(Abs::Unknown)
            }
            LExpr::Attr { base, .. } => {
                // Module paths hide no constructs; dict bases are walked.
                if !matches!(base.as_ref(), LExpr::Ident(_)) {
                    self.expr(base, None)?;
                }
                Ok(Abs::Unknown)
            }
            LExpr::Index { base, index } => {
                self.expr(base, None)?;
                self.expr(index, None)?;
                Ok(Abs::Unknown)
            }
            LExpr::Range { lo, hi, step } => {
                let l = self.expr(lo, None)?;
                let h = self.expr(hi, None)?;
                if let Some(s) = step {
                    self.expr(s, None)?;
                }
                match (l.bounds(), h.bounds()) {
                    (Some((llo, _)), Some((_, hhi))) => Ok(Abs::Range(llo, hhi)),
                    _ => Ok(Abs::Unknown),
                }
            }
            LExpr::Neg(inner) => {
                let v = self.expr(inner, None)?;
                Ok(match v {
                    Abs::Int(x) => Abs::Int(-x),
                    Abs::Float(x) => Abs::Float(-x),
                    Abs::Range(lo, hi) => Abs::Range(-hi, -lo),
                    _ => Abs::Unknown,
                })
            }
            LExpr::Not(inner) => {
                self.expr(inner, None)?;
                Ok(Abs::Unknown)
            }
            LExpr::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs, None)?;
                let r = self.expr(rhs, None)?;
                Ok(abs_binary(*op, &l, &r))
            }
            LExpr::OrExpr { serial, options } => {
                self.register(
                    *serial,
                    preferred,
                    ParamKind::Enum((0..options.len()).map(|i| format!("opt{i}")).collect()),
                );
                let mut result: Option<Abs> = None;
                for o in options {
                    let v = self.expr(o, None)?;
                    result = Some(match result {
                        None => v,
                        Some(prev) if prev == v => prev,
                        Some(_) => Abs::Unknown,
                    });
                }
                Ok(result.unwrap_or(Abs::Unknown))
            }
            LExpr::Search { serial, kind, args } => self.search(*serial, *kind, args, preferred),
            LExpr::Call { callee, args } => self.call(callee, args),
        }
    }

    fn search(
        &mut self,
        serial: usize,
        kind: SearchKind,
        args: &[LExpr],
        preferred: Option<&str>,
    ) -> Result<Abs, ExtractError> {
        match kind {
            SearchKind::Enum => {
                let labels = args
                    .iter()
                    .enumerate()
                    .map(|(i, a)| match a {
                        LExpr::Str(s) => s.clone(),
                        LExpr::Int(v) => v.to_string(),
                        LExpr::Float(v) => v.to_string(),
                        _ => format!("opt{i}"),
                    })
                    .collect();
                for a in args {
                    self.expr(a, None)?;
                }
                self.register(serial, preferred, ParamKind::Enum(labels));
                Ok(Abs::Unknown)
            }
            SearchKind::Integer
            | SearchKind::PowerOfTwo
            | SearchKind::LogInteger
            | SearchKind::Float
            | SearchKind::LogFloat => {
                let (lo_abs, hi_abs) = match args {
                    [LExpr::Range { lo, hi, .. }] => (self.expr(lo, None)?, self.expr(hi, None)?),
                    [lo, hi] => (self.expr(lo, None)?, self.expr(hi, None)?),
                    _ => {
                        return Err(self.err(format!(
                            "search construct `{}` needs a range",
                            preferred.unwrap_or("<anonymous>")
                        )))
                    }
                };
                let (lo, _) = lo_abs.bounds().ok_or_else(|| {
                    self.err(format!(
                        "cannot infer lower bound of `{}`",
                        preferred.unwrap_or("<anonymous>")
                    ))
                })?;
                let (_, hi) = hi_abs.bounds().ok_or_else(|| {
                    self.err(format!(
                        "cannot infer upper bound of `{}`",
                        preferred.unwrap_or("<anonymous>")
                    ))
                })?;
                let param = match kind {
                    SearchKind::Integer => ParamKind::Integer { min: lo, max: hi },
                    SearchKind::PowerOfTwo => ParamKind::PowerOfTwo { min: lo, max: hi },
                    SearchKind::LogInteger => ParamKind::LogInteger { min: lo, max: hi },
                    SearchKind::Float => ParamKind::Float {
                        min: lo as f64,
                        max: hi as f64,
                        steps: 33,
                    },
                    SearchKind::LogFloat => ParamKind::LogFloat {
                        min: lo as f64,
                        max: hi as f64,
                        steps: 33,
                    },
                    _ => unreachable!(),
                };
                self.register(serial, preferred, param);
                Ok(Abs::Range(lo, hi))
            }
            SearchKind::Permutation => {
                let n = match args.first().map(|a| self.expr(a, None)).transpose()? {
                    Some(Abs::List(n)) => n,
                    _ => {
                        return Err(self.err(format!(
                            "permutation `{}` needs a statically sized list (substitute \
                             queries first)",
                            preferred.unwrap_or("<anonymous>")
                        )))
                    }
                };
                self.register(serial, preferred, ParamKind::Permutation(n));
                Ok(Abs::List(n))
            }
        }
    }

    fn call(&mut self, callee: &LExpr, args: &[LArg]) -> Result<Abs, ExtractError> {
        // seq(a, b) has a statically known length when both bounds are
        // known.
        if let LExpr::Ident(name) = callee {
            if name == "seq" && args.len() == 2 {
                let lo = self.expr(&args[0].value, None)?;
                let hi = self.expr(&args[1].value, None)?;
                if let (Some((l, _)), Some((_, h))) = (lo.bounds(), hi.bounds()) {
                    return Ok(Abs::List((h - l).max(0) as usize));
                }
                return Ok(Abs::Unknown);
            }
        }
        for a in args {
            self.expr(&a.value, None)?;
        }
        if let LExpr::Ident(name) = callee {
            // Named sequences contribute their constructs once.
            let target = self
                .program
                .optseq(name)
                .map(|(p, b)| (p.to_vec(), b.clone()))
                .or_else(|| {
                    self.program
                        .method(name)
                        .map(|(p, b)| (p.to_vec(), b.clone()))
                })
                .or_else(|| {
                    self.program.items.iter().find_map(|i| match i {
                        LItem::Query {
                            name: n,
                            params,
                            body,
                        } if n == name => Some((params.clone(), body.clone())),
                        _ => None,
                    })
                });
            if let Some((params, body)) = target {
                if self.visited.iter().any(|v| v == name) {
                    return Ok(Abs::Unknown);
                }
                self.visited.push(name.clone());
                let saved = self.env.clone();
                for p in &params {
                    self.env.insert(p.clone(), Abs::Unknown);
                }
                self.block(&body)?;
                self.env = saved;
                self.visited.pop();
            }
        }
        Ok(Abs::Unknown)
    }
}

fn abs_binary(op: LBinOp, l: &Abs, r: &Abs) -> Abs {
    match op {
        LBinOp::Add | LBinOp::Sub | LBinOp::Mul => {
            let (Some((llo, lhi)), Some((rlo, rhi))) = (l.bounds(), r.bounds()) else {
                // String concatenation of constants stays constant.
                if op == LBinOp::Add {
                    if let (Abs::Str(a), Abs::Str(b)) = (l, r) {
                        return Abs::Str(format!("{a}{b}"));
                    }
                }
                return Abs::Unknown;
            };
            let candidates = match op {
                LBinOp::Add => [llo + rlo, llo + rhi, lhi + rlo, lhi + rhi],
                LBinOp::Sub => [llo - rhi, llo - rlo, lhi - rhi, lhi - rlo],
                LBinOp::Mul => [llo * rlo, llo * rhi, lhi * rlo, lhi * rhi],
                _ => unreachable!(),
            };
            let lo = *candidates.iter().min().expect("non-empty");
            let hi = *candidates.iter().max().expect("non-empty");
            if lo == hi {
                Abs::Int(lo)
            } else {
                Abs::Range(lo, hi)
            }
        }
        _ => Abs::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn fig5_space_has_three_parameters() {
        let src = r#"
        OptSeq Tiling2D() {
            tileI = poweroftwo(2..32);
            tileJ = poweroftwo(2..32);
            RoseLocus.Tiling(loop="0", factor=[tileI, tileJ]);
            return "2D";
        }
        OptSeq Tiling3D() {
            RoseLocus.Tiling(loop="0", factor=[4, 4, 8]);
            return "3D";
        }
        CodeReg matmul {
            tiledim = 4;
            tiletype = Tiling2D() OR Tiling3D();
            if (tiletype == "2D") {
                RoseLocus.Unroll(loop="0.0", factor=tiledim);
            }
        }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert_eq!(info.space.len(), 3);
        assert_eq!(
            info.space.param("tileI").unwrap().kind,
            ParamKind::PowerOfTwo { min: 2, max: 32 }
        );
        assert_eq!(
            info.space.param("tiletype").unwrap().kind,
            ParamKind::Enum(vec!["opt0".into(), "opt1".into()])
        );
        // Fig. 5 narrative: 25 2D points + 1 3D point; the flattened
        // space is 5*5*2 = 50 assignments covering both.
        assert_eq!(info.space.size(), 50);
    }

    #[test]
    fn fig7_dependent_ranges_get_outer_bounds() {
        let src = r#"
        CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tileI = poweroftwo(2..512);
            tileK = poweroftwo(2..512);
            tileJ = poweroftwo(2..512);
            Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
            tileI_2 = poweroftwo(2..tileI);
            tileK_2 = poweroftwo(2..tileK);
            tileJ_2 = poweroftwo(2..tileJ);
            Pips.Tiling(loop="0.0.0.0", factor=[tileI_2, tileK_2, tileJ_2]);
            {
                Pragma.OMPFor(loop="0");
            } OR {
                Pragma.OMPFor(loop="0", schedule=enum("static", "dynamic"),
                              chunk=integer(1..32));
            }
        }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        // Data-flow gives tileI_2 the static bounds 2..512.
        assert_eq!(
            info.space.param("tileI_2").unwrap().kind,
            ParamKind::PowerOfTwo { min: 2, max: 512 }
        );
        // 9 parameters: 6 tiles + OR block + schedule + chunk.
        assert_eq!(info.space.len(), 9);
        // Flattened: 9^6 * 2 * 2 * 32.
        assert_eq!(info.space.size(), 68_024_448);
    }

    #[test]
    fn permutation_needs_static_length() {
        // Unsubstituted query: extraction must fail.
        let src = r#"
        CodeReg scop {
            depth = BuiltIn.LoopNestDepth();
            permorder = permutation(seq(0, depth));
        }
        "#;
        assert!(extract_space(&parse(src).unwrap()).is_err());
        // With depth known, it works.
        let src = r#"
        CodeReg scop {
            depth = 3;
            permorder = permutation(seq(0, depth));
        }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert_eq!(
            info.space.param("permorder").unwrap().kind,
            ParamKind::Permutation(3)
        );
    }

    #[test]
    fn integer_range_with_arithmetic() {
        let src = r#"
        CodeReg scop {
            depth = 4;
            indexUAJ = integer(1..depth-1);
        }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert_eq!(
            info.space.param("indexUAJ").unwrap().kind,
            ParamKind::Integer { min: 1, max: 3 }
        );
    }

    #[test]
    fn optional_statement_becomes_bool() {
        let src = "CodeReg r { *RoseLocus.Distribute(loop=[1]); }";
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert_eq!(info.space.len(), 1);
        assert_eq!(info.space.params()[0].kind, ParamKind::Bool);
    }

    #[test]
    fn top_level_enum_is_named() {
        let src = r#"
        datalayout = enum("DZG", "DGZ", "GDZ", "GZD", "ZDG", "ZGD");
        CodeReg Scattering {
            if (datalayout == "DGZ") { looporder = [0, 1, 2, 3, 4]; }
        }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert_eq!(info.space.len(), 1);
        assert_eq!(
            info.space.param("datalayout").unwrap().kind,
            ParamKind::Enum(vec![
                "DZG".into(),
                "DGZ".into(),
                "GDZ".into(),
                "GZD".into(),
                "ZDG".into(),
                "ZGD".into()
            ])
        );
        assert_eq!(info.space.size(), 6);
    }

    #[test]
    fn constructs_in_unreached_optseqs_are_ignored() {
        let src = r#"
        OptSeq Unused() {
            t = poweroftwo(2..64);
            A.X(t=t);
        }
        CodeReg r { A.Y(); }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert!(info.space.is_empty());
    }

    #[test]
    fn or_statement_is_an_enum() {
        let src = "CodeReg r { transfA() OR transfB() OR transfC(); }";
        let info = extract_space(&parse(src).unwrap()).unwrap();
        assert_eq!(info.space.len(), 1);
        assert_eq!(
            info.space.params()[0].kind,
            ParamKind::Enum(vec!["opt0".into(), "opt1".into(), "opt2".into()])
        );
    }

    #[test]
    fn fig13_space_after_query_substitution() {
        // As if the queries were substituted for a perfect depth-2 nest.
        let src = r#"
        CodeReg scop {
            perfect = 1;
            depth = 2;
            if (1) {
                if (perfect && depth > 1) {
                    permorder = permutation(seq(0, depth));
                    RoseLocus.Interchange(order=permorder);
                }
                {
                    if (perfect) {
                        indexT1 = integer(1..depth);
                        T1fac = poweroftwo(2..32);
                        RoseLocus.Tiling(loop=indexT1, factor=T1fac);
                    }
                } OR {
                    if (depth > 1) {
                        indexUAJ = integer(1..depth-1);
                        UAJfac = poweroftwo(2..4);
                        RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);
                    }
                } OR {
                    None;
                }
                innerloops = [1];
                *RoseLocus.Distribute(loop=innerloops);
            }
            innerloops = [1];
            RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));
        }
        "#;
        let info = extract_space(&parse(src).unwrap()).unwrap();
        // permutation(2) + OR(3) + indexT1 + T1fac + indexUAJ + UAJfac +
        // optional + unroll pow2 = 8 params.
        assert_eq!(info.space.len(), 8);
        assert_eq!(
            info.space.param("permorder").unwrap().kind,
            ParamKind::Permutation(2)
        );
        assert_eq!(
            info.space.param("UAJfac").unwrap().kind,
            ParamKind::PowerOfTwo { min: 2, max: 4 }
        );
    }
}
