//! The Locus optimization language (Sec. III of the paper).
//!
//! Locus programs orchestrate transformations over named code regions
//! and expose spaces of alternatives through *search constructs*. This
//! crate implements the complete language of the paper's Fig. 4 EBNF:
//!
//! * `CodeReg NAME { ... }` — the optimization sequence for regions
//!   labeled `NAME`;
//! * `OptSeq NAME(args) { ... }` — reusable named sequences;
//! * `def NAME(args) { ... }` — plain helper methods (no module calls);
//! * `Query` / `Module` declarations, `import` and `extern`;
//! * `Search { ... }` — build/run/measure configuration;
//! * search constructs: `OR` blocks, `OR` statements, optional (`*`)
//!   statements, and the value constructs `enum`, `integer`, `float`,
//!   `permutation`, `poweroftwo`, `loginteger`, `logfloat`;
//! * data structures (lists, tuples, `dict`), numbers and strings,
//!   `if`/`elif`/`else`, `for`, `while`, hierarchical index strings, and
//!   dependent ranges (`poweroftwo(2..tileI)`).
//!
//! The pipeline mirrors the paper's system:
//!
//! 1. [`parse`] turns source text into an AST whose search constructs
//!    carry stable serial numbers;
//! 2. [`optimize::optimize`] applies the paper's Sec. IV-C program
//!    optimizations (query pre-evaluation hooks, constant propagation,
//!    constant folding, dead-code elimination), shrinking the space;
//! 3. [`extract::extract_space`] converts the program into a
//!    [`locus_space::Space`] (the `convertOptUniverse` step of
//!    Sec. IV-B), inferring dependent-range bounds by data flow;
//! 4. [`interp::Interp`] executes the program under a concrete
//!    [`locus_space::Point`], dispatching module invocations to a
//!    [`interp::TransformHost`] — the system side that owns the actual
//!    code regions.

#![warn(missing_docs)]

pub mod ast;
pub mod extract;
pub mod interp;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod printer;
pub mod specialize;
pub mod value;

pub use ast::{LocusProgram, SearchKind};
pub use extract::{extract_space, SpaceInfo};
pub use interp::{HostError, Interp, RunOutput, TransformHost};
pub use parser::{parse, LocusParseError};
pub use printer::print_program;
pub use specialize::specialize;
pub use value::Value;
