//! Interpreter for Locus optimization programs.
//!
//! A program is interpreted under a concrete [`Point`]: every search
//! construct reads its value from the point (chosen by a search module),
//! `OR` blocks execute the chosen alternative, and module invocations
//! (`RoseLocus.Tiling(...)`) are dispatched to a [`TransformHost`] that
//! owns the actual code region being optimized. With an empty point the
//! interpreter produces the *default* variant — the behaviour of a
//! direct (search-free) Locus program.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use locus_space::{ParamValue, Point};

use crate::ast::*;
use crate::value::Value;

/// Failures reported by the host (the system side owning regions and
/// transformation modules) — the paper's wrapper exit statuses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// The transformation's legality check refused.
    Illegal(String),
    /// The invocation failed outright.
    Error(String),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Illegal(m) => write!(f, "illegal: {m}"),
            HostError::Error(m) => write!(f, "error: {m}"),
        }
    }
}

impl Error for HostError {}

/// The system side of module integration (Sec. IV-A): receives every
/// `Module.Function(...)` invocation made from `CodeReg`/`OptSeq`/`Query`
/// bodies, applies it to the current code region, and returns a value
/// (queries) or `Value::None` (transformations).
pub trait TransformHost {
    /// Handles one module invocation.
    ///
    /// # Errors
    ///
    /// Returns [`HostError`] when the module reports an error or an
    /// illegal transformation.
    fn call(
        &mut self,
        module: &str,
        func: &str,
        args: &[(Option<String>, Value)],
    ) -> Result<Value, HostError>;
}

/// A host that accepts no module calls (useful for pure programs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHost;

impl TransformHost for NoHost {
    fn call(
        &mut self,
        module: &str,
        func: &str,
        _args: &[(Option<String>, Value)],
    ) -> Result<Value, HostError> {
        Err(HostError::Error(format!(
            "no module host available for {module}.{func}"
        )))
    }
}

/// Runtime errors of the Locus interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum LocusError {
    /// A name was read before being defined.
    Undefined(String),
    /// Type mismatch or malformed operation.
    Type(String),
    /// The current point violates a dependent-range constraint
    /// (Sec. IV-B.1) — the variant must be skipped.
    InvalidPoint(String),
    /// A module invocation failed.
    Host(HostError),
    /// Execution budget exhausted (runaway loop in the program).
    Fuel,
    /// Module calls are not allowed inside `def` methods (Sec. III).
    ModuleCallInDef(String),
    /// `CodeReg`/`OptSeq` not found.
    UnknownRegion(String),
}

impl fmt::Display for LocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocusError::Undefined(n) => write!(f, "undefined name `{n}`"),
            LocusError::Type(m) => write!(f, "type error: {m}"),
            LocusError::InvalidPoint(m) => write!(f, "invalid point: {m}"),
            LocusError::Host(e) => write!(f, "module failure: {e}"),
            LocusError::Fuel => write!(f, "execution budget exhausted"),
            LocusError::ModuleCallInDef(n) => {
                write!(f, "module call `{n}` inside a def method")
            }
            LocusError::UnknownRegion(n) => write!(f, "no CodeReg or OptSeq named `{n}`"),
        }
    }
}

impl Error for LocusError {}

impl From<HostError> for LocusError {
    fn from(e: HostError) -> LocusError {
        LocusError::Host(e)
    }
}

/// Output of one interpretation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunOutput {
    /// Messages from `print` statements.
    pub log: Vec<String>,
    /// Assignments made in the `Search { ... }` block (buildcmd, runcmd,
    /// ...).
    pub search_config: BTreeMap<String, Value>,
}

enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter. Create one per (program, point) pair, call
/// [`Interp::run_codereg`] for each region, then take the
/// [`RunOutput`].
pub struct Interp<'a> {
    program: &'a LocusProgram,
    host: &'a mut dyn TransformHost,
    point: &'a Point,
    ids: &'a HashMap<usize, String>,
    scopes: Vec<HashMap<String, Value>>,
    output: RunOutput,
    fuel: u64,
    in_def: bool,
    top_level_done: bool,
    /// Names declared `extern`: calls to them dispatch to the host under
    /// the pseudo-module `extern`.
    externs: std::collections::HashSet<String>,
}

impl<'a> Interp<'a> {
    /// Creates an interpreter over `program` for one `point`.
    ///
    /// `ids` maps search-construct serials to space-parameter ids (from
    /// [`crate::extract::extract_space`]); pass an empty map together
    /// with an empty point to run a direct program.
    pub fn new(
        program: &'a LocusProgram,
        host: &'a mut dyn TransformHost,
        point: &'a Point,
        ids: &'a HashMap<usize, String>,
    ) -> Interp<'a> {
        Interp {
            program,
            host,
            point,
            ids,
            scopes: vec![HashMap::new()],
            output: RunOutput::default(),
            fuel: 10_000_000,
            in_def: false,
            top_level_done: false,
            externs: program
                .items
                .iter()
                .filter_map(|item| match item {
                    LItem::Extern(LExpr::Ident(name)) => Some(name.clone()),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Executes all top-level statements (global assignments such as
    /// Fig. 11's `datalayout = enum(...)`). Called automatically by
    /// [`Interp::run_codereg`] on first use.
    ///
    /// # Errors
    ///
    /// See [`LocusError`].
    pub fn run_top_level(&mut self) -> Result<(), LocusError> {
        if self.top_level_done {
            return Ok(());
        }
        self.top_level_done = true;
        let items = self.program.items.clone();
        for item in &items {
            if let LItem::Stmt(stmt) = item {
                if let Flow::Return(_) = self.exec(stmt)? {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Runs the `CodeReg` with the given name against the host's current
    /// region.
    ///
    /// # Errors
    ///
    /// See [`LocusError`]; [`LocusError::UnknownRegion`] when no such
    /// `CodeReg` exists.
    pub fn run_codereg(&mut self, name: &str) -> Result<(), LocusError> {
        self.run_top_level()?;
        let body = self
            .program
            .codereg(name)
            .ok_or_else(|| LocusError::UnknownRegion(name.to_string()))?
            .clone();
        self.scopes.push(HashMap::new());
        let r = self.exec_block(&body);
        self.scopes.pop();
        r.map(|_| ())
    }

    /// Executes the `Search { ... }` block, populating
    /// [`RunOutput::search_config`].
    ///
    /// # Errors
    ///
    /// See [`LocusError`].
    pub fn run_search_block(&mut self) -> Result<(), LocusError> {
        self.run_top_level()?;
        let Some(block) = self.program.search_block().cloned() else {
            return Ok(());
        };
        // The search block runs in its own scope; every name it binds —
        // including assignments made inside `if`/`for` bodies, which per
        // Sec. III share their parent's scope — becomes configuration.
        self.scopes.push(HashMap::new());
        for stmt in &block.alternatives[0] {
            if let Flow::Return(_) = self.exec(stmt)? {
                break;
            }
        }
        let frame = self.scopes.pop().expect("search scope was pushed");
        for (name, value) in frame {
            self.output.search_config.insert(name, value);
        }
        Ok(())
    }

    /// Consumes the interpreter, returning the run output.
    pub fn into_output(self) -> RunOutput {
        self.output
    }

    fn burn(&mut self) -> Result<(), LocusError> {
        if self.fuel == 0 {
            return Err(LocusError::Fuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// The chosen alternative index of a serial-carrying construct.
    fn choice(&self, serial: usize, n: usize, default: usize) -> usize {
        let id = self.param_id(serial);
        match self.point.get(&id) {
            Some(ParamValue::Choice(c)) => (*c).min(n.saturating_sub(1)),
            Some(ParamValue::Int(v)) => (*v as usize).min(n.saturating_sub(1)),
            _ => default,
        }
    }

    fn param_id(&self, serial: usize) -> String {
        self.ids
            .get(&serial)
            .cloned()
            .unwrap_or_else(|| format!("p{serial}"))
    }

    // ---- statements -----------------------------------------------------

    fn exec_block(&mut self, block: &LBlock) -> Result<Flow, LocusError> {
        let alt = match block.serial {
            Some(serial) => self.choice(serial, block.alternatives.len(), 0),
            None => 0,
        };
        // Per Sec. III *Scope*: blocks have their own scope, but control
        // flow constructs share their parent's. `exec_block` is the
        // shared-scope entry; `exec_scoped_block` pushes one.
        for stmt in &block.alternatives[alt] {
            if let Flow::Return(v) = self.exec(stmt)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &LStmt) -> Result<Flow, LocusError> {
        self.burn()?;
        match stmt {
            LStmt::Pass => Ok(Flow::Normal),
            LStmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            LStmt::Print(e) => {
                let v = self.eval(e)?;
                self.output.log.push(v.to_string());
                Ok(Flow::Normal)
            }
            LStmt::Assign { targets, value } => {
                let v = self.eval(value)?;
                if targets.len() == 1 {
                    self.assign(&targets[0], v)?;
                } else {
                    let items = v.as_slice().ok_or_else(|| {
                        LocusError::Type("multiple-target assignment needs a sequence".into())
                    })?;
                    if items.len() != targets.len() {
                        return Err(LocusError::Type(format!(
                            "cannot unpack {} values into {} targets",
                            items.len(),
                            targets.len()
                        )));
                    }
                    let items = items.to_vec();
                    for (t, item) in targets.iter().zip(items) {
                        self.assign(t, item)?;
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::Optional { serial, stmt } => {
                // Choice 1 = execute, 0 = skip; defaults to execute so a
                // direct program behaves as written.
                if self.choice(*serial, 2, 1) == 1 {
                    self.exec(stmt)
                } else {
                    Ok(Flow::Normal)
                }
            }
            LStmt::Block(block) => {
                // Blocks introduce a scope (Sec. III *Scope*).
                self.scopes.push(HashMap::new());
                let r = self.exec_block(block);
                self.scopes.pop();
                r
            }
            LStmt::If {
                cond,
                then,
                elifs,
                els,
            } => {
                if self.eval(cond)?.truthy() {
                    return self.exec_block(then);
                }
                for (c, b) in elifs {
                    if self.eval(c)?.truthy() {
                        return self.exec_block(b);
                    }
                }
                if let Some(b) = els {
                    return self.exec_block(b);
                }
                Ok(Flow::Normal)
            }
            LStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.exec(init)?;
                loop {
                    self.burn()?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                    self.exec(step)?;
                }
                Ok(Flow::Normal)
            }
            LStmt::While { cond, body } => {
                loop {
                    self.burn()?;
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_block(body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            LStmt::Return(value) => {
                let v = match value {
                    Some(e) => self.eval(e)?,
                    None => Value::None,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn assign(&mut self, target: &LExpr, value: Value) -> Result<(), LocusError> {
        match target {
            LExpr::Ident(name) => {
                // Assignment updates an existing binding in any enclosing
                // scope, else creates one in the current scope.
                for scope in self.scopes.iter_mut().rev() {
                    if let Some(slot) = scope.get_mut(name) {
                        *slot = value;
                        return Ok(());
                    }
                }
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), value);
                Ok(())
            }
            LExpr::Index { base, index } => {
                let idx = self.eval(index)?;
                let base_name = match base.as_ref() {
                    LExpr::Ident(n) => n.clone(),
                    _ => {
                        return Err(LocusError::Type(
                            "indexed assignment requires a named container".into(),
                        ))
                    }
                };
                let container = self.lookup_mut(&base_name)?;
                match (container, idx) {
                    (Value::List(items), Value::Int(i)) => {
                        let i = i as usize;
                        if i >= items.len() {
                            return Err(LocusError::Type(format!("list index {i} out of range")));
                        }
                        items[i] = value;
                        Ok(())
                    }
                    (Value::Dict(map), Value::Str(key)) => {
                        map.insert(key, value);
                        Ok(())
                    }
                    (c, i) => Err(LocusError::Type(format!(
                        "cannot index {} with {}",
                        c.type_name(),
                        i.type_name()
                    ))),
                }
            }
            other => Err(LocusError::Type(format!(
                "invalid assignment target {other:?}"
            ))),
        }
    }

    fn lookup(&self, name: &str) -> Result<Value, LocusError> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Ok(v.clone());
            }
        }
        // Builtin loop-selector constants (Fig. 5's `loop=innermost`).
        if name == "innermost" || name == "outermost" {
            return Ok(Value::Str(name.to_string()));
        }
        Err(LocusError::Undefined(name.to_string()))
    }

    fn lookup_mut(&mut self, name: &str) -> Result<&mut Value, LocusError> {
        for scope in self.scopes.iter_mut().rev() {
            if scope.contains_key(name) {
                return Ok(scope.get_mut(name).expect("just checked"));
            }
        }
        Err(LocusError::Undefined(name.to_string()))
    }

    // ---- expressions ------------------------------------------------------

    fn eval(&mut self, e: &LExpr) -> Result<Value, LocusError> {
        self.burn()?;
        match e {
            LExpr::Int(v) => Ok(Value::Int(*v)),
            LExpr::Float(v) => Ok(Value::Float(*v)),
            LExpr::Str(s) => Ok(Value::Str(s.clone())),
            LExpr::None => Ok(Value::None),
            LExpr::Ident(name) => self.lookup(name),
            LExpr::List(items) => Ok(Value::List(
                items
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<Result<_, _>>()?,
            )),
            LExpr::Tuple(items) => Ok(Value::Tuple(
                items
                    .iter()
                    .map(|i| self.eval(i))
                    .collect::<Result<_, _>>()?,
            )),
            LExpr::Dict(entries) => {
                let mut map = BTreeMap::new();
                for (k, v) in entries {
                    map.insert(k.clone(), self.eval(v)?);
                }
                Ok(Value::Dict(map))
            }
            LExpr::Attr { base, name } => {
                // Dict attribute access; module attributes only make
                // sense when called, which `Call` handles before
                // evaluating the callee.
                let b = self.eval(base)?;
                match b {
                    Value::Dict(map) => map
                        .get(name)
                        .cloned()
                        .ok_or_else(|| LocusError::Undefined(format!("dict key `{name}`"))),
                    other => Err(LocusError::Type(format!(
                        "cannot access attribute `{name}` of {}",
                        other.type_name()
                    ))),
                }
            }
            LExpr::Index { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval(index)?;
                match (b, i) {
                    (Value::List(items) | Value::Tuple(items), Value::Int(idx)) => {
                        let idx = if idx < 0 {
                            (items.len() as i64 + idx) as usize
                        } else {
                            idx as usize
                        };
                        items
                            .get(idx)
                            .cloned()
                            .ok_or_else(|| LocusError::Type(format!("index {idx} out of range")))
                    }
                    (Value::Dict(map), Value::Str(key)) => map
                        .get(&key)
                        .cloned()
                        .ok_or_else(|| LocusError::Undefined(format!("dict key `{key}`"))),
                    (Value::Str(s), Value::Int(idx)) => {
                        let c = s
                            .chars()
                            .nth(idx as usize)
                            .ok_or_else(|| LocusError::Type("string index out of range".into()))?;
                        Ok(Value::Str(c.to_string()))
                    }
                    (b, i) => Err(LocusError::Type(format!(
                        "cannot index {} with {}",
                        b.type_name(),
                        i.type_name()
                    ))),
                }
            }
            LExpr::Range { lo, hi, step } => {
                // Outside search constructs a range materializes as the
                // inclusive integer list it denotes.
                let lo = self.eval_int(lo)?;
                let hi = self.eval_int(hi)?;
                let step = match step {
                    Some(s) => self.eval_int(s)?.max(1),
                    None => 1,
                };
                Ok(Value::List(
                    (lo..=hi).step_by(step as usize).map(Value::Int).collect(),
                ))
            }
            LExpr::Neg(inner) => match self.eval(inner)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                Value::Float(v) => Ok(Value::Float(-v)),
                other => Err(LocusError::Type(format!(
                    "cannot negate {}",
                    other.type_name()
                ))),
            },
            LExpr::Not(inner) => Ok(Value::from(!self.eval(inner)?.truthy())),
            LExpr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            LExpr::Search { serial, kind, args } => self.eval_search(*serial, *kind, args),
            LExpr::OrExpr { serial, options } => {
                let pick = self.choice(*serial, options.len(), 0);
                self.eval(&options[pick])
            }
            LExpr::Call { callee, args } => self.eval_call(callee, args),
        }
    }

    fn eval_int(&mut self, e: &LExpr) -> Result<i64, LocusError> {
        self.eval(e)?
            .as_int()
            .ok_or_else(|| LocusError::Type("expected an integer".into()))
    }

    fn eval_binary(&mut self, op: LBinOp, lhs: &LExpr, rhs: &LExpr) -> Result<Value, LocusError> {
        // Short-circuit logicals.
        match op {
            LBinOp::And => {
                let l = self.eval(lhs)?;
                if !l.truthy() {
                    return Ok(Value::from(false));
                }
                return Ok(Value::from(self.eval(rhs)?.truthy()));
            }
            LBinOp::Or => {
                let l = self.eval(lhs)?;
                if l.truthy() {
                    return Ok(Value::from(true));
                }
                return Ok(Value::from(self.eval(rhs)?.truthy()));
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        binary_values(op, l, r)
    }

    fn eval_search(
        &mut self,
        serial: usize,
        kind: SearchKind,
        args: &[LExpr],
    ) -> Result<Value, LocusError> {
        let id = self.param_id(serial);
        let chosen = self.point.get(&id).cloned();
        match kind {
            SearchKind::Enum => {
                let pick = match chosen {
                    Some(ParamValue::Choice(c)) => c.min(args.len().saturating_sub(1)),
                    _ => 0,
                };
                args.get(pick)
                    .map(|e| self.eval(e))
                    .unwrap_or(Ok(Value::None))?
                    .pipe_ok()
            }
            SearchKind::Integer | SearchKind::PowerOfTwo | SearchKind::LogInteger => {
                let (lo, hi) = self.eval_range(args)?;
                let v = match chosen {
                    Some(ParamValue::Int(v)) => v,
                    Some(ParamValue::Choice(c)) => c as i64,
                    _ => lo,
                };
                // Dependent-range revalidation (Sec. IV-B.1): the point
                // must fall inside the *runtime* range.
                if v < lo || v > hi {
                    return Err(LocusError::InvalidPoint(format!(
                        "{id} = {v} outside runtime range {lo}..{hi}"
                    )));
                }
                if kind == SearchKind::PowerOfTwo && v.count_ones() != 1 {
                    return Err(LocusError::InvalidPoint(format!(
                        "{id} = {v} is not a power of two"
                    )));
                }
                Ok(Value::Int(v))
            }
            SearchKind::Float | SearchKind::LogFloat => {
                let (lo, hi) = self.eval_float_range(args)?;
                let v = match chosen {
                    Some(ParamValue::Float(v)) => v,
                    Some(ParamValue::Int(v)) => v as f64,
                    _ => lo,
                };
                if v < lo || v > hi {
                    return Err(LocusError::InvalidPoint(format!(
                        "{id} = {v} outside runtime range {lo}..{hi}"
                    )));
                }
                Ok(Value::Float(v))
            }
            SearchKind::Permutation => {
                let items = match args.first() {
                    Some(e) => match self.eval(e)? {
                        Value::List(v) | Value::Tuple(v) => v,
                        other => {
                            return Err(LocusError::Type(format!(
                                "permutation() expects a list, got {}",
                                other.type_name()
                            )))
                        }
                    },
                    None => Vec::new(),
                };
                let perm: Vec<usize> = match chosen {
                    Some(ParamValue::Perm(p)) => p,
                    _ => (0..items.len()).collect(),
                };
                if perm.len() != items.len() {
                    return Err(LocusError::InvalidPoint(format!(
                        "{id}: permutation of length {} over {} items",
                        perm.len(),
                        items.len()
                    )));
                }
                Ok(Value::List(
                    perm.into_iter().map(|i| items[i].clone()).collect(),
                ))
            }
        }
    }

    fn eval_range(&mut self, args: &[LExpr]) -> Result<(i64, i64), LocusError> {
        match args {
            [LExpr::Range { lo, hi, .. }] => {
                let lo = self.eval_int(lo)?;
                let hi = self.eval_int(hi)?;
                Ok((lo, hi))
            }
            [lo, hi] => Ok((self.eval_int(lo)?, self.eval_int(hi)?)),
            _ => Err(LocusError::Type(
                "numeric search construct expects a range".into(),
            )),
        }
    }

    fn eval_float_range(&mut self, args: &[LExpr]) -> Result<(f64, f64), LocusError> {
        match args {
            [LExpr::Range { lo, hi, .. }] => {
                let lo = self
                    .eval(lo)?
                    .as_f64()
                    .ok_or_else(|| LocusError::Type("float range bound".into()))?;
                let hi = self
                    .eval(hi)?
                    .as_f64()
                    .ok_or_else(|| LocusError::Type("float range bound".into()))?;
                Ok((lo, hi))
            }
            [lo, hi] => {
                let lo = self
                    .eval(lo)?
                    .as_f64()
                    .ok_or_else(|| LocusError::Type("float range bound".into()))?;
                let hi = self
                    .eval(hi)?
                    .as_f64()
                    .ok_or_else(|| LocusError::Type("float range bound".into()))?;
                Ok((lo, hi))
            }
            _ => Err(LocusError::Type(
                "float search construct expects a range".into(),
            )),
        }
    }

    fn eval_call(&mut self, callee: &LExpr, args: &[LArg]) -> Result<Value, LocusError> {
        // Module invocation: `Module.Function(args)`.
        if let LExpr::Attr { base, name } = callee {
            if let LExpr::Ident(module) = base.as_ref() {
                if !self.scope_has(module) {
                    let mut values = Vec::with_capacity(args.len());
                    for a in args {
                        values.push((a.name.clone(), self.eval(&a.value)?));
                    }
                    if self.in_def {
                        return Err(LocusError::ModuleCallInDef(format!("{module}.{name}")));
                    }
                    return Ok(self.host.call(module, name, &values)?);
                }
            }
        }
        if let LExpr::Ident(name) = callee {
            // `extern` functions dispatch to the host (Sec. III: external
            // modules and definitions brought in by `extern`/`import`).
            if self.externs.contains(name) {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push((a.name.clone(), self.eval(&a.value)?));
                }
                if self.in_def {
                    return Err(LocusError::ModuleCallInDef(name.clone()));
                }
                return Ok(self.host.call("extern", name, &values)?);
            }
            // Builtins.
            match name.as_str() {
                "seq" => {
                    let lo = self.arg_int(args, 0)?;
                    let hi = self.arg_int(args, 1)?;
                    return Ok(Value::List((lo..hi).map(Value::Int).collect()));
                }
                "len" => {
                    let v = self.eval(&args[0].value)?;
                    let n = match &v {
                        Value::List(v) | Value::Tuple(v) => v.len(),
                        Value::Str(s) => s.len(),
                        Value::Dict(d) => d.len(),
                        other => {
                            return Err(LocusError::Type(format!("len() of {}", other.type_name())))
                        }
                    };
                    return Ok(Value::Int(n as i64));
                }
                "str" => {
                    let v = self.eval(&args[0].value)?;
                    return Ok(Value::Str(v.to_string()));
                }
                _ => {}
            }
            // OptSeq / Query / def invocation.
            if let Some((params, body)) = self.program.optseq(name) {
                let (params, body) = (params.to_vec(), body.clone());
                return self.call_named(&params, &body, args, false);
            }
            if let Some(item) = self.program.items.iter().find_map(|i| match i {
                LItem::Query {
                    name: n,
                    params,
                    body,
                } if n == name => Some((params.clone(), body.clone())),
                _ => None,
            }) {
                let (params, body) = item;
                return self.call_named(&params, &body, args, false);
            }
            if let Some((params, body)) = self.program.method(name) {
                let (params, body) = (params.to_vec(), body.clone());
                return self.call_named(&params, &body, args, true);
            }
            return Err(LocusError::Undefined(format!("function `{name}`")));
        }
        Err(LocusError::Type("expression is not callable".into()))
    }

    fn arg_int(&mut self, args: &[LArg], i: usize) -> Result<i64, LocusError> {
        let a = args
            .get(i)
            .ok_or_else(|| LocusError::Type(format!("missing argument {i}")))?;
        let value = a.value.clone();
        self.eval_int(&value)
    }

    fn call_named(
        &mut self,
        params: &[String],
        body: &LBlock,
        args: &[LArg],
        is_def: bool,
    ) -> Result<Value, LocusError> {
        let mut frame = HashMap::new();
        for (i, p) in params.iter().enumerate() {
            let value = match args.iter().find(|a| a.name.as_deref() == Some(p)) {
                Some(a) => {
                    let e = a.value.clone();
                    self.eval(&e)?
                }
                None => match args.get(i).filter(|a| a.name.is_none()) {
                    Some(a) => {
                        let e = a.value.clone();
                        self.eval(&e)?
                    }
                    None => Value::None,
                },
            };
            frame.insert(p.clone(), value);
        }
        self.scopes.push(frame);
        let was_def = self.in_def;
        self.in_def = self.in_def || is_def;
        let flow = self.exec_block(body);
        self.in_def = was_def;
        self.scopes.pop();
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::None),
        }
    }

    fn scope_has(&self, name: &str) -> bool {
        self.scopes.iter().any(|s| s.contains_key(name))
    }
}

/// Evaluates a binary operation on values (also used by the constant
/// folder).
pub(crate) fn binary_values(op: LBinOp, l: Value, r: Value) -> Result<Value, LocusError> {
    use Value::{Float, Int, Str};
    let type_err = |l: &Value, r: &Value| {
        LocusError::Type(format!(
            "unsupported operands {} and {} for {op:?}",
            l.type_name(),
            r.type_name()
        ))
    };
    Ok(match op {
        LBinOp::Add => match (&l, &r) {
            (Int(a), Int(b)) => Int(a + b),
            (Str(a), b) => Str(format!("{a}{b}")),
            (a, Str(b)) => Str(format!("{a}{b}")),
            (Value::List(a), Value::List(b)) => {
                Value::List(a.iter().chain(b.iter()).cloned().collect())
            }
            _ => Float(
                l.as_f64()
                    .zip(r.as_f64())
                    .map(|(a, b)| a + b)
                    .ok_or_else(|| type_err(&l, &r))?,
            ),
        },
        LBinOp::Sub | LBinOp::Mul | LBinOp::Div | LBinOp::Rem | LBinOp::Pow => match (&l, &r) {
            (Int(a), Int(b)) => match op {
                LBinOp::Sub => Int(a - b),
                LBinOp::Mul => Int(a * b),
                LBinOp::Div => {
                    if *b == 0 {
                        return Err(LocusError::Type("division by zero".into()));
                    }
                    Int(a / b)
                }
                LBinOp::Rem => {
                    if *b == 0 {
                        return Err(LocusError::Type("modulo by zero".into()));
                    }
                    Int(a % b)
                }
                LBinOp::Pow => {
                    if *b >= 0 {
                        Int(a.pow((*b).min(63) as u32))
                    } else {
                        Float((*a as f64).powi(*b as i32))
                    }
                }
                _ => unreachable!(),
            },
            _ => {
                let (a, b) = l.as_f64().zip(r.as_f64()).ok_or_else(|| type_err(&l, &r))?;
                match op {
                    LBinOp::Sub => Float(a - b),
                    LBinOp::Mul => Float(a * b),
                    LBinOp::Div => Float(a / b),
                    LBinOp::Rem => Float(a % b),
                    LBinOp::Pow => Float(a.powf(b)),
                    _ => unreachable!(),
                }
            }
        },
        LBinOp::Eq => Value::from(values_equal(&l, &r)),
        LBinOp::Ne => Value::from(!values_equal(&l, &r)),
        LBinOp::Lt | LBinOp::Le | LBinOp::Gt | LBinOp::Ge => {
            let (a, b) = l.as_f64().zip(r.as_f64()).ok_or_else(|| type_err(&l, &r))?;
            Value::from(match op {
                LBinOp::Lt => a < b,
                LBinOp::Le => a <= b,
                LBinOp::Gt => a > b,
                LBinOp::Ge => a >= b,
                _ => unreachable!(),
            })
        }
        LBinOp::And | LBinOp::Or => unreachable!("handled with short-circuit"),
    })
}

fn values_equal(l: &Value, r: &Value) -> bool {
    match (l, r) {
        (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
        _ => l == r,
    }
}

trait PipeOk {
    fn pipe_ok(self) -> Result<Value, LocusError>;
}

impl PipeOk for Value {
    fn pipe_ok(self) -> Result<Value, LocusError> {
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// A host that records module calls.
    #[derive(Default)]
    pub struct RecordingHost {
        pub calls: Vec<String>,
        pub responses: HashMap<String, Value>,
    }

    impl TransformHost for RecordingHost {
        fn call(
            &mut self,
            module: &str,
            func: &str,
            args: &[(Option<String>, Value)],
        ) -> Result<Value, HostError> {
            let rendered: Vec<String> = args
                .iter()
                .map(|(n, v)| match n {
                    Some(n) => format!("{n}={v}"),
                    None => v.to_string(),
                })
                .collect();
            let key = format!("{module}.{func}");
            self.calls.push(format!("{key}({})", rendered.join(", ")));
            Ok(self.responses.get(&key).cloned().unwrap_or(Value::None))
        }
    }

    fn run_default(src: &str, region: &str) -> (RecordingHost, RunOutput) {
        let program = parse(src).unwrap();
        let mut host = RecordingHost::default();
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg(region).unwrap();
        let out = interp.into_output();
        (host, out)
    }

    #[test]
    fn direct_program_invokes_modules_in_order() {
        let src = r#"
        CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            Pips.Tiling(loop="0", factor=[4, 4, 8]);
        }
        "#;
        let (host, _) = run_default(src, "matmul");
        assert_eq!(
            host.calls,
            vec![
                "RoseLocus.Interchange(order=[0, 2, 1])",
                "Pips.Tiling(loop=0, factor=[4, 4, 8])"
            ]
        );
    }

    #[test]
    fn fig5_default_point_runs_first_alternative() {
        let src = r#"
        OptSeq Tiling2D() {
            tileI = poweroftwo(2..32);
            tileJ = poweroftwo(2..32);
            RoseLocus.Tiling(loop="0", factor=[tileI, tileJ]);
            return "2D";
        }
        OptSeq Tiling3D() {
            RoseLocus.Tiling(loop="0", factor=[4, 4, 8]);
            return "3D";
        }
        def printstatus(type) {
            print "Tiling selected: " + type;
        }
        CodeReg matmul {
            tiledim = 4;
            tiletype = Tiling2D() OR Tiling3D();
            printstatus(tiletype);
            if (tiletype == "2D") {
                RoseLocus.Unroll(loop="0.0", factor=tiledim);
            }
        }
        "#;
        let (host, out) = run_default(src, "matmul");
        // Default picks Tiling2D with minimum tile sizes.
        assert_eq!(
            host.calls,
            vec![
                "RoseLocus.Tiling(loop=0, factor=[2, 2])",
                "RoseLocus.Unroll(loop=0.0, factor=4)"
            ]
        );
        assert_eq!(out.log, vec!["Tiling selected: 2D"]);
    }

    #[test]
    fn point_selects_or_alternative_and_values() {
        let src = r#"
        CodeReg r {
            t = poweroftwo(2..32);
            {
                A.First(size=t);
            } OR {
                A.Second(size=t);
            }
        }
        "#;
        let program = parse(src).unwrap();
        // Serials: 0 = pow2, 1 = OR block.
        let ids: HashMap<usize, String> = vec![(0, "t".to_string()), (1, "orblock".to_string())]
            .into_iter()
            .collect();
        let mut point = Point::new();
        point.set("t", ParamValue::Int(16));
        point.set("orblock", ParamValue::Choice(1));
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg("r").unwrap();
        assert_eq!(host.calls, vec!["A.Second(size=16)"]);
    }

    #[test]
    fn dependent_range_violation_is_invalid_point() {
        let src = r#"
        CodeReg r {
            tileI = poweroftwo(2..512);
            tileI_2 = poweroftwo(2..tileI);
            A.T(a=tileI, b=tileI_2);
        }
        "#;
        let program = parse(src).unwrap();
        let ids: HashMap<usize, String> =
            vec![(0, "tileI".to_string()), (1, "tileI_2".to_string())]
                .into_iter()
                .collect();
        let mut point = Point::new();
        point.set("tileI", ParamValue::Int(8));
        point.set("tileI_2", ParamValue::Int(64));
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        let err = interp.run_codereg("r").unwrap_err();
        assert!(matches!(err, LocusError::InvalidPoint(_)), "{err}");
    }

    #[test]
    fn optional_statement_respects_point() {
        let src = "CodeReg r { *A.Maybe(); A.Always(); }";
        let program = parse(src).unwrap();
        let ids: HashMap<usize, String> = vec![(0, "opt".to_string())].into_iter().collect();
        let mut point = Point::new();
        point.set("opt", ParamValue::Choice(0));
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg("r").unwrap();
        assert_eq!(host.calls, vec!["A.Always()"]);

        point.set("opt", ParamValue::Choice(1));
        let mut host2 = RecordingHost::default();
        let mut interp2 = Interp::new(&program, &mut host2, &point, &ids);
        interp2.run_codereg("r").unwrap();
        assert_eq!(host2.calls, vec!["A.Maybe()", "A.Always()"]);
    }

    #[test]
    fn kripke_control_flow_selects_layout() {
        let src = r#"
        datalayout = enum("DZG", "DGZ", "GDZ");
        CodeReg Scattering {
            if (datalayout == "DGZ") {
                looporder = [0, 1, 2, 3, 4];
            } elif (datalayout == "GDZ") {
                looporder = [1, 2, 0, 3, 4];
            } else {
                looporder = [0, 3, 4, 1, 2];
            }
            sourcepath = "scatter_" + datalayout + ".txt";
            BuiltIn.Altdesc(stmt="0.0.0.0.0.3", source=sourcepath);
            RoseLocus.Interchange(order=looporder);
        }
        "#;
        let program = parse(src).unwrap();
        let ids: HashMap<usize, String> = vec![(0, "datalayout".to_string())].into_iter().collect();
        let mut point = Point::new();
        point.set("datalayout", ParamValue::Choice(1)); // "DGZ"
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg("Scattering").unwrap();
        assert_eq!(
            host.calls,
            vec![
                "BuiltIn.Altdesc(stmt=0.0.0.0.0.3, source=scatter_DGZ.txt)",
                "RoseLocus.Interchange(order=[0, 1, 2, 3, 4])"
            ]
        );
    }

    #[test]
    fn queries_feed_control_flow() {
        let src = r#"
        CodeReg scop {
            perfect = BuiltIn.IsPerfectLoopNest();
            depth = BuiltIn.LoopNestDepth();
            if (perfect && depth > 1) {
                RoseLocus.Interchange(order=[1, 0]);
            }
        }
        "#;
        let program = parse(src).unwrap();
        let mut host = RecordingHost::default();
        host.responses
            .insert("BuiltIn.IsPerfectLoopNest".into(), Value::from(true));
        host.responses
            .insert("BuiltIn.LoopNestDepth".into(), Value::Int(2));
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg("scop").unwrap();
        assert_eq!(host.calls.len(), 3);
        assert!(host.calls[2].starts_with("RoseLocus.Interchange"));
    }

    #[test]
    fn search_block_collects_config() {
        let src = r#"
        Search {
            buildcmd = "make clean; make";
            runcmd = "./matmul";
        }
        CodeReg r { A.X(); }
        "#;
        let program = parse(src).unwrap();
        let mut host = RecordingHost::default();
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_search_block().unwrap();
        let out = interp.into_output();
        assert_eq!(
            out.search_config.get("buildcmd"),
            Some(&Value::Str("make clean; make".into()))
        );
        assert_eq!(
            out.search_config.get("runcmd"),
            Some(&Value::Str("./matmul".into()))
        );
    }

    #[test]
    fn def_methods_cannot_call_modules() {
        let src = r#"
        def bad() {
            RoseLocus.Unroll(factor=2);
        }
        CodeReg r { bad(); }
        "#;
        let program = parse(src).unwrap();
        let mut host = RecordingHost::default();
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        let err = interp.run_codereg("r").unwrap_err();
        assert!(matches!(err, LocusError::ModuleCallInDef(_)));
    }

    #[test]
    fn permutation_construct_reorders_list() {
        let src = "CodeReg r { order = permutation(seq(0, 3)); A.I(order=order); }";
        let program = parse(src).unwrap();
        let ids: HashMap<usize, String> = vec![(0, "order".to_string())].into_iter().collect();
        let mut point = Point::new();
        point.set("order", ParamValue::Perm(vec![2, 0, 1]));
        let mut host = RecordingHost::default();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg("r").unwrap();
        assert_eq!(host.calls, vec!["A.I(order=[2, 0, 1])"]);
    }

    #[test]
    fn loops_and_arithmetic_work() {
        let src = r#"
        CodeReg r {
            total = 0;
            for (i = 0; i < 5; i = i + 1) {
                total = total + i;
            }
            s = 2 ** 5;
            A.Done(sum=total, pow=s, mod=7 % 3);
        }
        "#;
        let (host, _) = run_default(src, "r");
        assert_eq!(host.calls, vec!["A.Done(sum=10, pow=32, mod=1)"]);
    }

    #[test]
    fn while_loop_with_fuel_guard() {
        let src = "CodeReg r { while 1 { x = 1; } }";
        let program = parse(src).unwrap();
        let mut host = RecordingHost::default();
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        assert_eq!(interp.run_codereg("r").unwrap_err(), LocusError::Fuel);
    }

    #[test]
    fn unknown_region_is_reported() {
        let program = parse("CodeReg r { A.X(); }").unwrap();
        let mut host = RecordingHost::default();
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        assert!(matches!(
            interp.run_codereg("nope"),
            Err(LocusError::UnknownRegion(_))
        ));
    }

    #[test]
    fn extern_functions_dispatch_to_the_host() {
        let src = r#"
        extern mytool;
        CodeReg r {
            mytool(level=2);
        }
        "#;
        let program = parse(src).unwrap();
        let mut host = RecordingHost::default();
        let point = Point::new();
        let ids = HashMap::new();
        let mut interp = Interp::new(&program, &mut host, &point, &ids);
        interp.run_codereg("r").unwrap();
        assert_eq!(host.calls, vec!["extern.mytool(level=2)"]);
    }

    #[test]
    fn dicts_lists_and_indexing() {
        let src = r#"
        CodeReg r {
            d = dict(a=1, b=2);
            l = [10, 20, 30];
            l[1] = d.a + d["b"];
            A.X(v=l[1], last=l[-1]);
        }
        "#;
        let (host, _) = run_default(src, "r");
        assert_eq!(host.calls, vec!["A.X(v=3, last=30)"]);
    }
}
