//! Lexer for the Locus optimization language.

use std::error::Error;
use std::fmt;

/// Locus tokens.
///
/// Punctuation and operator variants are named after their spelling
/// (see the `Display` impl) and are intentionally left without
/// per-variant docs.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    DotDot,
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Eq,
    AndAnd,
    OrOr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::StarStar => write!(f, "**"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::Eq => write!(f, "="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocusLexError {
    /// 1-based source line of the offending character.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LocusLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Locus lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LocusLexError {}

/// Tokenizes Locus source. `#` and `//` start line comments.
///
/// # Errors
///
/// Returns [`LocusLexError`] on unterminated strings or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LocusLexError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    let err = |line: u32, message: String| LocusLexError { line, message };

    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'"' => {
                pos += 1;
                let mut text = String::new();
                loop {
                    match bytes.get(pos) {
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = bytes
                                .get(pos + 1)
                                .ok_or_else(|| err(line, "unterminated escape".into()))?;
                            text.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                other => *other as char,
                            });
                            pos += 2;
                        }
                        Some(b'\n') | None => {
                            return Err(err(line, "unterminated string".into()));
                        }
                        Some(other) => {
                            text.push(*other as char);
                            pos += 1;
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(text),
                    line,
                });
            }
            b'0'..=b'9' => {
                let start = pos;
                let mut is_float = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'0'..=b'9' => pos += 1,
                        // `1..5` must lex as Int DotDot Int.
                        b'.' if bytes.get(pos + 1) == Some(&b'.') => break,
                        b'.' => {
                            is_float = true;
                            pos += 1;
                        }
                        b'e' | b'E' if is_float => {
                            pos += 1;
                            if matches!(bytes.get(pos), Some(b'+') | Some(b'-')) {
                                pos += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("digits are UTF-8");
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("bad float `{text}`")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| err(line, format!("bad integer `{text}`")))?,
                    )
                };
                out.push(SpannedTok { tok, line });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let text = std::str::from_utf8(&bytes[start..pos]).expect("ident is UTF-8");
                out.push(SpannedTok {
                    tok: Tok::Ident(text.to_string()),
                    line,
                });
            }
            _ => {
                let two = |a: u8, b: u8| c == a && bytes.get(pos + 1) == Some(&b);
                let (tok, width) = if two(b'.', b'.') {
                    (Tok::DotDot, 2)
                } else if two(b'*', b'*') {
                    (Tok::StarStar, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'&', b'&') {
                    (Tok::AndAnd, 2)
                } else if two(b'|', b'|') {
                    (Tok::OrOr, 2)
                } else {
                    let tok = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b'.' => Tok::Dot,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'=' => Tok::Eq,
                        other => {
                            return Err(err(
                                line,
                                format!("unexpected character `{}`", other as char),
                            ));
                        }
                    };
                    (tok, 1)
                };
                out.push(SpannedTok { tok, line });
                pos += width;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_range_without_eating_floats() {
        assert_eq!(toks("2..32"), vec![Tok::Int(2), Tok::DotDot, Tok::Int(32)]);
        assert_eq!(toks("2.5"), vec![Tok::Float(2.5)]);
        assert_eq!(
            toks("2..tileI"),
            vec![Tok::Int(2), Tok::DotDot, Tok::Ident("tileI".into())]
        );
    }

    #[test]
    fn lexes_module_calls() {
        assert_eq!(
            toks("RoseLocus.Tiling(loop=\"0\", factor=[4,4]);"),
            vec![
                Tok::Ident("RoseLocus".into()),
                Tok::Dot,
                Tok::Ident("Tiling".into()),
                Tok::LParen,
                Tok::Ident("loop".into()),
                Tok::Eq,
                Tok::Str("0".into()),
                Tok::Comma,
                Tok::Ident("factor".into()),
                Tok::Eq,
                Tok::LBracket,
                Tok::Int(4),
                Tok::Comma,
                Tok::Int(4),
                Tok::RBracket,
                Tok::RParen,
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn hash_comments_are_skipped() {
        assert_eq!(
            toks("x = 1; # No tiling.\ny"),
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Semi,
                Tok::Ident("y".into())
            ]
        );
    }

    #[test]
    fn power_and_comparison_operators() {
        assert_eq!(
            toks("a ** 2 <= b != c && d || e"),
            vec![
                Tok::Ident("a".into()),
                Tok::StarStar,
                Tok::Int(2),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::AndAnd,
                Tok::Ident("d".into()),
                Tok::OrOr,
                Tok::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn string_concatenation_source() {
        assert_eq!(
            toks(r#""scatter_" + datalayout + ".txt""#),
            vec![
                Tok::Str("scatter_".into()),
                Tok::Plus,
                Tok::Ident("datalayout".into()),
                Tok::Plus,
                Tok::Str(".txt".into()),
            ]
        );
    }

    #[test]
    fn reports_errors_with_lines() {
        let e = lex("x\n$").unwrap_err();
        assert_eq!(e.line, 2);
        let e = lex("\"abc").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
