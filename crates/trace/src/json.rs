//! Hand-rolled exporters and parser for trace events (the workspace
//! has no serde).
//!
//! The JSONL format is one flat object per line:
//!
//! ```text
//! {"cat":"phase","name":"prepare","ts_us":12,"dur_us":34,"lane":0,"args":{"regions":1}}
//! ```
//!
//! `dur_us` is omitted for instant events. [`from_jsonl`] inverts
//! [`to_jsonl`] exactly (asserted by the round-trip tests); the Chrome
//! `trace_event` exporter is write-only.

use std::error::Error;
use std::fmt;

use crate::{Event, Value};

/// Error produced while parsing a JSONL trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for TraceParseError {}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_value(out: &mut String, value: &Value) {
    match value {
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::U64(v) => {
            out.push_str(&v.to_string());
        }
        Value::I64(v) => {
            out.push_str(&format!("{v}"));
        }
        Value::F64(v) if v.is_finite() => {
            // `{:?}` is Rust's shortest round-trip float form and always
            // contains a `.` or exponent, so the parser can tell it from
            // an integer.
            out.push_str(&format!("{v:?}"));
        }
        Value::F64(v) => {
            // Non-finite floats are not valid JSON numbers; export them
            // as strings.
            let s = if v.is_nan() {
                "nan"
            } else if *v > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            out.push('"');
            out.push_str(s);
            out.push('"');
        }
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

fn push_args(out: &mut String, args: &[(String, Value)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, key);
        out.push_str("\":");
        push_value(out, value);
    }
    out.push('}');
}

/// Renders events as JSONL, one event per line.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str("{\"cat\":\"");
        escape_into(&mut out, &event.cat);
        out.push_str("\",\"name\":\"");
        escape_into(&mut out, &event.name);
        out.push_str(&format!("\",\"ts_us\":{}", event.ts_us));
        if let Some(dur) = event.dur_us {
            out.push_str(&format!(",\"dur_us\":{dur}"));
        }
        out.push_str(&format!(",\"lane\":{},\"args\":", event.lane));
        push_args(&mut out, &event.args);
        out.push_str("}\n");
    }
    out
}

/// Renders events as a Chrome `trace_event` JSON array —
/// `chrome://tracing` and Perfetto load the output directly. Spans
/// become `"X"` (complete) events, instants become `"i"` events.
pub fn to_chrome(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_into(&mut out, &event.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, &event.cat);
        out.push('"');
        match event.dur_us {
            Some(dur) => out.push_str(&format!(",\"ph\":\"X\",\"dur\":{dur}")),
            None => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        out.push_str(&format!(
            ",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":",
            event.ts_us, event.lane
        ));
        push_args(&mut out, &event.args);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Parses a JSONL trace back into events, skipping blank lines.
///
/// # Errors
///
/// Returns [`TraceParseError`] on the first malformed line.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, TraceParseError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event = parse_event(line).map_err(|message| TraceParseError {
            line: idx + 1,
            message,
        })?;
        events.push(event);
    }
    Ok(events)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Cursor<'a> {
        Cursor {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}`, found {:?}",
                want as char,
                other.map(|b| b as char)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Re-read the full UTF-8 character starting here.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("empty char")?;
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn number_token(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err("expected a number".to_string());
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid utf-8".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => {
                self.expect_word("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_word("false")?;
                Ok(Value::Bool(false))
            }
            Some(_) => {
                let token = self.number_token()?;
                if token.contains(['.', 'e', 'E']) {
                    token
                        .parse::<f64>()
                        .map(Value::F64)
                        .map_err(|_| format!("malformed float `{token}`"))
                } else if let Some(stripped) = token.strip_prefix('-') {
                    stripped
                        .parse::<u64>()
                        .map(|v| Value::I64(-(v as i64)))
                        .map_err(|_| format!("malformed integer `{token}`"))
                } else {
                    token
                        .parse::<u64>()
                        .map(Value::U64)
                        .map_err(|_| format!("malformed integer `{token}`"))
                }
            }
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}`"))
        }
    }
}

fn parse_event(line: &str) -> Result<Event, String> {
    let mut c = Cursor::new(line);
    c.eat(b'{')?;
    let mut cat = None;
    let mut name = None;
    let mut ts_us = None;
    let mut dur_us = None;
    let mut lane = None;
    let mut args = Vec::new();
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "cat" => cat = Some(c.string()?),
            "name" => name = Some(c.string()?),
            "ts_us" => ts_us = Some(expect_u64(c.value()?, "ts_us")?),
            "dur_us" => dur_us = Some(expect_u64(c.value()?, "dur_us")?),
            "lane" => lane = Some(expect_u64(c.value()?, "lane")?),
            "args" => {
                c.eat(b'{')?;
                if c.peek() == Some(b'}') {
                    c.eat(b'}')?;
                } else {
                    loop {
                        let akey = c.string()?;
                        c.eat(b':')?;
                        let avalue = c.value()?;
                        args.push((akey, avalue));
                        if c.peek() == Some(b',') {
                            c.eat(b',')?;
                        } else {
                            break;
                        }
                    }
                    c.eat(b'}')?;
                }
            }
            other => return Err(format!("unknown field `{other}`")),
        }
        if c.peek() == Some(b',') {
            c.eat(b',')?;
        } else {
            break;
        }
    }
    c.eat(b'}')?;
    Ok(Event {
        cat: cat.ok_or("missing `cat`")?,
        name: name.ok_or("missing `name`")?,
        ts_us: ts_us.ok_or("missing `ts_us`")?,
        dur_us,
        lane: lane.ok_or("missing `lane`")?,
        args,
    })
}

fn expect_u64(value: Value, field: &str) -> Result<u64, String> {
    match value {
        Value::U64(v) => Ok(v),
        other => Err(format!(
            "field `{field}` must be an unsigned integer, got {other:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                cat: "phase".to_string(),
                name: "prepare".to_string(),
                ts_us: 10,
                dur_us: Some(25),
                lane: 0,
                args: vec![kv("regions", 2u64), kv("ok", true)],
            },
            Event {
                cat: "eval".to_string(),
                name: "point".to_string(),
                ts_us: 40,
                dur_us: None,
                lane: 3,
                args: vec![
                    kv("point", "tileI=8;tileJ=16"),
                    kv("ms", 1.5),
                    kv("delta", -2i64),
                    kv("weird", "a\"b\\c\nd"),
                ],
            },
        ]
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn float_values_round_trip_bit_exactly() {
        let cases = [0.1, 1.0, 3.5e-9, 1e300, -0.0, 123456.789];
        for v in cases {
            let events = vec![Event {
                cat: "t".into(),
                name: "t".into(),
                ts_us: 0,
                dur_us: None,
                lane: 0,
                args: vec![kv("v", v)],
            }];
            let parsed = from_jsonl(&to_jsonl(&events)).unwrap();
            match &parsed[0].args[0].1 {
                Value::F64(back) => assert_eq!(back.to_bits(), v.to_bits(), "{v}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_export_as_strings() {
        let events = vec![Event {
            cat: "t".into(),
            name: "t".into(),
            ts_us: 0,
            dur_us: None,
            lane: 0,
            args: vec![
                kv("a", f64::NAN),
                kv("b", f64::INFINITY),
                kv("c", f64::NEG_INFINITY),
            ],
        }];
        let parsed = from_jsonl(&to_jsonl(&events)).unwrap();
        assert_eq!(parsed[0].args[0].1, Value::Str("nan".into()));
        assert_eq!(parsed[0].args[1].1, Value::Str("inf".into()));
        assert_eq!(parsed[0].args[2].1, Value::Str("-inf".into()));
    }

    #[test]
    fn chrome_export_has_complete_and_instant_phases() {
        let text = to_chrome(&sample());
        assert!(text.starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"tid\":3"));
        assert!(text.contains("\"dur\":25"));
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let err = from_jsonl(
            "{\"cat\":\"a\",\"name\":\"b\",\"ts_us\":1,\"lane\":0,\"args\":{}}\nnot json\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!("\n{}\n\n", to_jsonl(&sample()).trim_end());
        assert_eq!(from_jsonl(&text).unwrap().len(), 2);
    }
}
