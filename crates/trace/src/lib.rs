//! Zero-dependency structured tracing for the Locus tuning pipeline.
//!
//! A [`Tracer`] is a cheap handle that is either *disabled* (the
//! default — every operation is a no-op on an `Option` that is `None`,
//! so instrumentation can stay compiled in everywhere) or *enabled*,
//! in which case it records [`Event`]s — completed spans with a
//! duration, and zero-duration instant events — against a shared
//! monotonic epoch.
//!
//! The handle is `Clone + Send + Sync`: worker threads receive
//! [`Tracer::scoped`] children that share the epoch but buffer their
//! own events, and the driver merges those buffers back in a
//! deterministic order (evaluation-slot order, not completion order)
//! via [`Tracer::drain`] / [`Tracer::absorb`]. Timestamps naturally
//! vary run to run; the *sequence* of merged events does not.
//!
//! Two exporters are provided: line-oriented JSONL ([`to_jsonl`], the
//! format `locus-report` replays via [`from_jsonl`]) and the Chrome
//! `trace_event` JSON array ([`to_chrome`]) that `chrome://tracing`
//! and Perfetto load directly.
//!
//! # Example
//!
//! ```
//! use locus_trace::{kv, Tracer};
//!
//! let tracer = Tracer::enabled();
//! {
//!     let mut span = tracer.span("phase", "prepare");
//!     span.arg("regions", 1u64);
//! }
//! tracer.instant("eval", "point", || vec![kv("ms", 1.5)]);
//! let events = tracer.events();
//! assert_eq!(events.len(), 2);
//! let parsed = locus_trace::from_jsonl(&locus_trace::to_jsonl(&events)).unwrap();
//! assert_eq!(parsed, events);
//! ```

#![warn(missing_docs)]

mod json;

pub use json::{from_jsonl, to_chrome, to_jsonl, TraceParseError};

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string field (point keys, origins, recipes, reasons).
    Str(String),
    /// An unsigned integer field (counters, digests, indices).
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field (milliseconds, temperatures). Non-finite values
    /// are exported as quoted strings (`"inf"`, `"-inf"`, `"nan"`)
    /// and therefore parse back as [`Value::Str`].
    F64(f64),
    /// A boolean field.
    Bool(bool),
}

impl Value {
    /// The string payload, when this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer ([`Value::U64`], or a
    /// non-negative [`Value::I64`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (floats and both integer variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, when this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Builds one `(key, value)` argument pair; sugar for event argument
/// lists.
pub fn kv(key: &str, value: impl Into<Value>) -> (String, Value) {
    (key.to_string(), value.into())
}

/// Stamps every event with a `(key, value)` argument, inserted at the
/// front of the argument list so it renders first. Existing arguments
/// under the same key are replaced, not duplicated — re-tagging is
/// idempotent. The `locusd` daemon uses this to tag each request's
/// drained events with the request id before appending them to the
/// shared trace log, so `locus-report --request <id>` can replay any
/// single request.
pub fn tag_events(events: Vec<Event>, key: &str, value: impl Into<Value>) -> Vec<Event> {
    let value = value.into();
    events
        .into_iter()
        .map(|mut event| {
            event.args.retain(|(k, _)| k != key);
            event.args.insert(0, (key.to_string(), value.clone()));
            event
        })
        .collect()
}

/// One recorded trace event: a completed span (`dur_us` is `Some`) or
/// an instant marker (`dur_us` is `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Coarse category: `phase`, `eval`, `search`, `machine`, `store`.
    pub cat: String,
    /// Event name within the category.
    pub name: String,
    /// Start time in microseconds since the tracer's epoch.
    pub ts_us: u64,
    /// Span duration in microseconds; `None` for instant events.
    pub dur_us: Option<u64>,
    /// Logical lane (Chrome `tid`): 0 is the driver, per-evaluation
    /// worker lanes are `slot index + 1`.
    pub lane: u64,
    /// Typed key/value arguments.
    pub args: Vec<(String, Value)>,
}

impl Event {
    /// Looks an argument up by key.
    pub fn arg(&self, key: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    lane: u64,
    events: Mutex<Vec<Event>>,
}

impl Inner {
    fn elapsed_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// The tracing handle. See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op. This is the
    /// default, and the reason instrumentation can stay compiled in on
    /// hot paths.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer whose epoch is *now*.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                lane: 0,
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being recorded. Callers guard argument
    /// construction for hot-path events behind this.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A child tracer sharing this tracer's epoch but buffering its own
    /// events under `lane`. Disabled tracers return disabled children.
    /// Workers trace into per-slot children; the driver merges them
    /// back deterministically with [`Tracer::drain`] /
    /// [`Tracer::absorb`].
    pub fn scoped(&self, lane: u64) -> Tracer {
        Tracer {
            inner: self.inner.as_ref().map(|inner| {
                Arc::new(Inner {
                    epoch: inner.epoch,
                    lane,
                    events: Mutex::new(Vec::new()),
                })
            }),
        }
    }

    /// Opens a span; the returned guard records a completed-span event
    /// when dropped. Attach arguments with [`Span::arg`].
    pub fn span(&self, cat: &str, name: &str) -> Span {
        match &self.inner {
            None => Span {
                inner: None,
                cat: String::new(),
                name: String::new(),
                start_us: 0,
                args: Vec::new(),
            },
            Some(inner) => Span {
                start_us: inner.elapsed_us(),
                inner: Some(Arc::clone(inner)),
                cat: cat.to_string(),
                name: name.to_string(),
                args: Vec::new(),
            },
        }
    }

    /// Records an instant event. `args` is a closure so argument
    /// construction (string formatting, allocation) is skipped entirely
    /// when the tracer is disabled.
    pub fn instant(&self, cat: &str, name: &str, args: impl FnOnce() -> Vec<(String, Value)>) {
        let Some(inner) = &self.inner else {
            return;
        };
        let event = Event {
            cat: cat.to_string(),
            name: name.to_string(),
            ts_us: inner.elapsed_us(),
            dur_us: None,
            lane: inner.lane,
            args: args(),
        };
        inner.events.lock().expect("trace buffer").push(event);
    }

    /// Takes every buffered event out of this tracer, leaving it empty.
    pub fn drain(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => std::mem::take(&mut *inner.events.lock().expect("trace buffer")),
        }
    }

    /// Appends previously drained events (e.g. a worker child's buffer)
    /// to this tracer's buffer. The caller controls the merge order —
    /// absorbing in evaluation-slot order is what makes merged traces
    /// deterministic.
    pub fn absorb(&self, events: Vec<Event>) {
        if let Some(inner) = &self.inner {
            inner.events.lock().expect("trace buffer").extend(events);
        }
    }

    /// A snapshot of the buffered events.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.events.lock().expect("trace buffer").clone(),
        }
    }

    /// Renders the buffered events as JSONL (see [`to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events())
    }

    /// Renders the buffered events in Chrome `trace_event` format (see
    /// [`to_chrome`]).
    pub fn to_chrome(&self) -> String {
        to_chrome(&self.events())
    }
}

/// RAII span guard returned by [`Tracer::span`]: records a
/// completed-span event (with the measured duration) when dropped.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    cat: String,
    name: String,
    start_us: u64,
    args: Vec<(String, Value)>,
}

impl Span {
    /// Attaches an argument to the span (no-op when disabled).
    pub fn arg(&mut self, key: &str, value: impl Into<Value>) {
        if self.inner.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end_us = inner.elapsed_us();
        let event = Event {
            cat: std::mem::take(&mut self.cat),
            name: std::mem::take(&mut self.name),
            ts_us: self.start_us,
            dur_us: Some(end_us.saturating_sub(self.start_us)),
            lane: inner.lane,
            args: std::mem::take(&mut self.args),
        };
        inner.events.lock().expect("trace buffer").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        {
            let mut s = t.span("phase", "prepare");
            s.arg("k", 1u64);
        }
        t.instant("eval", "point", || vec![kv("ms", 1.0)]);
        assert!(t.events().is_empty());
        assert!(t.drain().is_empty());
        assert!(!t.scoped(3).is_enabled());
    }

    #[test]
    fn spans_and_instants_are_recorded_in_order() {
        let t = Tracer::enabled();
        {
            let mut s = t.span("phase", "a");
            s.arg("n", 2u64);
        }
        t.instant("eval", "b", || vec![kv("origin", "fresh")]);
        let events = t.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert!(events[0].dur_us.is_some());
        assert_eq!(events[0].args, vec![kv("n", 2u64)]);
        assert_eq!(events[1].name, "b");
        assert!(events[1].dur_us.is_none());
        assert!(events[1].ts_us >= events[0].ts_us);
    }

    #[test]
    fn scoped_children_share_the_epoch_and_merge_deterministically() {
        let t = Tracer::enabled();
        let a = t.scoped(1);
        let b = t.scoped(2);
        b.instant("machine", "late", Vec::new);
        a.instant("machine", "early", Vec::new);
        // Merge in slot order regardless of recording order.
        t.absorb(a.drain());
        t.absorb(b.drain());
        let events = t.events();
        assert_eq!(events[0].name, "early");
        assert_eq!(events[0].lane, 1);
        assert_eq!(events[1].name, "late");
        assert_eq!(events[1].lane, 2);
    }

    #[test]
    fn drain_empties_the_buffer() {
        let t = Tracer::enabled();
        t.instant("a", "b", Vec::new);
        assert_eq!(t.drain().len(), 1);
        assert!(t.events().is_empty());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(3u32), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(1.5), Value::F64(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn tag_events_stamps_front_and_replaces_idempotently() {
        let t = Tracer::enabled();
        t.instant("a", "one", || vec![kv("n", 1usize)]);
        t.instant("a", "two", Vec::new);
        let tagged = tag_events(t.drain(), "req", "r-7");
        assert_eq!(tagged.len(), 2);
        for event in &tagged {
            assert_eq!(event.args[0], ("req".into(), Value::Str("r-7".into())));
        }
        // The original arguments survive behind the tag.
        assert_eq!(tagged[0].arg("n"), Some(&Value::U64(1)));
        // Re-tagging replaces rather than duplicates.
        let retagged = tag_events(tagged, "req", "r-8");
        assert_eq!(retagged[0].arg("req"), Some(&Value::Str("r-8".into())));
        assert_eq!(
            retagged[0].args.iter().filter(|(k, _)| k == "req").count(),
            1
        );
    }
}
