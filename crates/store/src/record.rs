//! On-disk record types and the line codec.
//!
//! Every line of a store file is either the versioned header
//! (`#locus-store v1`) or one flat JSON object. Three record kinds
//! exist:
//!
//! * `eval` — one evaluated point: canonical point key, variant digest,
//!   objective, a measurement summary, the search module that proposed
//!   it and the wall-clock the measurement took;
//! * `prune` — one point the static safety verifier refused before any
//!   evaluation (a data race or an illegal transformation), with the
//!   refusal reason; a warm session replays the refusal from disk
//!   instead of re-running the analysis;
//! * `session` — one finished tuning session: the region's structural
//!   profile, the best point, and the *direct* (search-free) Locus
//!   recipe it denotes, which `suggest_program` retrieves for similar
//!   regions.
//!
//! Objectives are persisted as exact `f64` bit patterns (hex) next to a
//! human-readable decimal: warm-started sessions must replay *bit
//! identical* values, or cross-session determinism of the search
//! trajectory would silently break. The codec is hand-rolled (the
//! workspace has no serde) and tolerant: unknown keys are ignored and
//! unknown kinds are skipped, so the format can grow.

use locus_search::Objective;

/// Version tag written as the first line of every store file.
pub const HEADER: &str = "#locus-store v1";

/// Structural profile of a code region, the retrieval key of `session`
/// records. Mirrors the analysis-derived `RegionProfile` of the core
/// crate without depending on it (the core crate depends on this one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionShape {
    /// Loop nest depth.
    pub depth: usize,
    /// Whether the nest is perfect.
    pub perfect: bool,
    /// Whether dependence analysis succeeded.
    pub deps_available: bool,
    /// Number of innermost loops.
    pub inner_loops: usize,
    /// Whether every innermost loop is provably vectorizable.
    pub vectorizable: bool,
}

impl RegionShape {
    /// Structural distance between two regions, used for
    /// nearest-neighbor recipe retrieval. Depth and dependence
    /// availability dominate — a recipe for a deep affine nest is
    /// useless on a flat non-affine one — while vectorizability is a
    /// tie-breaker.
    pub fn distance(&self, other: &RegionShape) -> u32 {
        (self.depth.abs_diff(other.depth) as u32) * 2
            + u32::from(self.perfect != other.perfect) * 2
            + u32::from(self.deps_available != other.deps_available) * 3
            + self.inner_loops.abs_diff(other.inner_loops) as u32
            + u32::from(self.vectorizable != other.vectorizable)
    }
}

/// One evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// `Point::canonical_key` of the evaluated point.
    pub point_key: String,
    /// FNV-1a digest of the direct program the point denotes.
    pub variant: u64,
    /// The evaluation outcome (value = simulated milliseconds).
    pub objective: Objective,
    /// Simulated cycles of the measurement (0 for invalid/error).
    pub cycles: f64,
    /// Interpreted operations.
    pub ops: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Result checksum (semantic-equivalence witness).
    pub checksum: u64,
    /// Name of the search module that proposed the point.
    pub search: String,
    /// Wall-clock milliseconds the measurement took.
    pub wall_ms: f64,
}

/// One statically pruned point: the verifier refused it before any
/// evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneRecord {
    /// `Point::canonical_key` of the refused point.
    pub point_key: String,
    /// FNV-1a digest of the direct program the point denotes.
    pub variant: u64,
    /// Why the verifier refused (race report or legality verdict).
    pub reason: String,
    /// `"exact"` when the refusal was decided by the polyhedral
    /// dependence engine, `"conservative"` otherwise. Lines written
    /// before this field existed decode as `"conservative"`.
    pub provenance: String,
    /// Name of the search module that proposed the point.
    pub search: String,
}

/// One finished tuning session's summary: what region was tuned, what
/// recipe won.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Region id the session tuned.
    pub region: String,
    /// Structural profile of the region at tuning time.
    pub shape: RegionShape,
    /// `Point::canonical_key` of the winning point.
    pub best_point: String,
    /// Objective of the winning point (simulated milliseconds).
    pub best_ms: f64,
    /// The direct (search-free) Locus program of the winning point.
    pub recipe: String,
    /// Name of the search module that found it.
    pub search: String,
}

/// A parsed store line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An `eval` line, with the group key it belongs to.
    Eval {
        /// Group key of the record.
        key: crate::StoreKey,
        /// The record itself.
        record: EvalRecord,
    },
    /// A `prune` line, with the group key it belongs to.
    Prune {
        /// Group key of the record.
        key: crate::StoreKey,
        /// The record itself.
        record: PruneRecord,
    },
    /// A `session` line, with the group key it belongs to.
    Session {
        /// Group key of the record.
        key: crate::StoreKey,
        /// The record itself.
        record: SessionRecord,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    escape(value, out);
    out.push(',');
}

fn push_raw_field(out: &mut String, key: &str, value: impl std::fmt::Display) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

fn push_bits_field(out: &mut String, key: &str, value: f64) {
    // Exact bit pattern first, approximate decimal for human readers.
    push_str_field(out, key, &format!("{:016x}", value.to_bits()));
    push_raw_field(out, &format!("{key}_dec"), format!("{value:.6}"));
}

fn key_fields(out: &mut String, key: &crate::StoreKey) {
    let mut regions = String::new();
    for (id, hash) in &key.regions {
        regions.push_str(id);
        regions.push(':');
        regions.push_str(&format!("{hash:016x}"));
        regions.push(',');
    }
    push_str_field(out, "regions", &regions);
    push_str_field(out, "machine", &format!("{:016x}", key.machine));
    push_str_field(out, "space", &format!("{:016x}", key.space));
}

/// Encodes an `eval` line (no trailing newline).
pub fn encode_eval(key: &crate::StoreKey, r: &EvalRecord) -> String {
    let mut out = String::from("{");
    push_str_field(&mut out, "kind", "eval");
    key_fields(&mut out, key);
    push_str_field(&mut out, "point", &r.point_key);
    push_str_field(&mut out, "variant", &format!("{:016x}", r.variant));
    let (tag, ms) = match r.objective {
        Objective::Value(v) => ("V", v),
        Objective::Invalid => ("I", 0.0),
        Objective::Error => ("E", 0.0),
    };
    push_str_field(&mut out, "obj", tag);
    push_bits_field(&mut out, "ms", ms);
    push_bits_field(&mut out, "cycles", r.cycles);
    push_raw_field(&mut out, "ops", r.ops);
    push_raw_field(&mut out, "flops", r.flops);
    push_str_field(&mut out, "checksum", &format!("{:016x}", r.checksum));
    push_str_field(&mut out, "search", &r.search);
    push_raw_field(&mut out, "wall_ms", format!("{:.6}", r.wall_ms));
    finish(out)
}

/// Encodes a `prune` line (no trailing newline).
pub fn encode_prune(key: &crate::StoreKey, r: &PruneRecord) -> String {
    let mut out = String::from("{");
    push_str_field(&mut out, "kind", "prune");
    key_fields(&mut out, key);
    push_str_field(&mut out, "point", &r.point_key);
    push_str_field(&mut out, "variant", &format!("{:016x}", r.variant));
    push_str_field(&mut out, "reason", &r.reason);
    push_str_field(&mut out, "provenance", &r.provenance);
    push_str_field(&mut out, "search", &r.search);
    finish(out)
}

/// Encodes a `session` line (no trailing newline).
pub fn encode_session(key: &crate::StoreKey, r: &SessionRecord) -> String {
    let mut out = String::from("{");
    push_str_field(&mut out, "kind", "session");
    key_fields(&mut out, key);
    push_str_field(&mut out, "region", &r.region);
    push_raw_field(&mut out, "depth", r.shape.depth);
    push_raw_field(&mut out, "perfect", r.shape.perfect);
    push_raw_field(&mut out, "deps", r.shape.deps_available);
    push_raw_field(&mut out, "inner", r.shape.inner_loops);
    push_raw_field(&mut out, "vec", r.shape.vectorizable);
    push_str_field(&mut out, "best_point", &r.best_point);
    push_bits_field(&mut out, "best_ms", r.best_ms);
    push_str_field(&mut out, "recipe", &r.recipe);
    push_str_field(&mut out, "search", &r.search);
    finish(out)
}

fn finish(mut out: String) -> String {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Parses a flat JSON object into key/value pairs. String values are
/// unescaped; everything else (numbers, booleans) is kept verbatim.
fn parse_object(line: &str) -> Option<Vec<(String, String)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek()? {
            '}' => return Some(fields),
            ',' | ' ' => {
                chars.next();
            }
            '"' => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let value = if chars.peek() == Some(&'"') {
                    parse_string(&mut chars)?
                } else {
                    let mut raw = String::new();
                    while let Some(&c) = chars.peek() {
                        if c == ',' || c == '}' {
                            break;
                        }
                        raw.push(c);
                        chars.next();
                    }
                    raw.trim().to_string()
                };
                fields.push((key, value));
            }
            _ => return None,
        }
    }
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek() == Some(&' ') {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn hex64(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn parse_key(get: &impl Fn(&str) -> Option<String>) -> Option<crate::StoreKey> {
    let mut regions = Vec::new();
    for entry in get("regions")?.split(',') {
        if entry.is_empty() {
            continue;
        }
        let (id, hash) = entry.rsplit_once(':')?;
        regions.push((id.to_string(), hex64(hash)?));
    }
    Some(crate::StoreKey::new(
        regions,
        hex64(&get("machine")?)?,
        hex64(&get("space")?)?,
    ))
}

/// Decodes one store line. Returns `None` for lines this version does
/// not understand (malformed, or a future record kind) — callers skip
/// them so old binaries tolerate newer files.
pub fn decode(line: &str) -> Option<Record> {
    let fields = parse_object(line)?;
    let get = |key: &str| -> Option<String> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let key = parse_key(&get)?;
    match get("kind")?.as_str() {
        "eval" => {
            let objective = match get("obj")?.as_str() {
                "V" => Objective::Value(f64::from_bits(hex64(&get("ms")?)?)),
                "I" => Objective::Invalid,
                "E" => Objective::Error,
                _ => return None,
            };
            Some(Record::Eval {
                key,
                record: EvalRecord {
                    point_key: get("point")?,
                    variant: hex64(&get("variant")?)?,
                    objective,
                    cycles: f64::from_bits(hex64(&get("cycles")?)?),
                    ops: get("ops")?.parse().ok()?,
                    flops: get("flops")?.parse().ok()?,
                    checksum: hex64(&get("checksum")?)?,
                    search: get("search")?,
                    wall_ms: get("wall_ms")?.parse().ok()?,
                },
            })
        }
        "prune" => Some(Record::Prune {
            key,
            record: PruneRecord {
                point_key: get("point")?,
                variant: hex64(&get("variant")?)?,
                reason: get("reason")?,
                provenance: get("provenance").unwrap_or_else(|| "conservative".into()),
                search: get("search")?,
            },
        }),
        "session" => Some(Record::Session {
            key,
            record: SessionRecord {
                region: get("region")?,
                shape: RegionShape {
                    depth: get("depth")?.parse().ok()?,
                    perfect: get("perfect")? == "true",
                    deps_available: get("deps")? == "true",
                    inner_loops: get("inner")?.parse().ok()?,
                    vectorizable: get("vec")? == "true",
                },
                best_point: get("best_point")?,
                best_ms: f64::from_bits(hex64(&get("best_ms")?)?),
                recipe: get("recipe")?,
                search: get("search")?,
            },
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> crate::StoreKey {
        crate::StoreKey::new(vec![("matmul".into(), 0xabcd)], 0x1111, 0x2222)
    }

    #[test]
    fn eval_round_trips_bit_exactly() {
        let r = EvalRecord {
            point_key: "tileI=i32;or:omp=c1;".into(),
            variant: 0xdead_beef_cafe_f00d,
            objective: Objective::Value(0.1 + 0.2), // a value with ugly bits
            cycles: 1234.5678,
            ops: 99,
            flops: 42,
            checksum: 0x0123_4567_89ab_cdef,
            search: "bandit (opentuner-like)".into(),
            wall_ms: 0.25,
        };
        let line = encode_eval(&key(), &r);
        let Some(Record::Eval { key: k, record }) = decode(&line) else {
            panic!("decodes: {line}");
        };
        assert_eq!(k, key());
        assert_eq!(record, r);
        // Bit-exactness is the contract, not approximate equality.
        let (Objective::Value(a), Objective::Value(b)) = (record.objective, r.objective) else {
            panic!();
        };
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn invalid_and_error_outcomes_round_trip() {
        for objective in [Objective::Invalid, Objective::Error] {
            let r = EvalRecord {
                point_key: "x=i1;".into(),
                variant: 7,
                objective,
                cycles: 0.0,
                ops: 0,
                flops: 0,
                checksum: 0,
                search: "exhaustive".into(),
                wall_ms: 0.0,
            };
            let Some(Record::Eval { record, .. }) = decode(&encode_eval(&key(), &r)) else {
                panic!("decodes");
            };
            assert_eq!(record.objective, objective);
        }
    }

    #[test]
    fn prune_round_trips_with_reason() {
        let r = PruneRecord {
            point_key: "or:omp=c1;".into(),
            variant: 0x1234_5678_9abc_def0,
            reason: "data race: write C[i][j] / write C[i][j] carried at level 0 (direction *)"
                .into(),
            provenance: "exact".into(),
            search: "exhaustive".into(),
        };
        let line = encode_prune(&key(), &r);
        assert!(!line.contains('\n'), "one record per line: {line}");
        let Some(Record::Prune { key: k, record }) = decode(&line) else {
            panic!("decodes: {line}");
        };
        assert_eq!(k, key());
        assert_eq!(record, r);
    }

    #[test]
    fn prune_lines_without_provenance_decode_as_conservative() {
        let r = PruneRecord {
            point_key: "or:omp=c1;".into(),
            variant: 0x1,
            reason: "dependence".into(),
            provenance: "exact".into(),
            search: "exhaustive".into(),
        };
        let line = encode_prune(&key(), &r)
            .replace(",\"provenance\":\"exact\"", "")
            .replace("\"provenance\":\"exact\",", "");
        assert!(!line.contains("provenance"), "{line}");
        let Some(Record::Prune { record, .. }) = decode(&line) else {
            panic!("decodes: {line}");
        };
        assert_eq!(record.provenance, "conservative");
    }

    #[test]
    fn session_round_trips_with_multiline_recipe() {
        let r = SessionRecord {
            region: "matmul".into(),
            shape: RegionShape {
                depth: 3,
                perfect: true,
                deps_available: true,
                inner_loops: 1,
                vectorizable: false,
            },
            best_point: "tileI=i16;".into(),
            best_ms: 1.5,
            recipe: "CodeReg matmul {\n    RoseLocus.Interchange(order=[0, 2, 1]);\n}\n".into(),
            search: "bandit".into(),
        };
        let line = encode_session(&key(), &r);
        assert!(!line.contains('\n'), "one record per line: {line}");
        let Some(Record::Session { record, .. }) = decode(&line) else {
            panic!("decodes: {line}");
        };
        assert_eq!(record, r);
    }

    #[test]
    fn strings_with_quotes_and_backslashes_survive() {
        let r = SessionRecord {
            region: "r".into(),
            shape: RegionShape {
                depth: 1,
                perfect: false,
                deps_available: false,
                inner_loops: 1,
                vectorizable: false,
            },
            best_point: String::new(),
            best_ms: 0.0,
            recipe: "Pips.Tiling(loop=\"0\", factor=[8]);\\ tab:\there".into(),
            search: "s".into(),
        };
        let Some(Record::Session { record, .. }) = decode(&encode_session(&key(), &r)) else {
            panic!("decodes");
        };
        assert_eq!(record.recipe, r.recipe);
    }

    #[test]
    fn unknown_kinds_and_garbage_are_skipped() {
        assert!(decode("not json at all").is_none());
        assert!(decode("{\"kind\":\"eval\"}").is_none(), "missing fields");
        let mut line = encode_eval(
            &key(),
            &EvalRecord {
                point_key: "x=i1;".into(),
                variant: 1,
                objective: Objective::Value(1.0),
                cycles: 0.0,
                ops: 0,
                flops: 0,
                checksum: 0,
                search: "s".into(),
                wall_ms: 0.0,
            },
        );
        line = line.replace("\"kind\":\"eval\"", "\"kind\":\"v2-hologram\"");
        assert!(decode(&line).is_none(), "future kinds skip, not crash");
    }

    #[test]
    fn shape_distance_prefers_structurally_similar_regions() {
        let deep = RegionShape {
            depth: 3,
            perfect: true,
            deps_available: true,
            inner_loops: 1,
            vectorizable: true,
        };
        let same = deep;
        let shallow = RegionShape {
            depth: 1,
            perfect: true,
            deps_available: true,
            inner_loops: 1,
            vectorizable: true,
        };
        let nonaffine = RegionShape {
            depth: 3,
            perfect: true,
            deps_available: false,
            inner_loops: 1,
            vectorizable: false,
        };
        assert_eq!(deep.distance(&same), 0);
        assert!(deep.distance(&shallow) > 0);
        assert!(deep.distance(&nonaffine) > deep.distance(&same));
    }
}
