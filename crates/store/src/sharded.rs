//! A process-wide sharded store: one logical [`TuningStore`] split over
//! N independently locked shard files, so many concurrent tuning
//! sessions — the `locusd` daemon's workload — append and rehydrate
//! without serializing on one lock or one file.
//!
//! Sharding is by *region hash*: a [`StoreKey`]'s region list is hashed
//! (FNV-1a over ids and content hashes) and the key's whole record
//! group lives in exactly one shard. Requests tuning different kernels
//! therefore touch different shard files and different stripe locks,
//! while every record of one tuning context stays together — the
//! rehydrate / warm-start / append cycle of a session needs only its
//! own stripe.
//!
//! Each stripe is a `Mutex<TuningStore>` and lock acquisition recovers
//! from poisoning: a panicking request (supervised and caught at the
//! session boundary by the daemon) can never wedge the store for
//! sibling requests. That is safe because every store mutation is a
//! whole-record append — the index never holds half-written state
//! across an unwind point.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

use locus_space::Point;

use crate::record::{EvalRecord, PruneRecord, RegionShape, SessionRecord};
use crate::store::{CompactStats, StoreKey, TuningStore};

/// Default shard count of a daemon store.
pub const DEFAULT_SHARDS: usize = 8;

/// A sharded, lock-striped collection of [`TuningStore`] files living
/// in one directory (`shard-00.jsonl`, `shard-01.jsonl`, ...). All
/// methods take `&self`; the per-shard mutexes provide the interior
/// mutability, so one `ShardedStore` is shared by every worker thread
/// of a daemon.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<Mutex<TuningStore>>,
}

/// FNV-1a over the region component of a key. Machine and space digests
/// are deliberately excluded: all records of one *kernel* land in one
/// shard regardless of machine, keeping cross-machine transfer scans
/// local too.
fn region_hash(key: &StoreKey) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (id, hash) in &key.regions {
        eat(id.as_bytes());
        eat(&hash.to_le_bytes());
    }
    h
}

impl ShardedStore {
    /// Opens (creating as needed) a sharded store of `shards` stripes
    /// under directory `dir`. Every shard file is opened with the
    /// advisory writer lock, so two daemons — or a daemon and a stray
    /// CLI session — cannot share one sharded store directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or opening any shard,
    /// including [`io::ErrorKind::WouldBlock`] when another live
    /// process holds a shard's writer lock.
    pub fn open(dir: impl AsRef<Path>, shards: usize) -> io::Result<ShardedStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let shards = shards.max(1);
        let stores = (0..shards)
            .map(|i| TuningStore::open(dir.join(format!("shard-{i:02}.jsonl"))).map(Mutex::new))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(ShardedStore {
            dir,
            shards: stores,
        })
    }

    /// The directory holding the shard files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which stripe a key's records live in.
    pub fn shard_of(&self, key: &StoreKey) -> usize {
        (region_hash(key) % self.shards.len() as u64) as usize
    }

    /// Locks stripe `i`, recovering from poisoning (see module docs).
    fn stripe(&self, i: usize) -> MutexGuard<'_, TuningStore> {
        self.shards[i]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` with the shard holding `key` locked. This is the
    /// primitive everything else delegates to; use it directly for
    /// multi-step read-modify sequences that must be atomic per key.
    pub fn with_shard<R>(&self, key: &StoreKey, f: impl FnOnce(&mut TuningStore) -> R) -> R {
        f(&mut self.stripe(self.shard_of(key)))
    }

    /// Visits every live evaluation record of `key`, under the shard
    /// lock.
    pub fn for_each_eval(&self, key: &StoreKey, mut f: impl FnMut(&EvalRecord)) {
        self.with_shard(key, |store| {
            for record in store.evals(key) {
                f(record);
            }
        });
    }

    /// Visits every live prune record of `key`, under the shard lock.
    pub fn for_each_prune(&self, key: &StoreKey, mut f: impl FnMut(&PruneRecord)) {
        self.with_shard(key, |store| {
            for record in store.prunes(key) {
                f(record);
            }
        });
    }

    /// [`TuningStore::top_k`] of the shard holding `key`.
    pub fn top_k(&self, key: &StoreKey, k: usize) -> Vec<(Point, f64)> {
        self.with_shard(key, |store| store.top_k(key, k))
    }

    /// Appends evaluation records to the shard holding `key`.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying append.
    pub fn append_evals(&self, key: &StoreKey, records: &[EvalRecord]) -> io::Result<usize> {
        self.with_shard(key, |store| store.append_evals(key, records))
    }

    /// Appends prune records to the shard holding `key`.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying append.
    pub fn append_prunes(&self, key: &StoreKey, records: &[PruneRecord]) -> io::Result<usize> {
        self.with_shard(key, |store| store.append_prunes(key, records))
    }

    /// Appends one session summary to the shard holding `key`.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying append.
    pub fn append_session(&self, key: &StoreKey, record: SessionRecord) -> io::Result<()> {
        self.with_shard(key, |store| store.append_session(key, record))
    }

    /// Runs the coherence check on every shard; returns the total
    /// number of evaluation records dropped. Shards are visited one at
    /// a time — no global lock is ever held.
    pub fn invalidate_stale(&self, current: &HashMap<String, u64>) -> usize {
        (0..self.shards.len())
            .map(|i| self.stripe(i).invalidate_stale(current))
            .sum()
    }

    /// The structurally nearest stored session across all shards
    /// (cloned out from under the shard lock). Ties resolve exactly as
    /// in [`TuningStore::nearest_session`], with the lower shard index
    /// winning remaining cross-shard ties, so retrieval is
    /// deterministic for a given store state.
    pub fn nearest_session(
        &self,
        shape: &RegionShape,
        max_distance: u32,
    ) -> Option<(SessionRecord, u32)> {
        let mut best: Option<(SessionRecord, u32)> = None;
        for i in 0..self.shards.len() {
            let store = self.stripe(i);
            if let Some((session, distance)) = store.nearest_session(shape, max_distance) {
                let better = match &best {
                    None => true,
                    Some((cur, cur_d)) => {
                        distance < *cur_d || (distance == *cur_d && session.best_ms < cur.best_ms)
                    }
                };
                if better {
                    best = Some((session.clone(), distance));
                }
            }
        }
        best
    }

    /// Total live evaluation records across every shard.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|i| self.stripe(i).len()).sum()
    }

    /// Whether no shard holds an evaluation record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compacts every shard log ([`TuningStore::compact`]); returns the
    /// aggregated stats.
    ///
    /// # Errors
    ///
    /// The first I/O error any shard's rewrite produces; earlier shards
    /// stay compacted.
    pub fn compact_all(&self) -> io::Result<CompactStats> {
        let mut total = CompactStats::default();
        for i in 0..self.shards.len() {
            let stats = self.stripe(i).compact()?;
            total.bytes_before += stats.bytes_before;
            total.bytes_after += stats.bytes_after;
            total.evals += stats.evals;
            total.prunes += stats.prunes;
            total.sessions += stats.sessions;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_search::Objective;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "locus-sharded-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn eval(point: &str, ms: f64) -> EvalRecord {
        EvalRecord {
            point_key: point.to_string(),
            variant: 0x42,
            objective: Objective::Value(ms),
            cycles: ms * 1000.0,
            ops: 10,
            flops: 5,
            checksum: 0x99,
            search: "test".into(),
            wall_ms: 0.1,
        }
    }

    fn keys_for(names: &[&str]) -> Vec<StoreKey> {
        names
            .iter()
            .map(|n| StoreKey::new(vec![(n.to_string(), 0xaa)], 0x1, 0x5))
            .collect()
    }

    #[test]
    fn records_stay_in_their_shard_across_reopen() {
        let dir = tmp_dir("reopen");
        std::fs::remove_dir_all(&dir).ok();
        let keys = keys_for(&["dgemm", "stencil", "cholesky", "lu"]);
        {
            let store = ShardedStore::open(&dir, 4).unwrap();
            for (i, key) in keys.iter().enumerate() {
                store
                    .append_evals(key, &[eval(&format!("x=i{i};"), i as f64 + 1.0)])
                    .unwrap();
            }
            assert_eq!(store.len(), keys.len());
        }
        let store = ShardedStore::open(&dir, 4).unwrap();
        assert_eq!(store.len(), keys.len());
        for key in &keys {
            let mut seen = 0;
            store.for_each_eval(key, |_| seen += 1);
            assert_eq!(seen, 1, "each key rehydrates from its own shard");
            assert_eq!(store.top_k(key, 4).len(), 1);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_routing_is_stable_and_key_local() {
        let dir = tmp_dir("routing");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardedStore::open(&dir, 8).unwrap();
        // Same regions, different machine/space digests: one shard —
        // cross-machine records of a kernel stay together.
        let a = StoreKey::new(vec![("k".into(), 0x1)], 0x10, 0x20);
        let b = StoreKey::new(vec![("k".into(), 0x1)], 0x30, 0x40);
        assert_eq!(store.shard_of(&a), store.shard_of(&b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_panicking_user_cannot_poison_a_stripe() {
        let dir = tmp_dir("poison");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardedStore::open(&dir, 2).unwrap();
        let key = StoreKey::new(vec![("k".into(), 0x1)], 0x1, 0x1);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            store.with_shard(&key, |_| panic!("poisoned request"));
        }));
        assert!(panicked.is_err());
        // The stripe lock recovered; the store keeps serving.
        store.append_evals(&key, &[eval("x=i1;", 1.0)]).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalidate_and_compact_span_all_shards() {
        let dir = tmp_dir("compact");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardedStore::open(&dir, 4).unwrap();
        let keys = keys_for(&["a", "b", "c", "d", "e", "f"]);
        for key in &keys {
            store.append_evals(key, &[eval("x=i1;", 1.0)]).unwrap();
        }
        // Invalidate half the keys, then compact: dropped records leave
        // the disk logs too.
        let current: HashMap<String, u64> = [("a", 0xbbu64), ("b", 0xbb), ("c", 0xbb)]
            .iter()
            .map(|(n, h)| (n.to_string(), *h))
            .collect();
        assert_eq!(store.invalidate_stale(&current), 3);
        let stats = store.compact_all().unwrap();
        assert_eq!(stats.evals, 3);
        assert!(stats.bytes_after < stats.bytes_before);
        drop(store);
        let store = ShardedStore::open(&dir, 4).unwrap();
        assert_eq!(store.len(), 3, "invalidated records gone after reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_open_of_a_shard_directory_is_refused() {
        let dir = tmp_dir("locked");
        std::fs::remove_dir_all(&dir).ok();
        let store = ShardedStore::open(&dir, 2).unwrap();
        let err = ShardedStore::open(&dir, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(store);
        ShardedStore::open(&dir, 2).expect("reopens after release");
        std::fs::remove_dir_all(&dir).ok();
    }
}
