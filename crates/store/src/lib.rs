//! Persistent tuning-results store.
//!
//! Locus's value is empirical search, and empirical results are worth
//! keeping: the paper ships winning *direct* programs alongside the
//! source precisely so tuning effort is reused "for machines with
//! similar environments" (Sec. II). This crate is the systematic
//! version of that idea — an append-only database of every evaluation a
//! tuning session performs, keyed by
//! `(region content hash, machine digest, space digest)`, so that:
//!
//! * a repeat session over unchanged code **re-measures nothing** — the
//!   core crate rehydrates its two-level memo cache from the store and
//!   answers every previously seen proposal from disk;
//! * adaptive search modules **warm-start** from the store's best prior
//!   points ([`TuningStore::top_k`] feeds
//!   `SearchModule::seed_observations`);
//! * `suggest_program` retrieves the winning **recipe** of the
//!   structurally nearest previously tuned region
//!   ([`TuningStore::nearest_session`]) instead of falling back to
//!   static heuristics alone;
//! * editing one region **invalidates exactly that region's records**
//!   ([`TuningStore::invalidate_stale`]), leaving siblings live — the
//!   cross-session counterpart of the Sec. II coherence check.
//!
//! The on-disk format is versioned, line-oriented JSON (see
//! [`record`]): a `#locus-store v1` header, then one record per line,
//! append-only. No external dependencies; the codec is hand-rolled and
//! skips unknown record kinds so the format can evolve.
//!
//! Three service-grade mechanisms sit on top of the log:
//!
//! * **advisory single-writer locking** ([`lock`]) — [`TuningStore::open`]
//!   takes a PID-stamped lock file, so a daemon and a stray CLI session
//!   cannot interleave appends; [`TuningStore::open_read_only`] reads
//!   concurrently without the lock;
//! * **log compaction** ([`TuningStore::compact`]) — rewrites the log
//!   dropping superseded and invalidated records, atomically via a temp
//!   file and a rename;
//! * **sharding with lock striping** ([`sharded::ShardedStore`]) — one
//!   logical store split over per-region-hash shard files behind
//!   poison-recovering stripe locks, the shared store of the `locusd`
//!   tuning service.

#![warn(missing_docs)]

pub mod lock;
pub mod record;
pub mod sharded;
pub mod store;

pub use lock::StoreLock;
pub use record::{EvalRecord, PruneRecord, Record, RegionShape, SessionRecord, HEADER};
pub use sharded::{ShardedStore, DEFAULT_SHARDS};
pub use store::{CompactStats, StoreKey, TuningStore};
