//! The persistent store: an append-only JSONL log plus a compact
//! in-memory index.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use crate::lock::StoreLock;

use locus_space::Point;

use crate::record::{
    decode, encode_eval, encode_prune, encode_session, EvalRecord, PruneRecord, Record,
    RegionShape, SessionRecord, HEADER,
};

/// The identity of a tuning context: which code (region hashes), which
/// machine, which optimization space. Records are grouped under this
/// key; a session only rehydrates records whose key matches its own
/// exactly, so a changed region, machine or space can never replay a
/// stale measurement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// `(region id, region content hash)` pairs, sorted by id.
    pub regions: Vec<(String, u64)>,
    /// `MachineConfig::digest()` of the measuring machine.
    pub machine: u64,
    /// `Space::digest()` of the optimization space.
    pub space: u64,
}

impl StoreKey {
    /// Creates a key; region pairs are sorted so construction order
    /// never influences identity.
    pub fn new(mut regions: Vec<(String, u64)>, machine: u64, space: u64) -> StoreKey {
        regions.sort();
        regions.dedup();
        StoreKey {
            regions,
            machine,
            space,
        }
    }
}

/// All records of one [`StoreKey`], in insertion (= on-disk) order.
#[derive(Debug, Default)]
struct Group {
    records: Vec<EvalRecord>,
    by_point: HashMap<String, usize>,
    prunes: Vec<PruneRecord>,
    pruned_points: std::collections::HashSet<String>,
}

/// A persistent, append-only tuning-results database.
///
/// The on-disk format is line-oriented: a versioned header
/// (`#locus-store v1`) followed by one JSON record per line (see
/// [`crate::record`]). Appends never rewrite earlier lines, so a
/// crashed session loses at most its unflushed tail and concurrent
/// readers always see a valid prefix. The in-memory index deduplicates
/// by canonical point key within each group (first record wins — the
/// simulated machine is deterministic, so later duplicates carry no new
/// information).
#[derive(Debug)]
pub struct TuningStore {
    path: PathBuf,
    groups: HashMap<StoreKey, Group>,
    sessions: Vec<(StoreKey, SessionRecord)>,
    skipped_lines: usize,
    /// Advisory writer lock; `None` for read-only opens. Released on
    /// drop.
    lock: Option<StoreLock>,
    read_only: bool,
}

/// What [`TuningStore::compact`] did to the on-disk log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// File size before compaction, in bytes.
    pub bytes_before: u64,
    /// File size after compaction, in bytes.
    pub bytes_after: u64,
    /// Live evaluation records rewritten.
    pub evals: usize,
    /// Live prune records rewritten.
    pub prunes: usize,
    /// Session records rewritten.
    pub sessions: usize,
}

impl TuningStore {
    /// Opens (or creates) a store file for writing, taking the advisory
    /// single-writer lock (`<path>.lock`). A fresh file gets the
    /// versioned header; an existing file's header is validated.
    ///
    /// The lock is *advisory*: it only arbitrates between cooperating
    /// openers (a daemon and a stray CLI session cannot interleave
    /// appends and corrupt the log), and a lock whose holder process is
    /// dead is stolen rather than honored. Readers that never append
    /// use [`TuningStore::open_read_only`] and take no lock.
    ///
    /// # Errors
    ///
    /// I/O errors, [`io::ErrorKind::WouldBlock`] when another live
    /// process holds the writer lock, or
    /// [`io::ErrorKind::InvalidData`] when the file exists but carries
    /// a different format version.
    pub fn open(path: impl AsRef<Path>) -> io::Result<TuningStore> {
        let lock = StoreLock::acquire(path.as_ref())?;
        let mut store = Self::open_unlocked(path.as_ref())?;
        store.lock = Some(lock);
        store.read_only = false;
        Ok(store)
    }

    /// Opens a store file for reading only: no writer lock is taken
    /// (concurrent with a live writer), and every append method fails
    /// with [`io::ErrorKind::PermissionDenied`]. A missing file is an
    /// error rather than being created.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a foreign
    /// format version.
    pub fn open_read_only(path: impl AsRef<Path>) -> io::Result<TuningStore> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)?;
        let mut store = TuningStore {
            path: path.to_path_buf(),
            groups: HashMap::new(),
            sessions: Vec::new(),
            skipped_lines: 0,
            lock: None,
            read_only: true,
        };
        store.load_text(&text)?;
        Ok(store)
    }

    fn open_unlocked(path: &Path) -> io::Result<TuningStore> {
        let path = path.to_path_buf();
        let mut store = TuningStore {
            path: path.clone(),
            groups: HashMap::new(),
            sessions: Vec::new(),
            skipped_lines: 0,
            lock: None,
            read_only: false,
        };
        match std::fs::read_to_string(&path) {
            Ok(text) => store.load(&text)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                std::fs::write(&path, format!("{HEADER}\n"))?;
            }
            Err(e) => return Err(e),
        }
        Ok(store)
    }

    fn load(&mut self, text: &str) -> io::Result<()> {
        if matches!(text.lines().next(), None | Some("")) {
            // An empty file is adopted as a fresh v1 store.
            std::fs::write(&self.path, format!("{HEADER}\n"))?;
            return Ok(());
        }
        self.load_text(text)
    }

    fn load_text(&mut self, text: &str) -> io::Result<()> {
        let mut lines = text.lines();
        match lines.next() {
            None | Some("") => return Ok(()),
            Some(header) if header == HEADER => {}
            Some(header) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported store header `{header}` (expected `{HEADER}`)"),
                ));
            }
        }
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            match decode(line) {
                Some(Record::Eval { key, record }) => {
                    self.index_eval(key, record);
                }
                Some(Record::Prune { key, record }) => {
                    self.index_prune(key, record);
                }
                Some(Record::Session { key, record }) => self.sessions.push((key, record)),
                None => self.skipped_lines += 1,
            }
        }
        Ok(())
    }

    fn index_eval(&mut self, key: StoreKey, record: EvalRecord) -> bool {
        let group = self.groups.entry(key).or_default();
        if group.by_point.contains_key(&record.point_key) {
            return false;
        }
        group
            .by_point
            .insert(record.point_key.clone(), group.records.len());
        group.records.push(record);
        true
    }

    fn index_prune(&mut self, key: StoreKey, record: PruneRecord) -> bool {
        let group = self.groups.entry(key).or_default();
        if !group.pruned_points.insert(record.point_key.clone()) {
            return false;
        }
        group.prunes.push(record);
        true
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines skipped on load (malformed or future record kinds).
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// Total live evaluation records across all groups.
    pub fn len(&self) -> usize {
        self.groups.values().map(|g| g.records.len()).sum()
    }

    /// Whether the store holds no evaluation records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every [`StoreKey`] holding at least one evaluation or prune
    /// record, in a deterministic order (sorted by region list, then
    /// machine and space digests) — the enumeration `locus-report` uses
    /// to walk a store file without knowing its tuning contexts.
    pub fn keys(&self) -> Vec<&StoreKey> {
        let mut keys: Vec<&StoreKey> = self.groups.keys().collect();
        keys.sort_by(|a, b| {
            a.regions
                .cmp(&b.regions)
                .then(a.machine.cmp(&b.machine))
                .then(a.space.cmp(&b.space))
        });
        keys
    }

    /// Live evaluation records of one key, in insertion order.
    pub fn evals(&self, key: &StoreKey) -> &[EvalRecord] {
        self.groups
            .get(key)
            .map(|g| g.records.as_slice())
            .unwrap_or(&[])
    }

    /// Live prune records of one key, in insertion order.
    pub fn prunes(&self, key: &StoreKey) -> &[PruneRecord] {
        self.groups
            .get(key)
            .map(|g| g.prunes.as_slice())
            .unwrap_or(&[])
    }

    /// All session records, in insertion order.
    pub fn sessions(&self) -> impl Iterator<Item = &(StoreKey, SessionRecord)> {
        self.sessions.iter()
    }

    /// Appends evaluation records under `key`, skipping point keys the
    /// group already holds. Returns how many records were written.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying append.
    pub fn append_evals(&mut self, key: &StoreKey, records: &[EvalRecord]) -> io::Result<usize> {
        self.require_writable()?;
        let mut lines = String::new();
        let mut appended = 0;
        for record in records {
            if self.index_eval(key.clone(), record.clone()) {
                lines.push_str(&encode_eval(key, record));
                lines.push('\n');
                appended += 1;
            }
        }
        if appended > 0 {
            self.append_raw(&lines)?;
        }
        Ok(appended)
    }

    /// Appends prune records under `key`, skipping point keys the group
    /// already holds a prune for. Returns how many records were written.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying append.
    pub fn append_prunes(&mut self, key: &StoreKey, records: &[PruneRecord]) -> io::Result<usize> {
        self.require_writable()?;
        let mut lines = String::new();
        let mut appended = 0;
        for record in records {
            if self.index_prune(key.clone(), record.clone()) {
                lines.push_str(&encode_prune(key, record));
                lines.push('\n');
                appended += 1;
            }
        }
        if appended > 0 {
            self.append_raw(&lines)?;
        }
        Ok(appended)
    }

    /// Appends one session summary under `key`.
    ///
    /// # Errors
    ///
    /// I/O errors of the underlying append.
    pub fn append_session(&mut self, key: &StoreKey, record: SessionRecord) -> io::Result<()> {
        self.require_writable()?;
        let mut line = encode_session(key, &record);
        line.push('\n');
        self.append_raw(&line)?;
        self.sessions.push((key.clone(), record));
        Ok(())
    }

    fn append_raw(&self, text: &str) -> io::Result<()> {
        self.require_writable()?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(text.as_bytes())
    }

    fn require_writable(&self) -> io::Result<()> {
        if self.read_only {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!(
                    "store `{}` was opened read-only; reopen with TuningStore::open to write",
                    self.path.display()
                ),
            ));
        }
        Ok(())
    }

    /// Rewrites the on-disk log from the live in-memory index, dropping
    /// every superseded line: duplicate point keys (only the first of a
    /// group is live), records of groups the coherence check
    /// invalidated ([`TuningStore::invalidate_stale`]), and malformed
    /// or unknown-kind lines. Atomic: the new log is written to a
    /// sibling temp file and renamed over the original, so a crashed
    /// compaction leaves the old log intact.
    ///
    /// Rewriting is deterministic — groups in [`TuningStore::keys`]
    /// order, each group's evals then prunes in insertion order, then
    /// every session in insertion order — and reopening the compacted
    /// file reproduces the exact same index state.
    ///
    /// Unknown *future* record kinds are dropped with everything else
    /// this version cannot index; compact a store with a binary at
    /// least as new as the one that wrote it.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::PermissionDenied`] on a read-only store, or I/O
    /// errors of the rewrite.
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        self.require_writable()?;
        let bytes_before = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let mut text = String::from(HEADER);
        text.push('\n');
        let mut stats = CompactStats {
            bytes_before,
            ..CompactStats::default()
        };
        for key in self.keys() {
            for record in self.evals(key) {
                text.push_str(&encode_eval(key, record));
                text.push('\n');
                stats.evals += 1;
            }
            for record in self.prunes(key) {
                text.push_str(&encode_prune(key, record));
                text.push('\n');
                stats.prunes += 1;
            }
        }
        for (key, record) in &self.sessions {
            text.push_str(&encode_session(key, record));
            text.push('\n');
            stats.sessions += 1;
        }
        let tmp = self.path.with_extension("compact-tmp");
        std::fs::write(&tmp, &text)?;
        std::fs::rename(&tmp, &self.path)?;
        self.skipped_lines = 0;
        stats.bytes_after = text.len() as u64;
        Ok(stats)
    }

    /// Drops every group and session whose key mentions a region id
    /// present in `current` under a *different* content hash — the
    /// cross-session counterpart of the paper's Sec. II coherence check.
    /// Groups for regions absent from `current` (other source files
    /// sharing the store) stay live. Returns the number of evaluation
    /// records dropped.
    ///
    /// The on-disk log is untouched (append-only); stale lines are
    /// simply never rehydrated again because their group key can no
    /// longer match a live session's key.
    pub fn invalidate_stale(&mut self, current: &HashMap<String, u64>) -> usize {
        let stale = |regions: &[(String, u64)]| {
            regions
                .iter()
                .any(|(id, hash)| current.get(id).is_some_and(|cur| cur != hash))
        };
        let mut dropped = 0;
        self.groups.retain(|key, group| {
            if stale(&key.regions) {
                dropped += group.records.len();
                false
            } else {
                true
            }
        });
        self.sessions.retain(|(key, _)| !stale(&key.regions));
        dropped
    }

    /// The `k` best valid prior points of a group, sorted by objective
    /// (ties broken by canonical key, so the result is deterministic for
    /// a given store state) — the warm-start feed for
    /// `SearchModule::seed_observations`.
    pub fn top_k(&self, key: &StoreKey, k: usize) -> Vec<(Point, f64)> {
        let mut valid: Vec<(&EvalRecord, f64)> = self
            .evals(key)
            .iter()
            .filter_map(|r| r.objective.value().map(|v| (r, v)))
            .collect();
        valid.sort_by(|(ra, va), (rb, vb)| {
            va.total_cmp(vb)
                .then_with(|| ra.point_key.cmp(&rb.point_key))
        });
        valid
            .into_iter()
            .take(k)
            .filter_map(|(r, v)| Point::parse_canonical_key(&r.point_key).map(|p| (p, v)))
            .collect()
    }

    /// The structurally nearest session record within `max_distance` of
    /// `shape` — the retrieval behind store-backed `suggest_program`.
    /// Among equally near sessions the best (lowest `best_ms`) wins;
    /// remaining ties resolve to the earliest record, so retrieval is
    /// deterministic.
    pub fn nearest_session(
        &self,
        shape: &RegionShape,
        max_distance: u32,
    ) -> Option<(&SessionRecord, u32)> {
        self.sessions
            .iter()
            .map(|(_, s)| (s, s.shape.distance(shape)))
            .filter(|(_, d)| *d <= max_distance)
            .min_by(|(sa, da), (sb, db)| da.cmp(db).then_with(|| sa.best_ms.total_cmp(&sb.best_ms)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_search::Objective;

    fn tmp_path(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos();
        std::env::temp_dir().join(format!(
            "locus-store-{tag}-{}-{nanos}.jsonl",
            std::process::id()
        ))
    }

    fn eval(point: &str, ms: f64) -> EvalRecord {
        EvalRecord {
            point_key: point.to_string(),
            variant: 0x42,
            objective: Objective::Value(ms),
            cycles: ms * 1000.0,
            ops: 10,
            flops: 5,
            checksum: 0x99,
            search: "test".into(),
            wall_ms: 0.1,
        }
    }

    #[test]
    fn open_append_drop_reopen_round_trips() {
        let path = tmp_path("roundtrip");
        let k = StoreKey::new(vec![("matmul".into(), 0xaa)], 0x1, 0x5);
        {
            let mut store = TuningStore::open(&path).unwrap();
            assert!(store.is_empty());
            let n = store
                .append_evals(&k, &[eval("x=i1;", 2.0), eval("x=i2;", 1.0)])
                .unwrap();
            assert_eq!(n, 2);
            // Duplicate point keys are not re-written.
            assert_eq!(store.append_evals(&k, &[eval("x=i1;", 2.0)]).unwrap(), 0);
        }
        let store = TuningStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.skipped_lines(), 0);
        assert_eq!(store.evals(&k).len(), 2);
        let top = store.top_k(&k, 10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 1.0, "best first");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn prunes_persist_and_dedupe_like_evals() {
        let path = tmp_path("prunes");
        let k = StoreKey::new(vec![("matmul".into(), 0xaa)], 0x1, 0x5);
        let prune = |point: &str| PruneRecord {
            point_key: point.to_string(),
            variant: 0x7,
            reason: "data race: write C[i][j]".into(),
            provenance: "conservative".into(),
            search: "exhaustive".into(),
        };
        {
            let mut store = TuningStore::open(&path).unwrap();
            let n = store
                .append_prunes(&k, &[prune("omp=c1;"), prune("omp=c2;")])
                .unwrap();
            assert_eq!(n, 2);
            // A point pruned once is never re-written.
            assert_eq!(store.append_prunes(&k, &[prune("omp=c1;")]).unwrap(), 0);
        }
        let store = TuningStore::open(&path).unwrap();
        assert_eq!(store.skipped_lines(), 0, "old kinds and prune both parse");
        assert_eq!(store.prunes(&k).len(), 2);
        assert_eq!(store.prunes(&k)[0].reason, "data race: write C[i][j]");
        assert!(store.evals(&k).is_empty(), "prunes are not evaluations");
        drop(store); // release the writer lock before reopening

        // An edited region invalidates its prunes along with its evals.
        let mut store = TuningStore::open(&path).unwrap();
        let current = HashMap::from([("matmul".to_string(), 0xbbu64)]);
        store.invalidate_stale(&current);
        assert!(store.prunes(&k).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_is_versioned() {
        let path = tmp_path("header");
        TuningStore::open(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("#locus-store v1\n"));

        std::fs::write(&path, "#locus-store v99\n").unwrap();
        let err = TuningStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalidation_is_per_region() {
        let path = tmp_path("invalidate");
        let ka = StoreKey::new(vec![("a".into(), 0xa1)], 0x1, 0x5);
        let kb = StoreKey::new(vec![("b".into(), 0xb1)], 0x1, 0x5);
        let mut store = TuningStore::open(&path).unwrap();
        store.append_evals(&ka, &[eval("x=i1;", 1.0)]).unwrap();
        store.append_evals(&kb, &[eval("x=i1;", 1.0)]).unwrap();

        // Region `a` changed, `b` did not; `c` is unknown to the source.
        let current = HashMap::from([("a".to_string(), 0xa2u64), ("b".to_string(), 0xb1u64)]);
        let dropped = store.invalidate_stale(&current);
        assert_eq!(dropped, 1);
        assert!(store.evals(&ka).is_empty(), "edited region invalidated");
        assert_eq!(store.evals(&kb).len(), 1, "sibling region stays live");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_future_lines_are_skipped_not_fatal() {
        let path = tmp_path("future");
        std::fs::write(
            &path,
            "#locus-store v1\n{\"kind\":\"telemetry\",\"regions\":\"\",\"machine\":\"0\",\"space\":\"0\"}\nnot json\n",
        )
        .unwrap();
        let store = TuningStore::open(&path).unwrap();
        assert_eq!(store.skipped_lines(), 2);
        assert!(store.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_drops_superseded_lines_and_preserves_index_state() {
        let path = tmp_path("compact");
        let k = StoreKey::new(vec![("r".into(), 0x1)], 0x1, 0x1);
        {
            let mut store = TuningStore::open(&path).unwrap();
            store
                .append_evals(&k, &[eval("x=i1;", 1.0), eval("x=i2;", 2.0)])
                .unwrap();
        }
        // Simulate a historical interleaved writer: a duplicate of a
        // live line, garbage, and an unknown future kind.
        let live_line = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .nth(1)
            .unwrap()
            .to_string();
        let mut raw = std::fs::read_to_string(&path).unwrap();
        raw.push_str(&live_line);
        raw.push_str("\nnot json\n{\"kind\":\"hologram\",\"regions\":\"\",\"machine\":\"0\",\"space\":\"0\"}\n");
        std::fs::write(&path, raw).unwrap();

        let mut store = TuningStore::open(&path).unwrap();
        assert_eq!(store.len(), 2, "duplicate line is superseded");
        assert_eq!(store.skipped_lines(), 2);
        let keys_before: Vec<StoreKey> = store.keys().into_iter().cloned().collect();
        let evals_before = store.evals(&k).to_vec();

        let stats = store.compact().unwrap();
        assert!(
            stats.bytes_after < stats.bytes_before,
            "compaction shrinks the log: {stats:?}"
        );
        assert_eq!(stats.evals, 2);
        drop(store);

        let store = TuningStore::open(&path).unwrap();
        assert_eq!(store.skipped_lines(), 0, "no dead lines survive");
        let keys_after: Vec<StoreKey> = store.keys().into_iter().cloned().collect();
        assert_eq!(keys_after, keys_before);
        assert_eq!(store.evals(&k), evals_before.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_only_opens_refuse_appends_and_take_no_lock() {
        let path = tmp_path("readonly");
        let k = StoreKey::new(vec![("r".into(), 0x1)], 0x1, 0x1);
        let mut writer = TuningStore::open(&path).unwrap();
        writer.append_evals(&k, &[eval("x=i1;", 1.0)]).unwrap();

        // A reader coexists with the live writer...
        let mut reader = TuningStore::open_read_only(&path).unwrap();
        assert_eq!(reader.len(), 1);
        // ...but cannot write, and cannot compact.
        let err = reader.append_evals(&k, &[eval("x=i2;", 2.0)]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(
            reader.compact().unwrap_err().kind(),
            io::ErrorKind::PermissionDenied
        );

        // A second *writer* is refused while the first is live.
        let err = TuningStore::open(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(writer);
        TuningStore::open(&path).expect("lock released on drop");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn top_k_breaks_value_ties_by_point_key() {
        let path = tmp_path("topk");
        let k = StoreKey::new(vec![("r".into(), 0x1)], 0x1, 0x1);
        let mut store = TuningStore::open(&path).unwrap();
        store
            .append_evals(
                &k,
                &[
                    eval("x=i3;", 1.0),
                    eval("x=i1;", 1.0),
                    eval("x=i2;", 0.5),
                    EvalRecord {
                        objective: Objective::Invalid,
                        ..eval("x=i9;", 0.0)
                    },
                ],
            )
            .unwrap();
        let top = store.top_k(&k, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1, 0.5);
        assert_eq!(top[1].0.canonical_key(), "x=i1;", "tie broken by key");
        std::fs::remove_file(&path).ok();
    }
}
