//! Advisory single-writer locking for store files.
//!
//! The lock is a sibling file (`<store>.lock`) created with
//! `O_CREAT | O_EXCL` and holding the owner's PID. Creation is atomic,
//! so exactly one cooperating process wins; everyone else gets
//! [`std::io::ErrorKind::WouldBlock`] with the holder named in the
//! message. Readers never take the lock — the log is append-only, so a
//! reader always sees a valid prefix even while a writer is live.
//!
//! The lock is advisory in the classical sense: it arbitrates between
//! processes that *use this API* (a `locusd` daemon and a stray CLI
//! session cannot interleave appends and corrupt the log), it does not
//! stop raw filesystem writes. A lock whose holder is dead — the PID no
//! longer exists — is stolen rather than honored, so a crashed session
//! never wedges the store.

use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// How many steal-and-retry rounds `acquire` attempts before giving up.
/// Losing this many consecutive races means live contention, which is
/// exactly what the lock exists to report.
const MAX_ATTEMPTS: usize = 5;

/// A held advisory writer lock; the lock file is removed on drop.
#[derive(Debug)]
pub struct StoreLock {
    path: PathBuf,
}

/// The lock file guarding `store_path`.
pub fn lock_path_of(store_path: &Path) -> PathBuf {
    let mut name = store_path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".lock");
    store_path.with_file_name(name)
}

/// Whether a process with this PID is live. On Linux, `/proc/<pid>`
/// existence is the test; elsewhere liveness cannot be probed without
/// platform calls, so every holder is conservatively assumed alive.
fn pid_is_live(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

impl StoreLock {
    /// Acquires the advisory writer lock for `store_path`.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::WouldBlock`] when a live process holds the
    /// lock; other I/O errors from lock-file creation.
    pub fn acquire(store_path: &Path) -> io::Result<StoreLock> {
        let path = lock_path_of(store_path);
        for _ in 0..MAX_ATTEMPTS {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    // Best-effort PID stamp; an unreadable stamp is
                    // treated as stale by later openers, which errs
                    // toward stealing — a wedged store is worse than a
                    // rare double-steal between crashing processes.
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(StoreLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|text| text.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid_is_live(pid) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WouldBlock,
                                format!(
                                    "store `{}` is locked by live process {pid} (`{}`); \
                                     open it read-only or wait for the writer to finish",
                                    store_path.display(),
                                    path.display()
                                ),
                            ));
                        }
                        // Dead holder or unreadable stamp: steal and
                        // retry the atomic create.
                        _ => {
                            std::fs::remove_file(&path).ok();
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "store `{}`: lost {MAX_ATTEMPTS} consecutive races for `{}`",
                store_path.display(),
                path.display()
            ),
        ))
    }

    /// The lock file's own path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreLock {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "locus-lock-{tag}-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn second_acquire_is_refused_while_held() {
        let store = tmp_store("held");
        let lock = StoreLock::acquire(&store).unwrap();
        let err = StoreLock::acquire(&store).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert!(err.to_string().contains("locked by live process"));
        drop(lock);
        // Released on drop: the next acquire succeeds.
        let relock = StoreLock::acquire(&store).unwrap();
        assert!(relock.path().exists());
    }

    #[test]
    fn dead_holder_lock_is_stolen() {
        let store = tmp_store("stale");
        let lock_path = lock_path_of(&store);
        // No live process has this PID (PID_MAX on Linux is far lower).
        std::fs::write(&lock_path, "999999999").unwrap();
        let lock = StoreLock::acquire(&store).expect("stale lock stolen");
        drop(lock);
        assert!(!lock_path.exists());
    }

    #[test]
    fn unreadable_stamp_is_treated_as_stale() {
        let store = tmp_store("garbage");
        std::fs::write(lock_path_of(&store), "not-a-pid").unwrap();
        StoreLock::acquire(&store).expect("garbage lock stolen");
    }
}
