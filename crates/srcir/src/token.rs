//! Tokens produced by the mini-C lexer.

use std::fmt;

/// A lexical token of the mini-C language.
///
/// Punctuation and operator variants are named after their C spelling
/// (see the `Display` impl) and are intentionally left without
/// per-variant docs.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (contents, unescaped).
    Str(String),
    /// A full `#pragma` line (text after `#pragma`, trimmed).
    Pragma(String),
    // Punctuation / operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    AmpAmp,
    PipePipe,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PlusPlus,
    MinusMinus,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Pragma(s) => write!(f, "#pragma {s}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Amp => write!(f, "&"),
            Token::AmpAmp => write!(f, "&&"),
            Token::PipePipe => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::EqEq => write!(f, "=="),
            Token::Ne => write!(f, "!="),
            Token::Eq => write!(f, "="),
            Token::PlusEq => write!(f, "+="),
            Token::MinusEq => write!(f, "-="),
            Token::StarEq => write!(f, "*="),
            Token::SlashEq => write!(f, "/="),
            Token::PlusPlus => write!(f, "++"),
            Token::MinusMinus => write!(f, "--"),
        }
    }
}

/// A token plus its source line (1-based), for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: u32,
}
