//! Hierarchical statement indexing (Sec. III of the paper).
//!
//! An index is a dot-separated list of numbers such as `"0.0.1"`. Each
//! number selects a statement at one nesting level, starting from the
//! *region root*: the first component indexes the (single-element) list
//! containing the root itself, and each following component indexes the
//! children of the previously selected statement, where a loop's children
//! are the statements of its body (see [`crate::visit::child`]).
//!
//! For the triply nested `matmul` loop of the paper's Fig. 3, `"0"` is the
//! `i` loop, `"0.0"` the `j` loop and `"0.0.0"` the innermost `k` loop.

use std::fmt;
use std::str::FromStr;

use crate::ast::Stmt;
use crate::visit::{child, child_mut};

/// A parsed hierarchical index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HierIndex(pub Vec<usize>);

/// Error parsing a hierarchical index string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHierIndexError {
    text: String,
}

impl fmt::Display for ParseHierIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed hierarchical index `{}`", self.text)
    }
}

impl std::error::Error for ParseHierIndexError {}

impl HierIndex {
    /// The index of the region root itself (`"0"`).
    pub fn root() -> HierIndex {
        HierIndex(vec![0])
    }

    /// Builds an index from raw components.
    pub fn new(components: Vec<usize>) -> HierIndex {
        HierIndex(components)
    }

    /// The number of components.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Returns a new index with `component` appended.
    pub fn push(&self, component: usize) -> HierIndex {
        let mut v = self.0.clone();
        v.push(component);
        HierIndex(v)
    }

    /// Returns the parent index, if this is not the root level.
    pub fn parent(&self) -> Option<HierIndex> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(HierIndex(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Resolves the index against a region root statement.
    ///
    /// Returns `None` when any component is out of range.
    pub fn resolve<'a>(&self, root: &'a Stmt) -> Option<&'a Stmt> {
        let mut components = self.0.iter();
        match components.next() {
            Some(0) => {}
            _ => return None,
        }
        let mut cur = root;
        for &i in components {
            cur = child(cur, i)?;
        }
        Some(cur)
    }

    /// Resolves the index against a region root statement, mutably.
    pub fn resolve_mut<'a>(&self, root: &'a mut Stmt) -> Option<&'a mut Stmt> {
        let mut components = self.0.iter();
        match components.next() {
            Some(0) => {}
            _ => return None,
        }
        let mut cur = root;
        for &i in components {
            cur = child_mut(cur, i)?;
        }
        Some(cur)
    }
}

impl FromStr for HierIndex {
    type Err = ParseHierIndexError;

    fn from_str(s: &str) -> Result<HierIndex, ParseHierIndexError> {
        let err = || ParseHierIndexError {
            text: s.to_string(),
        };
        if s.is_empty() {
            return Err(err());
        }
        s.split('.')
            .map(|part| part.parse::<usize>().map_err(|_| err()))
            .collect::<Result<Vec<_>, _>>()
            .map(HierIndex)
    }
}

impl fmt::Display for HierIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

impl From<Vec<usize>> for HierIndex {
    fn from(components: Vec<usize>) -> HierIndex {
        HierIndex(components)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StmtKind;
    use crate::parser::parse_program;

    fn matmul_loop() -> Stmt {
        let src = r#"
        void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
        }
        "#;
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn parse_and_display_round_trip() {
        let idx: HierIndex = "0.0.1".parse().unwrap();
        assert_eq!(idx, HierIndex(vec![0, 0, 1]));
        assert_eq!(idx.to_string(), "0.0.1");
    }

    #[test]
    fn malformed_indices_are_rejected() {
        assert!("".parse::<HierIndex>().is_err());
        assert!("0..1".parse::<HierIndex>().is_err());
        assert!("a.b".parse::<HierIndex>().is_err());
    }

    #[test]
    fn resolves_nested_loops_as_in_the_paper() {
        let root = matmul_loop();
        let i0: HierIndex = "0".parse().unwrap();
        assert!(i0.resolve(&root).unwrap().is_for());
        let innermost: HierIndex = "0.0.0".parse().unwrap();
        let inner = innermost.resolve(&root).unwrap();
        assert!(inner.is_for());
        // The innermost loop's only child is the update statement.
        let stmt: HierIndex = "0.0.0.0".parse().unwrap();
        let update = stmt.resolve(&root).unwrap();
        assert!(matches!(update.kind, StmtKind::Expr(_)));
    }

    #[test]
    fn out_of_range_component_returns_none() {
        let root = matmul_loop();
        let bad: HierIndex = "0.1".parse().unwrap();
        assert!(bad.resolve(&root).is_none());
        let not_zero: HierIndex = "1".parse().unwrap();
        assert!(not_zero.resolve(&root).is_none());
    }

    #[test]
    fn resolve_mut_allows_in_place_edits() {
        let mut root = matmul_loop();
        let inner: HierIndex = "0.0.0".parse().unwrap();
        let stmt = inner.resolve_mut(&mut root).unwrap();
        stmt.pragmas.push(crate::ast::Pragma::Ivdep);
        assert_eq!(
            inner.resolve(&root).unwrap().pragmas,
            vec![crate::ast::Pragma::Ivdep]
        );
    }

    #[test]
    fn parent_and_push() {
        let idx: HierIndex = "0.2.1".parse().unwrap();
        assert_eq!(idx.parent().unwrap().to_string(), "0.2");
        assert_eq!(idx.push(3).to_string(), "0.2.1.3");
        assert_eq!(HierIndex::root().parent(), None);
    }
}
