//! Code regions: the `#pragma @Locus` annotated statements the
//! optimization program refers to (Sec. II of the paper).
//!
//! A region is identified by a *name*; multiple regions may share a name,
//! in which case the same optimization sequence applies to all of them.
//! A [`RegionRef`] locates one annotated statement inside a [`Program`]
//! by function name and statement path, so regions stay addressable across
//! transformations that replace the annotated statement wholesale.

use crate::ast::{Item, Program, Stmt, StmtKind};
use crate::visit::{child, child_count, child_mut};

/// Whether the annotation is a `loop=` or `block=` region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// `#pragma @Locus loop=NAME`: applies to the following loop nest.
    Loop,
    /// `#pragma @Locus block=NAME`: applies to the following block.
    Block,
}

/// A reference to an annotated statement within a program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegionRef {
    /// The region identifier from the pragma.
    pub id: String,
    /// Loop or block annotation.
    pub kind: RegionKind,
    /// Enclosing function name.
    pub func: String,
    /// Path of child indices from the function body to the statement.
    pub path: Vec<usize>,
}

/// An extracted code region: the annotated statement plus its identity.
///
/// Extracting clones the statement; use [`RegionRef`] + [`replace_region`]
/// to write a transformed region back.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeRegion {
    /// Region identifier from the pragma.
    pub id: String,
    /// Loop or block annotation.
    pub kind: RegionKind,
    /// The (cloned) annotated statement.
    pub stmt: Stmt,
}

/// Finds every Locus-annotated statement in the program, in source order.
pub fn find_regions(program: &Program) -> Vec<RegionRef> {
    let mut out = Vec::new();
    for item in &program.items {
        let Item::Function(f) = item else { continue };
        for (i, stmt) in f.body.iter().enumerate() {
            find_in_stmt(stmt, &f.name, &mut vec![i], &mut out);
        }
    }
    out
}

fn find_in_stmt(stmt: &Stmt, func: &str, path: &mut Vec<usize>, out: &mut Vec<RegionRef>) {
    for pragma in &stmt.pragmas {
        let kind = match pragma {
            crate::ast::Pragma::LocusLoop(_) => Some(RegionKind::Loop),
            crate::ast::Pragma::LocusBlock(_) => Some(RegionKind::Block),
            _ => None,
        };
        if let (Some(kind), Some(id)) = (kind, pragma.region_id()) {
            out.push(RegionRef {
                id: id.to_string(),
                kind,
                func: func.to_string(),
                path: path.clone(),
            });
        }
    }
    for i in 0..child_count(stmt) {
        if let Some(c) = child(stmt, i) {
            path.push(i);
            find_in_stmt(c, func, path, out);
            path.pop();
        }
    }
}

/// Looks up the statement a [`RegionRef`] points to.
pub fn region_stmt<'a>(program: &'a Program, region: &RegionRef) -> Option<&'a Stmt> {
    let f = program.function(&region.func)?;
    let mut components = region.path.iter();
    let mut cur = f.body.get(*components.next()?)?;
    for &i in components {
        cur = child(cur, i)?;
    }
    Some(cur)
}

/// Looks up the statement a [`RegionRef`] points to, mutably.
pub fn region_stmt_mut<'a>(program: &'a mut Program, region: &RegionRef) -> Option<&'a mut Stmt> {
    let f = program.function_mut(&region.func)?;
    let mut components = region.path.iter();
    let mut cur = f.body.get_mut(*components.next()?)?;
    for &i in components {
        cur = child_mut(cur, i)?;
    }
    Some(cur)
}

/// Extracts a region as an owned [`CodeRegion`].
pub fn extract_region(program: &Program, region: &RegionRef) -> Option<CodeRegion> {
    let stmt = region_stmt(program, region)?.clone();
    Some(CodeRegion {
        id: region.id.clone(),
        kind: region.kind,
        stmt,
    })
}

/// Replaces the statement a [`RegionRef`] points to with `new_stmt`,
/// preserving the region's Locus pragma so the region remains addressable.
///
/// Returns `false` if the reference no longer resolves.
pub fn replace_region(program: &mut Program, region: &RegionRef, mut new_stmt: Stmt) -> bool {
    let Some(slot) = region_stmt_mut(program, region) else {
        return false;
    };
    // Keep exactly the Locus region pragmas of the original statement at
    // the front; the transformed statement may carry additional pragmas
    // (ivdep, omp, ...) of its own.
    let locus_pragmas: Vec<_> = slot
        .pragmas
        .iter()
        .filter(|p| p.region_id().is_some())
        .cloned()
        .collect();
    for p in locus_pragmas.into_iter().rev() {
        if !new_stmt.pragmas.contains(&p) {
            new_stmt.pragmas.insert(0, p);
        }
    }
    *slot = new_stmt;
    true
}

/// Groups region references by identifier, preserving source order.
pub fn regions_by_id(refs: &[RegionRef]) -> Vec<(String, Vec<RegionRef>)> {
    let mut out: Vec<(String, Vec<RegionRef>)> = Vec::new();
    for r in refs {
        match out.iter_mut().find(|(id, _)| id == &r.id) {
            Some((_, group)) => group.push(r.clone()),
            None => out.push((r.id.clone(), vec![r.clone()])),
        }
    }
    out
}

/// Returns `true` if the region root is (or starts with) a `for` loop,
/// which `loop=` annotations require.
pub fn is_loop_region(stmt: &Stmt) -> bool {
    match &stmt.kind {
        StmtKind::For(_) => true,
        StmtKind::Block(stmts) => stmts.first().is_some_and(is_loop_region),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const SRC: &str = r#"
    void f(int n, double A[64]) {
        int i;
        #pragma @Locus loop=init
        for (i = 0; i < n; i++)
            A[i] = 0.0;
        #pragma @Locus block=post
        {
            A[0] = 1.0;
        }
    }
    void g(int n, double A[64]) {
        #pragma @Locus loop=init
        for (int i = 0; i < n; i++)
            A[i] = 2.0;
    }
    "#;

    #[test]
    fn finds_all_regions_in_order() {
        let p = parse_program(SRC).unwrap();
        let regions = find_regions(&p);
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0].id, "init");
        assert_eq!(regions[0].kind, RegionKind::Loop);
        assert_eq!(regions[0].func, "f");
        assert_eq!(regions[1].id, "post");
        assert_eq!(regions[1].kind, RegionKind::Block);
        assert_eq!(regions[2].func, "g");
    }

    #[test]
    fn same_id_groups_together() {
        let p = parse_program(SRC).unwrap();
        let groups = regions_by_id(&find_regions(&p));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "init");
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn region_stmt_resolves_to_annotated_loop() {
        let p = parse_program(SRC).unwrap();
        let regions = find_regions(&p);
        let stmt = region_stmt(&p, &regions[0]).unwrap();
        assert!(stmt.is_for());
        assert_eq!(stmt.region_id(), Some("init"));
    }

    #[test]
    fn replace_preserves_locus_pragma() {
        let mut p = parse_program(SRC).unwrap();
        let regions = find_regions(&p);
        let mut new_stmt = region_stmt(&p, &regions[0]).unwrap().clone();
        new_stmt.pragmas.clear();
        assert!(replace_region(&mut p, &regions[0], new_stmt));
        let stmt = region_stmt(&p, &regions[0]).unwrap();
        assert_eq!(stmt.region_id(), Some("init"));
        // Re-finding still sees all regions.
        assert_eq!(find_regions(&p).len(), 3);
    }

    #[test]
    fn extract_clones_region() {
        let p = parse_program(SRC).unwrap();
        let regions = find_regions(&p);
        let region = extract_region(&p, &regions[0]).unwrap();
        assert_eq!(region.id, "init");
        assert!(region.stmt.is_for());
    }

    #[test]
    fn nested_region_is_found() {
        let src = r#"
        void f(int n) {
            for (int t = 0; t < n; t++) {
                #pragma @Locus loop=inner
                for (int i = 0; i < n; i++) { n = n; }
            }
        }
        "#;
        let p = parse_program(src).unwrap();
        let regions = find_regions(&p);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].path.len(), 2);
        assert!(region_stmt(&p, &regions[0]).unwrap().is_for());
    }

    #[test]
    fn loop_region_detection() {
        let p = parse_program(SRC).unwrap();
        let regions = find_regions(&p);
        assert!(is_loop_region(region_stmt(&p, &regions[0]).unwrap()));
        assert!(!is_loop_region(region_stmt(&p, &regions[1]).unwrap()));
    }
}
