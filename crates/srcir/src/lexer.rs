//! Lexer for the mini-C source language.
//!
//! Besides ordinary C tokenization, the lexer handles two preprocessor-ish
//! constructs the evaluation kernels rely on:
//!
//! * `#define NAME literal` — recorded and substituted into subsequent
//!   identifier tokens (a deliberately tiny macro facility, enough for the
//!   `#define M 2048` style constants in the paper's kernels);
//! * `#pragma ...` — emitted as a single [`Token::Pragma`] carrying the
//!   pragma text, which the parser attaches to the following statement.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::token::{SpannedToken, Token};

/// Error produced while tokenizing source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    defines: HashMap<String, Token>,
    tokens: Vec<SpannedToken>,
}

/// Tokenizes mini-C source text.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, malformed numbers, or
/// unexpected characters.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, LexError> {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        defines: HashMap::new(),
        tokens: Vec::new(),
    };
    lexer.run()?;
    Ok(lexer.tokens)
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            message: message.into(),
        }
    }

    fn push(&mut self, token: Token) {
        self.tokens.push(SpannedToken {
            token,
            line: self.line,
        });
    }

    fn run(&mut self) -> Result<(), LexError> {
        while let Some(c) = self.peek() {
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => self.skip_line(),
                b'/' if self.peek2() == Some(b'*') => self.skip_block_comment()?,
                b'#' => self.directive()?,
                b'"' => self.string()?,
                b'0'..=b'9' => self.number()?,
                b'.' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => self.number()?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ => self.operator()?,
            }
        }
        Ok(())
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) -> Result<(), LexError> {
        self.bump();
        self.bump();
        loop {
            match self.peek() {
                Some(b'*') if self.peek2() == Some(b'/') => {
                    self.bump();
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(self.error("unterminated block comment")),
            }
        }
    }

    /// Reads the rest of the current line (handles `\` continuations).
    fn rest_of_line(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == b'\n' {
                if text.ends_with('\\') {
                    text.pop();
                    self.bump();
                    continue;
                }
                break;
            }
            text.push(c as char);
            self.bump();
        }
        text
    }

    fn directive(&mut self) -> Result<(), LexError> {
        self.bump(); // '#'
        let line = self.rest_of_line();
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("pragma") {
            self.push(Token::Pragma(rest.trim().to_string()));
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("define") {
            let mut parts = rest.trim().splitn(2, char::is_whitespace);
            let name = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| self.error("#define without a name"))?;
            let value = parts.next().unwrap_or("").trim();
            let token = parse_define_value(value)
                .ok_or_else(|| self.error(format!("unsupported #define value `{value}`")))?;
            self.defines.insert(name.to_string(), token);
            return Ok(());
        }
        if line.starts_with("include") {
            // Includes are ignored: the corpus is self-contained.
            return Ok(());
        }
        Err(self.error(format!("unsupported preprocessor directive `#{line}`")))
    }

    fn string(&mut self) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.error("unterminated string escape"))?;
                    text.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => other as char,
                    });
                }
                Some(c) => text.push(c as char),
                None => return Err(self.error("unterminated string literal")),
            }
        }
        self.push(Token::Str(text));
        Ok(())
    }

    fn number(&mut self) -> Result<(), LexError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                b'f' | b'F' | b'l' | b'L' | b'u' | b'U' => {
                    // Suffixes are accepted and discarded.
                    self.bump();
                    let text = std::str::from_utf8(&self.src[start..self.pos - 1]).unwrap();
                    return self.finish_number(text, is_float || c == b'f' || c == b'F');
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        self.finish_number(text, is_float)
    }

    fn finish_number(&mut self, text: &str, is_float: bool) -> Result<(), LexError> {
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(format!("malformed float literal `{text}`")))?;
            self.push(Token::Float(v));
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.error(format!("malformed integer literal `{text}`")))?;
            self.push(Token::Int(v));
        }
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        match self.defines.get(text) {
            Some(replacement) => {
                let token = replacement.clone();
                self.push(token);
            }
            None => self.push(Token::Ident(text.to_string())),
        }
    }

    fn operator(&mut self) -> Result<(), LexError> {
        let c = self.bump().expect("operator called at end of input");
        let two = |lexer: &mut Lexer<'_>, next: u8, yes: Token, no: Token| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let token = match c {
            b'(' => Token::LParen,
            b')' => Token::RParen,
            b'{' => Token::LBrace,
            b'}' => Token::RBrace,
            b'[' => Token::LBracket,
            b']' => Token::RBracket,
            b';' => Token::Semi,
            b',' => Token::Comma,
            b'+' => {
                if self.peek() == Some(b'+') {
                    self.bump();
                    Token::PlusPlus
                } else {
                    two(self, b'=', Token::PlusEq, Token::Plus)
                }
            }
            b'-' => {
                if self.peek() == Some(b'-') {
                    self.bump();
                    Token::MinusMinus
                } else {
                    two(self, b'=', Token::MinusEq, Token::Minus)
                }
            }
            b'*' => two(self, b'=', Token::StarEq, Token::Star),
            b'/' => two(self, b'=', Token::SlashEq, Token::Slash),
            b'%' => Token::Percent,
            b'&' => two(self, b'&', Token::AmpAmp, Token::Amp),
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    Token::PipePipe
                } else {
                    return Err(self.error("bitwise `|` is not supported"));
                }
            }
            b'!' => two(self, b'=', Token::Ne, Token::Bang),
            b'<' => two(self, b'=', Token::Le, Token::Lt),
            b'>' => two(self, b'=', Token::Ge, Token::Gt),
            b'=' => two(self, b'=', Token::EqEq, Token::Eq),
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char)));
            }
        };
        self.push(token);
        Ok(())
    }
}

fn parse_define_value(value: &str) -> Option<Token> {
    if value.is_empty() {
        return None;
    }
    if let Ok(v) = value.parse::<i64>() {
        return Some(Token::Int(v));
    }
    if let Ok(v) = value.parse::<f64>() {
        return Some(Token::Float(v));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_basic_statement() {
        assert_eq!(
            toks("x = a[i] + 1;"),
            vec![
                Token::Ident("x".into()),
                Token::Eq,
                Token::Ident("a".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Plus,
                Token::Int(1),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn lexes_floats_and_suffixes() {
        assert_eq!(toks("0.125"), vec![Token::Float(0.125)]);
        assert_eq!(toks("2.0f"), vec![Token::Float(2.0)]);
        assert_eq!(toks("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(toks("1.5e-2"), vec![Token::Float(0.015)]);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<= >= == != && || += ++ --"),
            vec![
                Token::Le,
                Token::Ge,
                Token::EqEq,
                Token::Ne,
                Token::AmpAmp,
                Token::PipePipe,
                Token::PlusEq,
                Token::PlusPlus,
                Token::MinusMinus,
            ]
        );
    }

    #[test]
    fn pragma_becomes_single_token() {
        assert_eq!(
            toks("#pragma @Locus loop=matmul\nfor"),
            vec![
                Token::Pragma("@Locus loop=matmul".into()),
                Token::Ident("for".into()),
            ]
        );
    }

    #[test]
    fn define_substitutes_constants() {
        assert_eq!(
            toks("#define N 2048\nx < N"),
            vec![Token::Ident("x".into()), Token::Lt, Token::Int(2048)]
        );
    }

    #[test]
    fn include_is_ignored() {
        assert_eq!(
            toks("#include <stdio.h>\nx"),
            vec![Token::Ident("x".into())]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block \n still */ b"),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""Time(ms) = %7.5lf\n""#),
            vec![Token::Str("Time(ms) = %7.5lf\n".into())]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("\"abc").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn unexpected_character_reports_line() {
        let err = lex("a\n$\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
