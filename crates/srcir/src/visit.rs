//! Traversal helpers over the mini-C AST.
//!
//! Statement navigation is defined through a uniform *child list*:
//! a block's children are its statements, a loop's children are the
//! statements of its body, and an `if`'s children are its branches. The
//! same child relation underpins the hierarchical indexing of
//! [`crate::index::HierIndex`].

use crate::ast::{Expr, ForLoop, Stmt, StmtKind};

/// Number of child statements of `stmt` under the uniform child relation.
pub fn child_count(stmt: &Stmt) -> usize {
    match &stmt.kind {
        StmtKind::Block(stmts) => stmts.len(),
        StmtKind::For(f) => f.body.body_stmts().len(),
        StmtKind::While { body, .. } => body.body_stmts().len(),
        StmtKind::If { else_branch, .. } => {
            if else_branch.is_some() {
                2
            } else {
                1
            }
        }
        _ => 0,
    }
}

/// The `i`-th child statement of `stmt`, if any.
pub fn child(stmt: &Stmt, i: usize) -> Option<&Stmt> {
    match &stmt.kind {
        StmtKind::Block(stmts) => stmts.get(i),
        StmtKind::For(f) => f.body.body_stmts().get(i),
        StmtKind::While { body, .. } => body.body_stmts().get(i),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => match i {
            0 => Some(then_branch),
            1 => else_branch.as_deref(),
            _ => None,
        },
        _ => None,
    }
}

/// Mutable access to the `i`-th child statement of `stmt`.
pub fn child_mut(stmt: &mut Stmt, i: usize) -> Option<&mut Stmt> {
    match &mut stmt.kind {
        StmtKind::Block(stmts) => stmts.get_mut(i),
        StmtKind::For(f) => body_stmts_mut(&mut f.body).get_mut(i),
        StmtKind::While { body, .. } => body_stmts_mut(body).get_mut(i),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => match i {
            0 => Some(then_branch),
            1 => else_branch.as_deref_mut(),
            _ => None,
        },
        _ => None,
    }
}

/// Mutable view of a body statement's statement list (wrapping non-blocks).
pub(crate) fn body_stmts_mut(body: &mut Stmt) -> &mut [Stmt] {
    if matches!(body.kind, StmtKind::Block(_)) {
        match &mut body.kind {
            StmtKind::Block(stmts) => stmts,
            _ => unreachable!(),
        }
    } else {
        std::slice::from_mut(body)
    }
}

/// Pre-order walk over `stmt` and all nested statements.
pub fn walk_stmts<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(stmt);
    match &stmt.kind {
        StmtKind::Block(stmts) => {
            for s in stmts {
                walk_stmts(s, f);
            }
        }
        StmtKind::For(ForLoop { init, body, .. }) => {
            if let Some(init) = init {
                walk_stmts(init, f);
            }
            walk_stmts(body, f);
        }
        StmtKind::While { body, .. } => walk_stmts(body, f),
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_stmts(then_branch, f);
            if let Some(e) = else_branch {
                walk_stmts(e, f);
            }
        }
        _ => {}
    }
}

/// Pre-order walk over an expression tree.
pub fn walk_exprs<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match expr {
        Expr::Index { base, index } => {
            walk_exprs(base, f);
            walk_exprs(index, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Unary { operand, .. } => walk_exprs(operand, f),
        Expr::Binary { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        Expr::Assign { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        Expr::Cast { expr, .. } => walk_exprs(expr, f),
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) | Expr::Ident(_) => {}
    }
}

/// Walks every expression contained in `stmt` (conditions, bounds, steps,
/// initializers, and statement expressions), including nested statements.
pub fn walk_exprs_in_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    walk_stmts(stmt, &mut |s| {
        match &s.kind {
            StmtKind::Expr(e) => walk_exprs(e, f),
            StmtKind::Decl { dims, init, .. } => {
                for d in dims {
                    walk_exprs(d, f);
                }
                if let Some(init) = init {
                    walk_exprs(init, f);
                }
            }
            StmtKind::If { cond, .. } => walk_exprs(cond, f),
            StmtKind::For(fl) => {
                if let Some(cond) = &fl.cond {
                    walk_exprs(cond, f);
                }
                if let Some(step) = &fl.step {
                    walk_exprs(step, f);
                }
            }
            StmtKind::While { cond, .. } => walk_exprs(cond, f),
            StmtKind::Return(Some(e)) => walk_exprs(e, f),
            _ => {}
        };
    });
}

/// Rewrites every expression node in an expression tree, bottom-up.
pub fn rewrite_exprs(expr: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match expr {
        Expr::Index { base, index } => {
            rewrite_exprs(base, f);
            rewrite_exprs(index, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                rewrite_exprs(a, f);
            }
        }
        Expr::Unary { operand, .. } => rewrite_exprs(operand, f),
        Expr::Binary { lhs, rhs, .. } => {
            rewrite_exprs(lhs, f);
            rewrite_exprs(rhs, f);
        }
        Expr::Assign { lhs, rhs, .. } => {
            rewrite_exprs(lhs, f);
            rewrite_exprs(rhs, f);
        }
        Expr::Cast { expr, .. } => rewrite_exprs(expr, f),
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) | Expr::Ident(_) => {}
    }
    f(expr);
}

/// Rewrites every expression contained in `stmt`, recursing into nested
/// statements.
pub fn rewrite_exprs_in_stmt(stmt: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Expr(e) => rewrite_exprs(e, f),
        StmtKind::Decl { dims, init, .. } => {
            for d in dims {
                rewrite_exprs(d, f);
            }
            if let Some(init) = init {
                rewrite_exprs(init, f);
            }
        }
        StmtKind::Block(stmts) => {
            for s in stmts {
                rewrite_exprs_in_stmt(s, f);
            }
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            rewrite_exprs(cond, f);
            rewrite_exprs_in_stmt(then_branch, f);
            if let Some(e) = else_branch {
                rewrite_exprs_in_stmt(e, f);
            }
        }
        StmtKind::For(fl) => {
            if let Some(init) = &mut fl.init {
                rewrite_exprs_in_stmt(init, f);
            }
            if let Some(cond) = &mut fl.cond {
                rewrite_exprs(cond, f);
            }
            if let Some(step) = &mut fl.step {
                rewrite_exprs(step, f);
            }
            rewrite_exprs_in_stmt(&mut fl.body, f);
        }
        StmtKind::While { cond, body } => {
            rewrite_exprs(cond, f);
            rewrite_exprs_in_stmt(body, f);
        }
        StmtKind::Return(Some(e)) => rewrite_exprs(e, f),
        StmtKind::Return(None) | StmtKind::Empty => {}
    }
}

/// Replaces every use of identifier `name` with `replacement`.
pub fn substitute_ident(stmt: &mut Stmt, name: &str, replacement: &Expr) {
    rewrite_exprs_in_stmt(stmt, &mut |e| {
        if matches!(e, Expr::Ident(n) if n == name) {
            *e = replacement.clone();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn first_loop(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let f = p.functions().next().unwrap();
        f.body
            .iter()
            .find(|s| s.is_for())
            .cloned()
            .expect("a for loop")
    }

    #[test]
    fn child_relation_descends_loop_bodies() {
        let l = first_loop(
            "void f(int n) { for (int i = 0; i < n; i++) { n = n; for (int j = 0; j < n; j++) { n = n; } } }",
        );
        assert_eq!(child_count(&l), 2);
        assert!(child(&l, 1).unwrap().is_for());
        assert!(child(&l, 2).is_none());
    }

    #[test]
    fn walk_counts_all_statements() {
        let l = first_loop("void f(int n) { for (int i = 0; i < n; i++) { n = n; n = n; } }");
        let mut count = 0;
        walk_stmts(&l, &mut |_| count += 1);
        // for + init decl + block + 2 exprs
        assert_eq!(count, 5);
    }

    #[test]
    fn substitute_rewrites_identifiers_everywhere() {
        let mut l = first_loop("void f(int n) { for (int i = 0; i < n; i++) { n = n + i; } }");
        substitute_ident(&mut l, "n", &Expr::int(10));
        let mut found_n = false;
        walk_exprs_in_stmt(&l, &mut |e| {
            if matches!(e, Expr::Ident(x) if x == "n") {
                found_n = true;
            }
        });
        assert!(!found_n);
    }

    #[test]
    fn if_children_are_branches() {
        let p = parse_program("void f(int x) { if (x) { x = 1; } else { x = 2; } }").unwrap();
        let f = p.functions().next().unwrap();
        let s = &f.body[0];
        assert_eq!(child_count(s), 2);
        assert!(child(s, 0).is_some());
        assert!(child(s, 1).is_some());
    }
}
