//! Abstract syntax tree for the mini-C source language.
//!
//! The AST is a plain owned tree: transformations clone and rewrite
//! subtrees freely, mirroring the unparse/re-parse round trips the Locus
//! paper performs when driving external source-to-source tools.

use std::fmt;

/// A scalar or derived type in the mini-C language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int` — also used for loop induction variables.
    Int,
    /// `double` — the numeric workhorse of the evaluation kernels.
    Double,
    /// `float`.
    Float,
    /// `char`, only used for string parameters.
    Char,
    /// `void`, for function return types.
    Void,
    /// A pointer type, e.g. `double*`.
    Ptr(Box<Type>),
}

impl Type {
    /// Returns `true` for the floating-point scalar types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Double | Type::Float)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Double => write!(f, "double"),
            Type::Float => write!(f, "float"),
            Type::Char => write!(f, "char"),
            Type::Void => write!(f, "void"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
        }
    }
}

/// Unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Pointer dereference `*p`.
    Deref,
    /// Address-of `&x`.
    Addr,
}

impl UnOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Deref => "*",
            UnOp::Addr => "&",
        }
    }
}

/// Binary operator. Variants are named after their C spelling (see
/// [`BinOp::symbol`]).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Returns `true` if the operator yields a boolean-ish `int`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Assignment operator (`=`, `+=`, ...). Variants are named after their
/// C spelling (see [`AssignOp::symbol`]).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
}

impl AssignOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }

    /// The plain binary operator a compound assignment expands to, if any.
    pub fn to_bin_op(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }
}

/// An expression. (Variant payload fields are conventional — operand,
/// operator, base/index — and carry no per-field docs.)
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// String literal (only meaningful as a call argument).
    StrLit(String),
    /// Variable reference.
    Ident(String),
    /// Array subscript `base[index]`; multi-dimensional accesses nest.
    Index { base: Box<Expr>, index: Box<Expr> },
    /// Function call.
    Call { callee: String, args: Vec<Expr> },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Assignment used as an expression (C semantics).
    Assign {
        op: AssignOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// C cast `(type) expr`.
    Cast { ty: Type, expr: Box<Expr> },
}

impl Expr {
    /// Convenience constructor for an identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn int(value: i64) -> Expr {
        Expr::IntLit(value)
    }

    /// Convenience constructor for a binary expression.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a simple `lhs = rhs` assignment.
    pub fn assign(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Assign {
            op: AssignOp::Assign,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds a (possibly multi-dimensional) subscript expression.
    pub fn index(base: Expr, indices: impl IntoIterator<Item = Expr>) -> Expr {
        indices.into_iter().fold(base, |acc, idx| Expr::Index {
            base: Box::new(acc),
            index: Box::new(idx),
        })
    }

    /// If this is a chain of `Index` nodes over an identifier, returns the
    /// array name and the index expressions from outermost dimension to
    /// innermost.
    pub fn as_array_access(&self) -> Option<(&str, Vec<&Expr>)> {
        let mut indices = Vec::new();
        let mut cur = self;
        while let Expr::Index { base, index } = cur {
            indices.push(index.as_ref());
            cur = base;
        }
        if indices.is_empty() {
            return None;
        }
        indices.reverse();
        match cur {
            Expr::Ident(name) => Some((name, indices)),
            _ => None,
        }
    }

    /// Returns the constant integer value if the expression is a literal
    /// (possibly negated).
    pub fn as_const_int(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            Expr::Unary {
                op: UnOp::Neg,
                operand,
            } => operand.as_const_int().map(|v| -v),
            _ => None,
        }
    }
}

/// The OpenMP loop schedule kinds used by the `Pragma.OMPFor` module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpScheduleKind {
    /// Contiguous/round-robin chunks fixed at loop entry.
    Static,
    /// Chunks handed to threads on demand.
    Dynamic,
}

impl fmt::Display for OmpScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpScheduleKind::Static => write!(f, "static"),
            OmpScheduleKind::Dynamic => write!(f, "dynamic"),
        }
    }
}

/// `schedule(kind, chunk)` clause of an `omp parallel for` pragma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OmpSchedule {
    /// `static` or `dynamic`.
    pub kind: OmpScheduleKind,
    /// Chunk size; `None` means the implementation default.
    pub chunk: Option<u32>,
}

/// A data-sharing clause of an `omp parallel for` pragma.
///
/// These are the clause shapes the static race analyzer names as fixes
/// for scalar dependences carried by a parallel loop: a clause-less
/// `omp parallel for` on `s = s + A[i]` is a data race, while the same
/// pragma with `reduction(+:s)` is well-defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OmpClause {
    /// `reduction(op:var)` — each thread accumulates a private partial
    /// value, combined with `op` at the join.
    Reduction {
        /// The (associative) combining operator.
        op: BinOp,
        /// The reduced scalar.
        var: String,
    },
    /// `private(var)` — each thread works on its own copy; the original
    /// value is undefined after the loop.
    Private {
        /// The privatized scalar.
        var: String,
    },
}

/// A pragma attached to a statement.
///
/// `LocusLoop`/`LocusBlock` are the region annotations of Sec. II of the
/// paper; the remaining variants are the compiler-specific pragmas the
/// `Pragmas` module collection inserts (Sec. IV-A.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pragma {
    /// `#pragma @Locus loop=NAME` — names the following loop nest.
    LocusLoop(String),
    /// `#pragma @Locus block=NAME` — names the following block.
    LocusBlock(String),
    /// `#pragma ivdep` — asserts no loop-carried dependences.
    Ivdep,
    /// `#pragma vector always` — forces vectorization.
    VectorAlways,
    /// `#pragma omp parallel for [schedule(...)] [reduction(...)|private(...)]*`.
    OmpParallelFor {
        /// Optional `schedule(kind, chunk)` clause.
        schedule: Option<OmpSchedule>,
        /// Data-sharing clauses, in emission order.
        clauses: Vec<OmpClause>,
    },
    /// Any other pragma, preserved verbatim.
    Raw(String),
}

impl Pragma {
    /// Returns the Locus region identifier if this is a region annotation.
    pub fn region_id(&self) -> Option<&str> {
        match self {
            Pragma::LocusLoop(id) | Pragma::LocusBlock(id) => Some(id),
            _ => None,
        }
    }
}

/// A `for` loop. After parsing, `body` is always a block statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Loop initialization: either a declaration statement or an
    /// expression statement (or absent).
    pub init: Option<Box<Stmt>>,
    /// Loop condition; absent means an infinite loop.
    pub cond: Option<Expr>,
    /// Step expression evaluated after each iteration.
    pub step: Option<Expr>,
    /// Loop body.
    pub body: Box<Stmt>,
}

/// The kind of a statement. (Variant payload fields are conventional
/// and carry no per-field docs.)
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement `expr;`.
    Expr(Expr),
    /// Variable declaration, possibly with array dimensions and an
    /// initializer: `double A[N][M];`, `int i = 0;`.
    Decl {
        ty: Type,
        name: String,
        dims: Vec<Expr>,
        init: Option<Expr>,
    },
    /// `{ ... }` block.
    Block(Vec<Stmt>),
    /// `if` / `else`.
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    /// `for` loop.
    For(ForLoop),
    /// `while` loop.
    While { cond: Expr, body: Box<Stmt> },
    /// `return` with optional value.
    Return(Option<Expr>),
    /// Empty statement `;`.
    Empty,
}

/// A statement together with the pragmas that precede it.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Pragmas attached in front of the statement.
    pub pragmas: Vec<Pragma>,
    /// The statement itself.
    pub kind: StmtKind,
}

impl Stmt {
    /// Wraps a [`StmtKind`] with no pragmas.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt {
            pragmas: Vec::new(),
            kind,
        }
    }

    /// An expression statement.
    pub fn expr(expr: Expr) -> Stmt {
        Stmt::new(StmtKind::Expr(expr))
    }

    /// A block statement from the given children.
    pub fn block(stmts: Vec<Stmt>) -> Stmt {
        Stmt::new(StmtKind::Block(stmts))
    }

    /// Returns `true` if this statement is a `for` loop.
    pub fn is_for(&self) -> bool {
        matches!(self.kind, StmtKind::For(_))
    }

    /// Returns the `for` loop payload, if any.
    pub fn as_for(&self) -> Option<&ForLoop> {
        match &self.kind {
            StmtKind::For(f) => Some(f),
            _ => None,
        }
    }

    /// Mutable access to the `for` loop payload, if any.
    pub fn as_for_mut(&mut self) -> Option<&mut ForLoop> {
        match &mut self.kind {
            StmtKind::For(f) => Some(f),
            _ => None,
        }
    }

    /// The statements of a block, treating any non-block statement as a
    /// single-element sequence. Useful when navigating loop bodies.
    pub fn body_stmts(&self) -> &[Stmt] {
        match &self.kind {
            StmtKind::Block(stmts) => stmts,
            _ => std::slice::from_ref(self),
        }
    }

    /// Returns the Locus region identifier attached to this statement, if
    /// any.
    pub fn region_id(&self) -> Option<&str> {
        self.pragmas.iter().find_map(|p| p.region_id())
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Element type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
    /// Array dimensions for parameters declared like `double A[N][N]`.
    /// The first dimension may be empty (`[]`), encoded as `Expr::IntLit(0)`.
    pub dims: Vec<Expr>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition.
    Function(Function),
    /// Global declaration (scalars and arrays).
    Global(Stmt),
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Iterates over the functions of the program.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            Item::Global(_) => None,
        })
    }

    /// Mutable iteration over the functions of the program.
    pub fn functions_mut(&mut self) -> impl Iterator<Item = &mut Function> {
        self.items.iter_mut().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            Item::Global(_) => None,
        })
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions_mut().find(|f| f.name == name)
    }

    /// Iterates over global declarations.
    pub fn globals(&self) -> impl Iterator<Item = &Stmt> {
        self.items.iter().filter_map(|item| match item {
            Item::Global(s) => Some(s),
            Item::Function(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_access_chain_is_recovered_in_dimension_order() {
        // A[i][j]
        let e = Expr::index(Expr::ident("A"), [Expr::ident("i"), Expr::ident("j")]);
        let (name, idx) = e.as_array_access().expect("array access");
        assert_eq!(name, "A");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0], &Expr::ident("i"));
        assert_eq!(idx[1], &Expr::ident("j"));
    }

    #[test]
    fn scalar_ident_is_not_array_access() {
        assert!(Expr::ident("x").as_array_access().is_none());
    }

    #[test]
    fn const_int_handles_negation() {
        let e = Expr::Unary {
            op: UnOp::Neg,
            operand: Box::new(Expr::int(7)),
        };
        assert_eq!(e.as_const_int(), Some(-7));
        assert_eq!(Expr::ident("x").as_const_int(), None);
    }

    #[test]
    fn compound_assign_expands_to_bin_op() {
        assert_eq!(AssignOp::AddAssign.to_bin_op(), Some(BinOp::Add));
        assert_eq!(AssignOp::Assign.to_bin_op(), None);
    }

    #[test]
    fn body_stmts_of_non_block_is_self() {
        let s = Stmt::expr(Expr::int(1));
        assert_eq!(s.body_stmts().len(), 1);
        let b = Stmt::block(vec![Stmt::expr(Expr::int(1)), Stmt::expr(Expr::int(2))]);
        assert_eq!(b.body_stmts().len(), 2);
    }

    #[test]
    fn region_id_comes_from_pragmas() {
        let mut s = Stmt::expr(Expr::int(1));
        assert_eq!(s.region_id(), None);
        s.pragmas.push(Pragma::LocusLoop("matmul".into()));
        assert_eq!(s.region_id(), Some("matmul"));
    }

    #[test]
    fn type_display_round_trips_pointers() {
        let t = Type::Ptr(Box::new(Type::Double));
        assert_eq!(t.to_string(), "double*");
    }
}
