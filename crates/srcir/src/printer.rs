//! Unparser: renders the AST back to C-like source text.
//!
//! The Locus system round-trips source through external tools, so the
//! printed form must itself be parseable: `parse(print(ast))` is tested to
//! be a fixpoint (see the property tests in this crate).

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for item in &program.items {
        match item {
            Item::Global(stmt) => print_stmt_into(&mut out, stmt, 0),
            Item::Function(f) => print_function_into(&mut out, f),
        }
    }
    out
}

/// Renders a single statement with the given indentation level.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    print_stmt_into(&mut out, stmt, 0);
    out
}

/// Renders an expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    print_expr_into(&mut out, expr, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_function_into(out: &mut String, f: &Function) {
    let _ = write!(out, "{} {}(", f.ret, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", p.ty, p.name);
        for d in &p.dims {
            if d == &Expr::IntLit(0) {
                out.push_str("[]");
            } else {
                let _ = write!(out, "[{}]", print_expr(d));
            }
        }
    }
    out.push_str(") {\n");
    for stmt in &f.body {
        print_stmt_into(out, stmt, 1);
    }
    out.push_str("}\n");
}

fn print_pragma(out: &mut String, pragma: &Pragma, level: usize) {
    indent(out, level);
    match pragma {
        Pragma::LocusLoop(id) => {
            let _ = writeln!(out, "#pragma @Locus loop={id}");
        }
        Pragma::LocusBlock(id) => {
            let _ = writeln!(out, "#pragma @Locus block={id}");
        }
        Pragma::Ivdep => {
            let _ = writeln!(out, "#pragma ivdep");
        }
        Pragma::VectorAlways => {
            let _ = writeln!(out, "#pragma vector always");
        }
        Pragma::OmpParallelFor { schedule, clauses } => {
            out.push_str("#pragma omp parallel for");
            match schedule {
                None => {}
                Some(OmpSchedule { kind, chunk: None }) => {
                    let _ = write!(out, " schedule({kind})");
                }
                Some(OmpSchedule {
                    kind,
                    chunk: Some(c),
                }) => {
                    let _ = write!(out, " schedule({kind}, {c})");
                }
            }
            for clause in clauses {
                match clause {
                    OmpClause::Reduction { op, var } => {
                        let _ = write!(out, " reduction({}:{var})", op.symbol());
                    }
                    OmpClause::Private { var } => {
                        let _ = write!(out, " private({var})");
                    }
                }
            }
            out.push('\n');
        }
        Pragma::Raw(text) => {
            let _ = writeln!(out, "#pragma {text}");
        }
    }
}

fn print_stmt_into(out: &mut String, stmt: &Stmt, level: usize) {
    for pragma in &stmt.pragmas {
        print_pragma(out, pragma, level);
    }
    match &stmt.kind {
        StmtKind::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            indent(out, level);
            print_expr_into(out, e, 0);
            out.push_str(";\n");
        }
        StmtKind::Decl {
            ty,
            name,
            dims,
            init,
        } => {
            indent(out, level);
            let _ = write!(out, "{ty} {name}");
            for d in dims {
                let _ = write!(out, "[{}]", print_expr(d));
            }
            if let Some(init) = init {
                let _ = write!(out, " = {}", print_expr(init));
            }
            out.push_str(";\n");
        }
        StmtKind::Block(stmts) => {
            indent(out, level);
            out.push_str("{\n");
            for s in stmts {
                print_stmt_into(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(out, level);
            let _ = write!(out, "if ({}) ", print_expr(cond));
            print_branch(out, then_branch, level);
            if let Some(else_branch) = else_branch {
                indent(out, level);
                out.push_str("else ");
                print_branch(out, else_branch, level);
            }
        }
        StmtKind::For(f) => {
            indent(out, level);
            out.push_str("for (");
            if let Some(init) = &f.init {
                match &init.kind {
                    StmtKind::Decl { ty, name, init, .. } => {
                        let _ = write!(out, "{ty} {name}");
                        if let Some(e) = init {
                            let _ = write!(out, " = {}", print_expr(e));
                        }
                    }
                    StmtKind::Expr(e) => {
                        print_expr_into(out, e, 0);
                    }
                    other => {
                        let _ = write!(out, "/* unsupported init {other:?} */");
                    }
                }
            }
            out.push_str("; ");
            if let Some(cond) = &f.cond {
                print_expr_into(out, cond, 0);
            }
            out.push_str("; ");
            if let Some(step) = &f.step {
                print_expr_into(out, step, 0);
            }
            out.push_str(") ");
            print_branch(out, &f.body, level);
        }
        StmtKind::While { cond, body } => {
            indent(out, level);
            let _ = write!(out, "while ({}) ", print_expr(cond));
            print_branch(out, body, level);
        }
        StmtKind::Return(value) => {
            indent(out, level);
            match value {
                Some(v) => {
                    let _ = writeln!(out, "return {};", print_expr(v));
                }
                None => out.push_str("return;\n"),
            }
        }
    }
}

/// Prints a statement used as a branch/body: blocks inline their brace on
/// the current line, other statements go on the next line.
fn print_branch(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::Block(stmts) if stmt.pragmas.is_empty() => {
            out.push_str("{\n");
            for s in stmts {
                print_stmt_into(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        _ => {
            out.push('\n');
            print_stmt_into(out, stmt, level + 1);
        }
    }
}

/// Operator precedence for parenthesization while printing.
fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
    }
}

fn print_expr_into(out: &mut String, expr: &Expr, parent_prec: u8) {
    match expr {
        Expr::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::FloatLit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Expr::StrLit(s) => {
            let escaped = s
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            let _ = write!(out, "\"{escaped}\"");
        }
        Expr::Ident(name) => {
            let _ = write!(out, "{name}");
        }
        Expr::Index { base, index } => {
            print_expr_into(out, base, 8);
            out.push('[');
            print_expr_into(out, index, 0);
            out.push(']');
        }
        Expr::Call { callee, args } => {
            let _ = write!(out, "{callee}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr_into(out, a, 0);
            }
            out.push(')');
        }
        Expr::Unary { op, operand } => {
            let needs_parens = parent_prec > 7;
            if needs_parens {
                out.push('(');
            }
            out.push_str(op.symbol());
            print_expr_into(out, operand, 7);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let prec = bin_prec(*op);
            let needs_parens = prec < parent_prec;
            if needs_parens {
                out.push('(');
            }
            print_expr_into(out, lhs, prec);
            let _ = write!(out, " {} ", op.symbol());
            // Right operand needs one more level to preserve left
            // associativity on reparse.
            print_expr_into(out, rhs, prec + 1);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Assign { op, lhs, rhs } => {
            let needs_parens = parent_prec > 0;
            if needs_parens {
                out.push('(');
            }
            print_expr_into(out, lhs, 7);
            let _ = write!(out, " {} ", op.symbol());
            print_expr_into(out, rhs, 0);
            if needs_parens {
                out.push(')');
            }
        }
        Expr::Cast { ty, expr } => {
            let needs_parens = parent_prec > 7;
            if needs_parens {
                out.push('(');
            }
            let _ = write!(out, "({ty})");
            print_expr_into(out, expr, 7);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn round_trip_expr(src: &str) -> String {
        print_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn prints_precedence_with_minimal_parens() {
        assert_eq!(round_trip_expr("a + b * c"), "a + b * c");
        assert_eq!(round_trip_expr("(a + b) * c"), "(a + b) * c");
        assert_eq!(round_trip_expr("a - (b - c)"), "a - (b - c)");
        assert_eq!(round_trip_expr("a - b - c"), "a - b - c");
    }

    #[test]
    fn prints_modulo_index() {
        assert_eq!(round_trip_expr("A[(t+1)%2][i][j]"), "A[(t + 1) % 2][i][j]");
    }

    #[test]
    fn reparse_is_fixpoint_for_program() {
        let src = r#"
        double A[8][8];
        int main() {
            int i;
            #pragma @Locus loop=k
            for (i = 0; i < 8; i++)
                A[i][0] = 2.0 * A[i][0] + 1.0;
            return 0;
        }
        "#;
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "printed source:\n{printed}");
    }

    #[test]
    fn pragmas_are_printed_before_statement() {
        let src = "void f(int n) {\n#pragma omp parallel for schedule(dynamic, 4)\nfor (int i = 0; i < n; i++) { n = n; }\n}";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("#pragma omp parallel for schedule(dynamic, 4)"));
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn float_literals_keep_a_decimal_point() {
        assert_eq!(round_trip_expr("2.0 * x"), "2.0 * x");
    }

    #[test]
    fn assignment_in_expression_position_is_parenthesized() {
        // `a + (b = c)` must not print as `a + b = c`.
        let e = Expr::bin(
            BinOp::Add,
            Expr::ident("a"),
            Expr::assign(Expr::ident("b"), Expr::ident("c")),
        );
        assert_eq!(print_expr(&e), "a + (b = c)");
    }
}
