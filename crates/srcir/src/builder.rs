//! Programmatic AST construction helpers.
//!
//! Transformations and the benchmark corpus build loops directly rather
//! than formatting and re-parsing source strings. These helpers keep that
//! construction terse and uniform: every generated loop has the canonical
//! shape `for (int v = lo; v < hi; v += step) { ... }`.

use crate::ast::*;

/// Builds `for (int var = lo; var < hi; var += step) { body }`.
///
/// # Panics
///
/// Panics if `step` is zero — such a loop would never terminate.
pub fn for_loop(var: &str, lo: Expr, hi: Expr, step: i64, body: Vec<Stmt>) -> Stmt {
    assert!(step != 0, "loop step must be non-zero");
    let step_expr = if step == 1 {
        Expr::Assign {
            op: AssignOp::AddAssign,
            lhs: Box::new(Expr::ident(var)),
            rhs: Box::new(Expr::int(1)),
        }
    } else {
        Expr::Assign {
            op: AssignOp::AddAssign,
            lhs: Box::new(Expr::ident(var)),
            rhs: Box::new(Expr::int(step)),
        }
    };
    Stmt::new(StmtKind::For(ForLoop {
        init: Some(Box::new(Stmt::new(StmtKind::Decl {
            ty: Type::Int,
            name: var.to_string(),
            dims: Vec::new(),
            init: Some(lo),
        }))),
        cond: Some(Expr::bin(
            if step > 0 { BinOp::Lt } else { BinOp::Gt },
            Expr::ident(var),
            hi,
        )),
        step: Some(step_expr),
        body: Box::new(Stmt::block(body)),
    }))
}

/// Builds a perfect loop nest from `(var, lo, hi)` triples with unit step,
/// innermost body last.
pub fn loop_nest(bounds: &[(&str, Expr, Expr)], body: Vec<Stmt>) -> Stmt {
    let mut stmt = body;
    for (var, lo, hi) in bounds.iter().rev() {
        stmt = vec![for_loop(var, lo.clone(), hi.clone(), 1, stmt)];
    }
    match stmt.into_iter().next() {
        Some(s) => s,
        None => Stmt::new(StmtKind::Empty),
    }
}

/// Builds a scalar declaration `ty name;` or `ty name = init;`.
pub fn decl(ty: Type, name: &str, init: Option<Expr>) -> Stmt {
    Stmt::new(StmtKind::Decl {
        ty,
        name: name.to_string(),
        dims: Vec::new(),
        init,
    })
}

/// Builds an array declaration `ty name[d0][d1]...;`.
pub fn array_decl(ty: Type, name: &str, dims: &[i64]) -> Stmt {
    Stmt::new(StmtKind::Decl {
        ty,
        name: name.to_string(),
        dims: dims.iter().map(|&d| Expr::int(d)).collect(),
        init: None,
    })
}

/// Builds `lhs = rhs;` as a statement.
pub fn assign_stmt(lhs: Expr, rhs: Expr) -> Stmt {
    Stmt::expr(Expr::assign(lhs, rhs))
}

/// Builds `lhs += rhs;` as a statement.
pub fn add_assign_stmt(lhs: Expr, rhs: Expr) -> Stmt {
    Stmt::expr(Expr::Assign {
        op: AssignOp::AddAssign,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    })
}

/// `min(a, b)` as an expression the machine understands natively.
pub fn min_expr(a: Expr, b: Expr) -> Expr {
    Expr::Call {
        callee: "min".to_string(),
        args: vec![a, b],
    }
}

/// `max(a, b)` as an expression the machine understands natively.
pub fn max_expr(a: Expr, b: Expr) -> Expr {
    Expr::Call {
        callee: "max".to_string(),
        args: vec![a, b],
    }
}

/// Attaches a Locus loop region annotation to a statement.
pub fn with_loop_region(mut stmt: Stmt, id: &str) -> Stmt {
    stmt.pragmas.insert(0, Pragma::LocusLoop(id.to_string()));
    stmt
}

/// Builds a whole single-function program: `void kernel(<params>) { body }`
/// plus the given globals.
pub fn kernel_program(
    globals: Vec<Stmt>,
    name: &str,
    params: Vec<Param>,
    body: Vec<Stmt>,
) -> Program {
    let mut items: Vec<Item> = globals.into_iter().map(Item::Global).collect();
    items.push(Item::Function(Function {
        ret: Type::Void,
        name: name.to_string(),
        params,
        body,
    }));
    Program { items }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_stmt;

    #[test]
    fn for_loop_has_canonical_shape() {
        let l = for_loop("i", Expr::int(0), Expr::ident("n"), 1, vec![]);
        let f = l.as_for().unwrap();
        assert!(matches!(f.cond, Some(Expr::Binary { op: BinOp::Lt, .. })));
        assert_eq!(print_stmt(&l), "for (int i = 0; i < n; i += 1) {\n}\n");
    }

    #[test]
    fn negative_step_flips_comparison() {
        let l = for_loop("i", Expr::int(10), Expr::int(0), -1, vec![]);
        let f = l.as_for().unwrap();
        assert!(matches!(f.cond, Some(Expr::Binary { op: BinOp::Gt, .. })));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_panics() {
        let _ = for_loop("i", Expr::int(0), Expr::int(1), 0, vec![]);
    }

    #[test]
    fn loop_nest_nests_in_order() {
        let nest = loop_nest(
            &[
                ("i", Expr::int(0), Expr::int(4)),
                ("j", Expr::int(0), Expr::int(4)),
            ],
            vec![assign_stmt(
                Expr::index(Expr::ident("A"), [Expr::ident("i"), Expr::ident("j")]),
                Expr::int(0),
            )],
        );
        let outer = nest.as_for().unwrap();
        let inner = outer.body.body_stmts()[0].as_for().unwrap();
        assert!(inner.body.body_stmts()[0].kind != StmtKind::Empty);
    }

    #[test]
    fn region_annotation_is_first_pragma() {
        let l = with_loop_region(for_loop("i", Expr::int(0), Expr::int(4), 1, vec![]), "r");
        assert_eq!(l.region_id(), Some("r"));
    }
}
