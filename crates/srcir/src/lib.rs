//! Source-level intermediate representation for the Locus system.
//!
//! The Locus paper orchestrates *source-to-source* transformations of C,
//! C++ and Fortran programs. This crate provides the equivalent substrate
//! for the Rust reproduction: a small C-like language ("mini-C") with
//!
//! * a lexer and recursive-descent parser ([`parse_program`]),
//! * a typed abstract syntax tree ([`ast`]),
//! * an unparser that renders the AST back to C-like source
//!   ([`printer::print_program`]),
//! * `#pragma @Locus` code-region annotations ([`region`]),
//! * the paper's hierarchical statement indexing, e.g. `"0.0.1"`
//!   ([`index::HierIndex`]),
//! * and region content hashing used to detect source drift between the
//!   application code and its optimization program ([`hash`]).
//!
//! The language is deliberately small but covers everything exercised by
//! the paper's evaluation kernels: multi-dimensional arrays, `for`/`while`
//! loops, `if`/`else`, scalar declarations, compound assignment, function
//! calls, and compiler pragmas (`ivdep`, `vector always`,
//! `omp parallel for`).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), locus_srcir::ParseError> {
//! let src = r#"
//! int main() {
//!     int i;
//!     double A[16];
//!     #pragma @Locus loop=init
//!     for (i = 0; i < 16; i = i + 1)
//!         A[i] = 0.0;
//!     return 0;
//! }
//! "#;
//! let program = locus_srcir::parse_program(src)?;
//! let regions = locus_srcir::region::find_regions(&program);
//! assert_eq!(regions.len(), 1);
//! assert_eq!(regions[0].id, "init");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod hash;
pub mod index;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod region;
pub mod token;
pub mod visit;

pub use ast::{
    AssignOp, BinOp, Expr, ForLoop, Function, Item, OmpClause, OmpSchedule, OmpScheduleKind, Param,
    Pragma, Program, Stmt, StmtKind, Type, UnOp,
};
pub use index::HierIndex;
pub use lexer::LexError;
pub use parser::{parse_expr, parse_program, ParseError};
pub use printer::{print_program, print_stmt};
pub use region::{CodeRegion, RegionKind, RegionRef};
