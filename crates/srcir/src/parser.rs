//! Recursive-descent parser for the mini-C source language.

use std::error::Error;
use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::token::{SpannedToken, Token};

/// Error produced while parsing source text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token (0 when at end of input).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(err: LexError) -> ParseError {
        ParseError {
            line: err.line,
            message: err.message,
        }
    }
}

/// Parses a whole mini-C translation unit.
///
/// # Errors
///
/// Returns [`ParseError`] (which also wraps lexical errors) on malformed
/// input.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

/// Parses a single expression; useful in tests and snippet splicing.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.err_here("trailing tokens after expression"));
    }
    Ok(expr)
}

pub(crate) struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.err_here(format!("expected `{want}`, found `{t}`"))),
            None => Err(self.err_here(format!("expected `{want}`, found end of input"))),
        }
    }

    fn eat(&mut self, want: &Token) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(name),
            Some(t) => Err(self.err_here(format!("expected identifier, found `{t}`"))),
            None => Err(self.err_here("expected identifier, found end of input")),
        }
    }

    fn is_type_keyword(token: Option<&Token>) -> bool {
        matches!(
            token,
            Some(Token::Ident(name))
                if matches!(name.as_str(), "int" | "double" | "float" | "char" | "void")
        )
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let name = self.expect_ident()?;
        let mut ty = match name.as_str() {
            "int" => Type::Int,
            "double" => Type::Double,
            "float" => Type::Float,
            "char" => Type::Char,
            "void" => Type::Void,
            other => return Err(self.err_here(format!("unknown type `{other}`"))),
        };
        while self.eat(&Token::Star) {
            ty = Type::Ptr(Box::new(ty));
        }
        Ok(ty)
    }

    // ---- program structure -------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            // Pragmas before top-level items attach to the following
            // global declaration.
            let pragmas = self.collect_pragmas()?;
            if !Self::is_type_keyword(self.peek()) {
                return Err(self.err_here("expected a type at top level"));
            }
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            if self.peek() == Some(&Token::LParen) {
                if !pragmas.is_empty() {
                    return Err(self.err_here("pragmas cannot precede a function definition"));
                }
                items.push(Item::Function(self.function(ty, name)?));
            } else {
                let mut stmts = self.decl_tail(ty, name)?;
                for mut s in stmts.drain(..) {
                    s.pragmas = pragmas.clone();
                    items.push(Item::Global(s));
                }
            }
        }
        Ok(Program { items })
    }

    fn function(&mut self, ret: Type, name: String) -> Result<Function, ParseError> {
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                if self.peek() == Some(&Token::Ident("void".into()))
                    && params.is_empty()
                    && self.peek_at(1) == Some(&Token::RParen)
                {
                    self.bump();
                    break;
                }
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                let mut dims = Vec::new();
                while self.eat(&Token::LBracket) {
                    if self.eat(&Token::RBracket) {
                        dims.push(Expr::IntLit(0));
                    } else {
                        dims.push(self.expr()?);
                        self.expect(&Token::RBracket)?;
                    }
                }
                params.push(Param {
                    ty,
                    name: pname,
                    dims,
                });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect(&Token::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err_here("unterminated function body"));
            }
            body.push(self.stmt()?);
        }
        Ok(Function {
            ret,
            name,
            params,
            body,
        })
    }

    // ---- statements ---------------------------------------------------

    fn collect_pragmas(&mut self) -> Result<Vec<Pragma>, ParseError> {
        let mut pragmas = Vec::new();
        while let Some(Token::Pragma(_)) = self.peek() {
            let Some(Token::Pragma(text)) = self.bump() else {
                unreachable!()
            };
            pragmas.push(parse_pragma(&text).map_err(|m| self.err_here(m))?);
        }
        Ok(pragmas)
    }

    pub(crate) fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pragmas = self.collect_pragmas()?;
        let mut stmt = self.stmt_no_pragma()?;
        stmt.pragmas = pragmas;
        Ok(stmt)
    }

    fn stmt_no_pragma(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Semi) => {
                self.bump();
                Ok(Stmt::new(StmtKind::Empty))
            }
            Some(Token::LBrace) => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Token::RBrace) {
                    if self.peek().is_none() {
                        return Err(self.err_here("unterminated block"));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::new(StmtKind::Block(stmts)))
            }
            Some(Token::Ident(name)) => match name.as_str() {
                "for" => self.for_stmt(),
                "while" => self.while_stmt(),
                "if" => self.if_stmt(),
                "return" => {
                    self.bump();
                    if self.eat(&Token::Semi) {
                        Ok(Stmt::new(StmtKind::Return(None)))
                    } else {
                        let value = self.expr()?;
                        self.expect(&Token::Semi)?;
                        Ok(Stmt::new(StmtKind::Return(Some(value))))
                    }
                }
                _ if Self::is_type_keyword(self.peek()) => {
                    let ty = self.parse_type()?;
                    let name = self.expect_ident()?;
                    let mut decls = self.decl_tail(ty, name)?;
                    if decls.len() == 1 {
                        Ok(decls.pop().expect("one declaration"))
                    } else {
                        // `int i, j, k;` expands to a flat run of decls;
                        // wrap in a block marker-free sequence by splicing.
                        Ok(Stmt::new(StmtKind::Block(decls)))
                    }
                }
                _ => {
                    let expr = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::expr(expr))
                }
            },
            Some(_) => {
                let expr = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::expr(expr))
            }
            None => Err(self.err_here("expected statement, found end of input")),
        }
    }

    /// Parses the rest of a declaration after `type name`, including
    /// comma-separated declarators. Consumes the trailing `;`.
    fn decl_tail(&mut self, ty: Type, first_name: String) -> Result<Vec<Stmt>, ParseError> {
        let mut decls = Vec::new();
        let mut name = first_name;
        loop {
            let mut dims = Vec::new();
            while self.eat(&Token::LBracket) {
                dims.push(self.expr()?);
                self.expect(&Token::RBracket)?;
            }
            let init = if self.eat(&Token::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            decls.push(Stmt::new(StmtKind::Decl {
                ty: ty.clone(),
                name,
                dims,
                init,
            }));
            if self.eat(&Token::Comma) {
                name = self.expect_ident()?;
            } else {
                break;
            }
        }
        self.expect(&Token::Semi)?;
        Ok(decls)
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // `for`
        self.expect(&Token::LParen)?;
        let init = if self.eat(&Token::Semi) {
            None
        } else if Self::is_type_keyword(self.peek()) {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let init = if self.eat(&Token::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(&Token::Semi)?;
            Some(Box::new(Stmt::new(StmtKind::Decl {
                ty,
                name,
                dims: Vec::new(),
                init,
            })))
        } else {
            let e = self.expr()?;
            self.expect(&Token::Semi)?;
            Some(Box::new(Stmt::expr(e)))
        };
        let cond = if self.peek() == Some(&Token::Semi) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Token::Semi)?;
        let step = if self.peek() == Some(&Token::RParen) {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&Token::RParen)?;
        let body = self.stmt()?;
        Ok(Stmt::new(StmtKind::For(ForLoop {
            init,
            cond,
            step,
            body: Box::new(normalize_body(body)),
        })))
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // `while`
        self.expect(&Token::LParen)?;
        let cond = self.expr()?;
        self.expect(&Token::RParen)?;
        let body = self.stmt()?;
        Ok(Stmt::new(StmtKind::While {
            cond,
            body: Box::new(normalize_body(body)),
        }))
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // `if`
        self.expect(&Token::LParen)?;
        let cond = self.expr()?;
        self.expect(&Token::RParen)?;
        let then_branch = Box::new(self.stmt()?);
        let else_branch = if self.peek() == Some(&Token::Ident("else".into())) {
            self.bump();
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::new(StmtKind::If {
            cond,
            then_branch,
            else_branch,
        }))
    }

    // ---- expressions ----------------------------------------------------

    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.logical_or()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(AssignOp::Assign),
            Some(Token::PlusEq) => Some(AssignOp::AddAssign),
            Some(Token::MinusEq) => Some(AssignOp::SubAssign),
            Some(Token::StarEq) => Some(AssignOp::MulAssign),
            Some(Token::SlashEq) => Some(AssignOp::DivAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.assignment()?;
            Ok(Expr::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.eat(&Token::PipePipe) {
            let rhs = self.logical_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat(&Token::AmpAmp) {
            let rhs = self.equality()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Token::EqEq) => BinOp::Eq,
                Some(Token::Ne) => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Token::Lt) => BinOp::Lt,
                Some(Token::Le) => BinOp::Le,
                Some(Token::Gt) => BinOp::Gt,
                Some(Token::Ge) => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Token::Minus) => Some(UnOp::Neg),
            Some(Token::Bang) => Some(UnOp::Not),
            Some(Token::Star) => Some(UnOp::Deref),
            Some(Token::Amp) => Some(UnOp::Addr),
            Some(Token::PlusPlus) => {
                // Prefix increment: `++i` == `i += 1`.
                self.bump();
                let operand = self.unary()?;
                return Ok(Expr::Assign {
                    op: AssignOp::AddAssign,
                    lhs: Box::new(operand),
                    rhs: Box::new(Expr::IntLit(1)),
                });
            }
            Some(Token::MinusMinus) => {
                self.bump();
                let operand = self.unary()?;
                return Ok(Expr::Assign {
                    op: AssignOp::SubAssign,
                    lhs: Box::new(operand),
                    rhs: Box::new(Expr::IntLit(1)),
                });
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op,
                operand: Box::new(operand),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::LBracket) => {
                    self.bump();
                    let index = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                Some(Token::PlusPlus) => {
                    // Postfix increment used for its effect only.
                    self.bump();
                    expr = Expr::Assign {
                        op: AssignOp::AddAssign,
                        lhs: Box::new(expr),
                        rhs: Box::new(Expr::IntLit(1)),
                    };
                }
                Some(Token::MinusMinus) => {
                    self.bump();
                    expr = Expr::Assign {
                        op: AssignOp::SubAssign,
                        lhs: Box::new(expr),
                        rhs: Box::new(Expr::IntLit(1)),
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                // Either a cast `(type) expr` or a parenthesized expression.
                if Self::is_type_keyword(self.peek_at(1)) {
                    self.bump();
                    let ty = self.parse_type()?;
                    self.expect(&Token::RParen)?;
                    let inner = self.unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        expr: Box::new(inner),
                    });
                }
                self.bump();
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Int(v)) => {
                let v = *v;
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Some(Token::Float(v)) => {
                let v = *v;
                self.bump();
                Ok(Expr::FloatLit(v))
            }
            Some(Token::Str(_)) => {
                let Some(Token::Str(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::StrLit(s))
            }
            Some(Token::Ident(_)) => {
                let Some(Token::Ident(name)) = self.bump() else {
                    unreachable!()
                };
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect(&Token::RParen)?;
                    }
                    Ok(Expr::Call { callee: name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Some(t) => Err(self.err_here(format!("unexpected token `{t}` in expression"))),
            None => Err(self.err_here("unexpected end of input in expression")),
        }
    }
}

/// Ensures a loop body is a block statement (single statements are wrapped).
fn normalize_body(body: Stmt) -> Stmt {
    if matches!(body.kind, StmtKind::Block(_)) && body.pragmas.is_empty() {
        body
    } else {
        Stmt::block(vec![body])
    }
}

/// Parses the text of a `#pragma` directive into a structured [`Pragma`].
pub fn parse_pragma(text: &str) -> Result<Pragma, String> {
    let trimmed = text.trim();
    if let Some(rest) = trimmed.strip_prefix("@Locus") {
        let rest = rest.trim();
        if let Some(id) = rest.strip_prefix("loop=") {
            return Ok(Pragma::LocusLoop(id.trim().to_string()));
        }
        if let Some(id) = rest.strip_prefix("block=") {
            return Ok(Pragma::LocusBlock(id.trim().to_string()));
        }
        return Err(format!("malformed @Locus pragma `{trimmed}`"));
    }
    if trimmed == "ivdep" {
        return Ok(Pragma::Ivdep);
    }
    if trimmed == "vector always" {
        return Ok(Pragma::VectorAlways);
    }
    if let Some(rest) = trimmed.strip_prefix("omp parallel for") {
        let mut rest = rest.trim_start();
        let mut schedule = None;
        let mut clauses = Vec::new();
        while !rest.is_empty() {
            let Some((name, tail)) = rest.split_once('(') else {
                return Err(format!("unsupported omp clause `{rest}`"));
            };
            let (body, after) = tail
                .split_once(')')
                .ok_or_else(|| format!("malformed `{}` clause in `{trimmed}`", name.trim()))?;
            let body = body.trim();
            match name.trim() {
                "schedule" => {
                    let mut parts = body.splitn(2, ',');
                    let kind = match parts.next().map(str::trim) {
                        Some("static") => OmpScheduleKind::Static,
                        Some("dynamic") => OmpScheduleKind::Dynamic,
                        other => return Err(format!("unknown schedule kind `{other:?}`")),
                    };
                    let chunk = match parts.next().map(str::trim) {
                        Some(text) => Some(
                            text.parse::<u32>()
                                .map_err(|_| format!("malformed chunk size `{text}`"))?,
                        ),
                        None => None,
                    };
                    schedule = Some(OmpSchedule { kind, chunk });
                }
                "reduction" => {
                    let (op, var) = body
                        .split_once(':')
                        .ok_or_else(|| format!("malformed reduction clause in `{trimmed}`"))?;
                    let op = match op.trim() {
                        "+" => BinOp::Add,
                        "-" => BinOp::Sub,
                        "*" => BinOp::Mul,
                        other => return Err(format!("unsupported reduction operator `{other}`")),
                    };
                    clauses.push(OmpClause::Reduction {
                        op,
                        var: var.trim().to_string(),
                    });
                }
                "private" => clauses.push(OmpClause::Private {
                    var: body.to_string(),
                }),
                other => return Err(format!("unsupported omp clause `{other}`")),
            }
            rest = after.trim_start();
        }
        return Ok(Pragma::OmpParallelFor { schedule, clauses });
    }
    Ok(Pragma::Raw(trimmed.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_matmul_kernel_from_paper() {
        let src = r#"
        #define M 64
        #define N 64
        #define K 64
        double A[M][K];
        double B[K][N];
        double C[M][N];
        double alpha;
        double beta;
        int main() {
            int i, j, k;
            #pragma @Locus loop=matmul
            for (i = 0; i < M; i++)
                for (j = 0; j < N; j++)
                    for (k = 0; k < K; k++)
                        C[i][j] = beta*C[i][j] + alpha*A[i][k]*B[k][j];
            return 0;
        }
        "#;
        let program = parse_program(src).unwrap();
        assert_eq!(program.functions().count(), 1);
        assert_eq!(program.globals().count(), 5);
        let main = program.function("main").unwrap();
        // Declarations (expanded from `int i, j, k;`) plus the loop and
        // return.
        let loop_stmt = main
            .body
            .iter()
            .flat_map(|s| s.body_stmts())
            .find(|s| s.is_for())
            .expect("loop");
        assert_eq!(loop_stmt.region_id(), Some("matmul"));
    }

    #[test]
    fn parses_for_with_decl_init() {
        let program =
            parse_program("void f() { for (int t = 0; t < 4; t++) { int x; x = t; } }").unwrap();
        let f = program.function("f").unwrap();
        let fl = f.body[0].as_for().unwrap();
        assert!(matches!(
            fl.init.as_deref().unwrap().kind,
            StmtKind::Decl { .. }
        ));
    }

    #[test]
    fn single_statement_bodies_are_wrapped_in_blocks() {
        let program =
            parse_program("void f(int n) { for (int i = 0; i < n; ++i) n = n; }").unwrap();
        let f = program.function("f").unwrap();
        let fl = f.body[0].as_for().unwrap();
        assert!(matches!(fl.body.kind, StmtKind::Block(_)));
    }

    #[test]
    fn parses_compound_assignment_and_increments() {
        let e = parse_expr("x += 2").unwrap();
        assert!(matches!(
            e,
            Expr::Assign {
                op: AssignOp::AddAssign,
                ..
            }
        ));
        let e = parse_expr("i++").unwrap();
        assert!(matches!(
            e,
            Expr::Assign {
                op: AssignOp::AddAssign,
                ..
            }
        ));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let e = parse_expr("a + b * c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. })),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn parses_cast() {
        let e = parse_expr("(double)x * 2.0").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_deref_and_pointer_decl() {
        let program = parse_program("void f(double* p) { *p += 1.0; }").unwrap();
        let f = program.function("f").unwrap();
        assert_eq!(f.params[0].ty, Type::Ptr(Box::new(Type::Double)));
    }

    #[test]
    fn parses_omp_pragmas() {
        assert_eq!(
            parse_pragma("omp parallel for").unwrap(),
            Pragma::OmpParallelFor {
                schedule: None,
                clauses: Vec::new()
            }
        );
        assert_eq!(
            parse_pragma("omp parallel for schedule(dynamic, 8)").unwrap(),
            Pragma::OmpParallelFor {
                schedule: Some(OmpSchedule {
                    kind: OmpScheduleKind::Dynamic,
                    chunk: Some(8)
                }),
                clauses: Vec::new()
            }
        );
        assert_eq!(
            parse_pragma("omp parallel for schedule(static) reduction(+:s) private(t)").unwrap(),
            Pragma::OmpParallelFor {
                schedule: Some(OmpSchedule {
                    kind: OmpScheduleKind::Static,
                    chunk: None
                }),
                clauses: vec![
                    OmpClause::Reduction {
                        op: BinOp::Add,
                        var: "s".to_string()
                    },
                    OmpClause::Private {
                        var: "t".to_string()
                    },
                ]
            }
        );
        assert!(parse_pragma("omp parallel for reduction(/:s)").is_err());
        assert!(parse_pragma("omp parallel for nowait").is_err());
        assert_eq!(parse_pragma("ivdep").unwrap(), Pragma::Ivdep);
        assert_eq!(parse_pragma("vector always").unwrap(), Pragma::VectorAlways);
    }

    #[test]
    fn unknown_pragma_is_preserved_raw() {
        assert_eq!(
            parse_pragma("unroll(4)").unwrap(),
            Pragma::Raw("unroll(4)".into())
        );
    }

    #[test]
    fn modulo_indexing_from_heat_kernel_parses() {
        let e = parse_expr("A[(t+1)%2][i][j]").unwrap();
        let (name, idx) = e.as_array_access().unwrap();
        assert_eq!(name, "A");
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn error_mentions_line() {
        let err = parse_program("int main() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn if_else_parses() {
        let program =
            parse_program("int f(int x) { if (x > 0) { return 1; } else { return 0; } }").unwrap();
        let f = program.function("f").unwrap();
        assert!(matches!(f.body[0].kind, StmtKind::If { .. }));
    }

    #[test]
    fn while_loop_parses() {
        let program = parse_program("void f(int n) { while (n > 0) { n -= 1; } }").unwrap();
        let f = program.function("f").unwrap();
        assert!(matches!(f.body[0].kind, StmtKind::While { .. }));
    }
}
