//! Region content hashing.
//!
//! The paper (Sec. II) keeps the optimization program coherent with the
//! application source by hashing each code region and warning the
//! programmer when the source changed underneath a stored optimization.
//! We hash the *unparsed* text of the region so that formatting-neutral
//! AST details do not affect the digest, using the 64-bit FNV-1a function
//! (dependency-free and stable across platforms).

use crate::ast::Stmt;
use crate::printer::print_stmt;

/// A stable 64-bit digest of a code region's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionHash(pub u64);

impl std::fmt::Display for RegionHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a over arbitrary bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Hashes a region root statement.
///
/// The Locus region pragmas themselves are part of the hash (renaming a
/// region is a change worth flagging), as is everything the region
/// contains.
pub fn hash_region(stmt: &Stmt) -> RegionHash {
    RegionHash(fnv1a(print_stmt(stmt).as_bytes()))
}

/// Compares a stored hash against the current region content.
///
/// Returns `true` when the region is unchanged; `false` signals that the
/// optimization program may no longer apply and the user should be warned.
pub fn region_unchanged(stmt: &Stmt, stored: RegionHash) -> bool {
    hash_region(stmt) == stored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn loop_stmt(body: &str) -> Stmt {
        let src = format!("void f(int n, double A[64]) {{ {body} }}");
        let p = parse_program(&src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn identical_regions_hash_equal() {
        let a = loop_stmt("for (int i = 0; i < n; i++) A[i] = 0.0;");
        let b = loop_stmt("for (int i = 0; i < n; i++) A[i] = 0.0;");
        assert_eq!(hash_region(&a), hash_region(&b));
    }

    #[test]
    fn changed_body_changes_hash() {
        let a = loop_stmt("for (int i = 0; i < n; i++) A[i] = 0.0;");
        let b = loop_stmt("for (int i = 0; i < n; i++) A[i] = 1.0;");
        assert_ne!(hash_region(&a), hash_region(&b));
        assert!(!region_unchanged(&b, hash_region(&a)));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn display_is_zero_padded_hex() {
        assert_eq!(RegionHash(0xabc).to_string(), "0000000000000abc");
    }
}
