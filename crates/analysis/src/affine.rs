//! Affine-form extraction from expressions.
//!
//! A subscript like `2*i + j - 1` is represented as a linear combination
//! of symbolic variables plus a constant. Dependence tests and the
//! Pluto-like baseline's applicability gate both work on this form:
//! a subscript that cannot be brought into affine form makes the
//! dependence analysis report *unknown* (and puts the loop nest outside
//! the polyhedral model, mirroring why Pluto transforms fewer nests in
//! Sec. V-D of the paper).

use std::collections::BTreeMap;

use locus_srcir::ast::{BinOp, Expr, UnOp};

/// A linear expression `sum(coeff_i * var_i) + constant`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineExpr {
    /// Variable coefficients, keyed by variable name. Zero coefficients
    /// are never stored.
    pub coeffs: BTreeMap<String, i64>,
    /// The constant term.
    pub constant: i64,
}

impl AffineExpr {
    /// The zero expression.
    pub fn zero() -> AffineExpr {
        AffineExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: i64) -> AffineExpr {
        AffineExpr {
            coeffs: BTreeMap::new(),
            constant: value,
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(name: impl Into<String>) -> AffineExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.into(), 1);
        AffineExpr {
            coeffs,
            constant: 0,
        }
    }

    /// The coefficient of `name` (0 when absent).
    pub fn coeff(&self, name: &str) -> i64 {
        self.coeffs.get(name).copied().unwrap_or(0)
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Adds another affine expression in place.
    pub fn add(&mut self, other: &AffineExpr) {
        self.constant += other.constant;
        for (name, c) in &other.coeffs {
            let entry = self.coeffs.entry(name.clone()).or_insert(0);
            *entry += c;
            if *entry == 0 {
                self.coeffs.remove(name);
            }
        }
    }

    /// Subtracts another affine expression in place.
    pub fn sub(&mut self, other: &AffineExpr) {
        let mut negated = other.clone();
        negated.scale(-1);
        self.add(&negated);
    }

    /// Multiplies by an integer scalar in place.
    pub fn scale(&mut self, factor: i64) {
        if factor == 0 {
            self.coeffs.clear();
            self.constant = 0;
            return;
        }
        self.constant *= factor;
        for c in self.coeffs.values_mut() {
            *c *= factor;
        }
    }

    /// The set of variables with non-zero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.coeffs.keys().map(String::as_str)
    }

    /// Rebuilds a source expression denoting this affine form.
    ///
    /// Positive terms come first so the result never starts with a
    /// negation; `extract_affine(&a.to_expr()) == Some(a)` for every
    /// affine `a`.
    pub fn to_expr(&self) -> Expr {
        let mut acc: Option<Expr> = None;
        let term = |name: &str, coeff: i64| -> Expr {
            let c = coeff.abs();
            if c == 1 {
                Expr::ident(name)
            } else {
                Expr::bin(BinOp::Mul, Expr::int(c), Expr::ident(name))
            }
        };
        let apply = |acc: &mut Option<Expr>, e: Expr, negative: bool| {
            *acc = Some(match acc.take() {
                None if negative => Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(e),
                },
                None => e,
                Some(prev) if negative => Expr::bin(BinOp::Sub, prev, e),
                Some(prev) => Expr::bin(BinOp::Add, prev, e),
            });
        };
        for (name, &c) in self.coeffs.iter().filter(|(_, c)| **c > 0) {
            apply(&mut acc, term(name, c), false);
        }
        if self.constant > 0 {
            apply(&mut acc, Expr::int(self.constant), false);
        }
        for (name, &c) in self.coeffs.iter().filter(|(_, c)| **c < 0) {
            apply(&mut acc, term(name, c), true);
        }
        if self.constant < 0 {
            apply(&mut acc, Expr::int(-self.constant), true);
        }
        acc.unwrap_or_else(|| Expr::int(0))
    }
}

/// Tries to bring an expression into affine form.
///
/// Returns `None` for anything non-linear: products of variables,
/// division, modulo, calls, array loads used as subscripts, etc.
pub fn extract_affine(expr: &Expr) -> Option<AffineExpr> {
    match expr {
        Expr::IntLit(v) => Some(AffineExpr::constant(*v)),
        Expr::Ident(name) => Some(AffineExpr::var(name.clone())),
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => {
            let mut inner = extract_affine(operand)?;
            inner.scale(-1);
            Some(inner)
        }
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Add => {
                let mut l = extract_affine(lhs)?;
                let r = extract_affine(rhs)?;
                l.add(&r);
                Some(l)
            }
            BinOp::Sub => {
                let mut l = extract_affine(lhs)?;
                let r = extract_affine(rhs)?;
                l.sub(&r);
                Some(l)
            }
            BinOp::Mul => {
                let l = extract_affine(lhs)?;
                let r = extract_affine(rhs)?;
                if l.is_constant() {
                    let mut out = r;
                    out.scale(l.constant);
                    Some(out)
                } else if r.is_constant() {
                    let mut out = l;
                    out.scale(r.constant);
                    Some(out)
                } else {
                    None
                }
            }
            _ => None,
        },
        Expr::Cast { expr, .. } => extract_affine(expr),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_expr;

    fn affine(src: &str) -> Option<AffineExpr> {
        extract_affine(&parse_expr(src).unwrap())
    }

    #[test]
    fn extracts_linear_combination() {
        let a = affine("2*i + j - 1").unwrap();
        assert_eq!(a.coeff("i"), 2);
        assert_eq!(a.coeff("j"), 1);
        assert_eq!(a.constant, -1);
    }

    #[test]
    fn constant_times_parenthesized_sum() {
        let a = affine("4 * (i + 2)").unwrap();
        assert_eq!(a.coeff("i"), 4);
        assert_eq!(a.constant, 8);
    }

    #[test]
    fn cancellation_removes_zero_coefficients() {
        let a = affine("i - i + 3").unwrap();
        assert!(a.is_constant());
        assert_eq!(a.constant, 3);
    }

    #[test]
    fn nonlinear_forms_are_rejected() {
        assert!(affine("i * j").is_none());
        assert!(affine("i / 2").is_none());
        assert!(affine("(t + 1) % 2").is_none());
        assert!(affine("f(i)").is_none());
        assert!(affine("A[i]").is_none());
    }

    #[test]
    fn negation_flips_signs() {
        let a = affine("-(i - 2)").unwrap();
        assert_eq!(a.coeff("i"), -1);
        assert_eq!(a.constant, 2);
    }

    #[test]
    fn to_expr_round_trips_through_extraction() {
        for src in ["2*i + j - 1", "i - j", "-i + 3", "7", "0", "n - i - 1"] {
            let a = affine(src).unwrap();
            let rebuilt = extract_affine(&a.to_expr()).unwrap();
            assert_eq!(rebuilt, a, "{src}");
        }
        assert_eq!(AffineExpr::zero().to_expr(), Expr::int(0));
    }

    #[test]
    fn vars_lists_nonzero_names() {
        let a = affine("i + 0*j + k").unwrap();
        // `0*j` never gets an entry because multiplication by a constant
        // zero clears the term.
        let vars: Vec<_> = a.vars().collect();
        assert_eq!(vars, vec!["i", "k"]);
    }
}
