//! Polyhedral-lite integer feasibility over affine constraint systems.
//!
//! A [`PolySystem`] is a conjunction of affine inequalities
//! `sum(coeff_i * x_i) + constant >= 0` over integer variables. The
//! engine decides whether an *integer* point exists using integer
//! Fourier–Motzkin elimination in the style of the Omega test:
//!
//! * the **real shadow** (plain FM elimination with gcd tightening) is an
//!   over-approximation — if it is empty, the system has no integer
//!   point ([`Feasibility::Empty`], an exact verdict);
//! * the **dark shadow** (each combined constraint tightened by
//!   `(a-1)(b-1)`) is an under-approximation — if it is feasible, an
//!   integer point exists ([`Feasibility::NonEmpty`], also exact);
//! * when an elimination step only ever pairs bounds with a unit
//!   coefficient the two shadows coincide, so a feasible real shadow is
//!   already exact. All loop-bound and subscript systems built from
//!   typical nests (coefficients ±1) land in this case.
//!
//! The remaining gap — real shadow feasible, dark shadow empty — is
//! reported as [`Feasibility::Unknown`] and callers fall back to their
//! conservative paths. Arithmetic is checked; any overflow or constraint
//! blow-up also degrades to `Unknown`, never to a wrong answer.
//!
//! This is the exact engine behind the dependence analysis in
//! [`crate::deps`]: dependence existence and direction-vector questions
//! over triangular and shifted iteration domains (`k = i+1 .. N`) become
//! integer feasibility questions here.

use crate::affine::{extract_affine, AffineExpr};
use crate::loops::CanonLoop;

/// The answer to an integer feasibility question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feasibility {
    /// Provably no integer point satisfies the system.
    Empty,
    /// Provably at least one integer point satisfies the system.
    NonEmpty,
    /// The engine could not decide (shadow gap, overflow, or blow-up).
    Unknown,
}

/// One constraint `sum(coeffs[i] * x_i) + constant >= 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Con {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Con {
    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

/// Cap on the working constraint set during elimination; beyond this the
/// engine gives up with [`Feasibility::Unknown`] rather than blowing up.
const MAX_CONSTRAINTS: usize = 512;

/// A system of affine inequalities over a fixed set of integer variables.
#[derive(Debug, Clone, Default)]
pub struct PolySystem {
    nvars: usize,
    cons: Vec<Con>,
}

impl PolySystem {
    /// An empty system (trivially feasible) over `nvars` variables.
    pub fn new(nvars: usize) -> PolySystem {
        PolySystem {
            nvars,
            cons: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of constraints currently in the system (for mark/rollback).
    pub fn len(&self) -> usize {
        self.cons.len()
    }

    /// `true` when no constraints have been added.
    pub fn is_empty(&self) -> bool {
        self.cons.is_empty()
    }

    /// Drops constraints back to a previous [`PolySystem::len`] mark.
    pub fn truncate(&mut self, mark: usize) {
        self.cons.truncate(mark);
    }

    /// `true` when some constraint has a non-zero coefficient on `var`.
    pub fn var_occurs(&self, var: usize) -> bool {
        self.cons.iter().any(|c| c.coeffs[var] != 0)
    }

    /// Adds `sum(coeffs[i] * x_i) + constant >= 0`.
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len() != nvars`.
    pub fn ge0(&mut self, coeffs: Vec<i64>, constant: i64) {
        assert_eq!(coeffs.len(), self.nvars, "coefficient arity mismatch");
        self.cons.push(Con { coeffs, constant });
    }

    /// Adds `sum(coeffs[i] * x_i) + constant == 0` (as two inequalities).
    pub fn eq0(&mut self, coeffs: Vec<i64>, constant: i64) {
        let neg: Vec<i64> = coeffs.iter().map(|&c| -c).collect();
        self.ge0(coeffs, constant);
        self.ge0(neg, -constant);
    }

    /// Decides whether an integer point satisfies every constraint.
    pub fn feasibility(&self) -> Feasibility {
        let all: Vec<usize> = (0..self.nvars).collect();
        match run(&self.cons, &all, Shadow::Real) {
            RunResult::Infeasible => Feasibility::Empty,
            RunResult::Overflow => Feasibility::Unknown,
            RunResult::Feasible { exact: true, .. } => Feasibility::NonEmpty,
            RunResult::Feasible { exact: false, .. } => match run(&self.cons, &all, Shadow::Dark) {
                RunResult::Feasible { .. } => Feasibility::NonEmpty,
                RunResult::Infeasible | RunResult::Overflow => Feasibility::Unknown,
            },
        }
    }

    /// Projects out the listed variables with real-shadow elimination and
    /// returns the remaining constraints as `(coeffs, constant)` rows.
    ///
    /// The result over-approximates the true integer projection (every
    /// point of the projection satisfies the returned rows), which is the
    /// safe direction for bound hulls. Returns `None` on overflow,
    /// blow-up, or a provably empty system.
    pub fn project(&self, eliminate: &[usize]) -> Option<Vec<(Vec<i64>, i64)>> {
        match run(&self.cons, eliminate, Shadow::Real) {
            RunResult::Feasible { cons, .. } => Some(
                cons.into_iter()
                    .filter(|c| !c.is_constant())
                    .map(|c| (c.coeffs, c.constant))
                    .collect(),
            ),
            RunResult::Infeasible | RunResult::Overflow => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Shadow {
    Real,
    Dark,
}

enum RunResult {
    Infeasible,
    Feasible { exact: bool, cons: Vec<Con> },
    Overflow,
}

enum Norm {
    /// Constraint is `false` (no solutions at all).
    False,
    /// Constraint is trivially `true` and can be dropped.
    Trivial,
    Keep(Con),
}

/// Divides the constraint by the gcd of its coefficients, flooring the
/// constant — a tightening that preserves exactly the integer solutions
/// (and is what disproves systems like `2x = 2y + 1`).
fn normalize(mut con: Con) -> Norm {
    let g = con
        .coeffs
        .iter()
        .copied()
        .filter(|&c| c != 0)
        .fold(0i64, gcd);
    if g == 0 {
        return if con.constant < 0 {
            Norm::False
        } else {
            Norm::Trivial
        };
    }
    if g > 1 {
        for c in con.coeffs.iter_mut() {
            *c /= g;
        }
        con.constant = con.constant.div_euclid(g);
    }
    Norm::Keep(con)
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Eliminates the listed variables from the constraint set.
fn run(cons: &[Con], eliminate: &[usize], shadow: Shadow) -> RunResult {
    let mut work: Vec<Con> = Vec::with_capacity(cons.len());
    for con in cons {
        match normalize(con.clone()) {
            Norm::False => return RunResult::Infeasible,
            Norm::Trivial => {}
            Norm::Keep(c) => work.push(c),
        }
    }
    dedup(&mut work);

    let mut exact = true;
    let mut remaining: Vec<usize> = eliminate.to_vec();
    loop {
        // Pick the eliminable variable with the cheapest lower x upper
        // pairing (the classic Fourier heuristic); variables that no
        // longer occur are projected out for free.
        let mut best: Option<(usize, usize)> = None;
        remaining.retain(|&v| {
            let lowers = work.iter().filter(|c| c.coeffs[v] > 0).count();
            let uppers = work.iter().filter(|c| c.coeffs[v] < 0).count();
            if lowers == 0 && uppers == 0 {
                return false;
            }
            let cost = lowers * uppers;
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((v, cost));
            }
            true
        });
        let Some((var, _)) = best else {
            return RunResult::Feasible { exact, cons: work };
        };
        remaining.retain(|&v| v != var);

        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        let mut rest = Vec::new();
        for c in work {
            match c.coeffs[var].cmp(&0) {
                std::cmp::Ordering::Greater => lowers.push(c),
                std::cmp::Ordering::Less => uppers.push(c),
                std::cmp::Ordering::Equal => rest.push(c),
            }
        }
        if lowers.is_empty() || uppers.is_empty() {
            // One-sided: an integer value far enough along always exists,
            // so dropping the constraints is an exact projection.
            work = rest;
            continue;
        }
        for lo in &lowers {
            let a = lo.coeffs[var];
            for up in &uppers {
                let b = -up.coeffs[var];
                if a != 1 && b != 1 {
                    exact = false;
                }
                let Some(combined) = combine(lo, up, a, b, var, shadow) else {
                    return RunResult::Overflow;
                };
                match normalize(combined) {
                    Norm::False => return RunResult::Infeasible,
                    Norm::Trivial => {}
                    Norm::Keep(c) => rest.push(c),
                }
            }
        }
        dedup(&mut rest);
        if rest.len() > MAX_CONSTRAINTS {
            return RunResult::Overflow;
        }
        work = rest;
    }
}

/// Combines a lower bound (`a > 0` on `var`) with an upper bound
/// (`b > 0`, stored negated) into the shadow constraint with `var`
/// cancelled: `b*lo + a*up >= 0` (real) or `>= (a-1)(b-1)` (dark).
fn combine(lo: &Con, up: &Con, a: i64, b: i64, var: usize, shadow: Shadow) -> Option<Con> {
    let mut coeffs = Vec::with_capacity(lo.coeffs.len());
    for (cl, cu) in lo.coeffs.iter().zip(&up.coeffs) {
        coeffs.push(b.checked_mul(*cl)?.checked_add(a.checked_mul(*cu)?)?);
    }
    debug_assert_eq!(coeffs[var], 0);
    let mut constant = b
        .checked_mul(lo.constant)?
        .checked_add(a.checked_mul(up.constant)?)?;
    if shadow == Shadow::Dark {
        constant = constant.checked_sub((a - 1).checked_mul(b - 1)?)?;
    }
    Some(Con { coeffs, constant })
}

/// Removes duplicate constraints, keeping only the tightest constant per
/// coefficient vector (for `sum >= -constant`, the smallest constant).
fn dedup(cons: &mut Vec<Con>) {
    use std::collections::BTreeMap;
    let mut best: BTreeMap<Vec<i64>, i64> = BTreeMap::new();
    for c in cons.drain(..) {
        best.entry(c.coeffs)
            .and_modify(|k| *k = (*k).min(c.constant))
            .or_insert(c.constant);
    }
    cons.extend(
        best.into_iter()
            .map(|(coeffs, constant)| Con { coeffs, constant }),
    );
}

/// Rectangular bound hull of one band level: the conjunction
/// `max(lowers) <= v < min(uppers_excl)` over-approximates the set of
/// values the level's variable takes anywhere in the band.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HullBounds {
    /// Inclusive lower bounds (affine over non-band variables).
    pub lowers: Vec<AffineExpr>,
    /// Exclusive upper bounds (affine over non-band variables).
    pub uppers_excl: Vec<AffineExpr>,
}

/// Maximum band depth the hull/dependence engine enumerates.
pub const MAX_EXACT_DEPTH: usize = 4;

/// Computes a rectangular hull for a (possibly triangular) loop band:
/// for each level, bounds free of every band variable that contain the
/// whole iteration domain. This is what lets tiling lay rectangular tile
/// loops over a triangular band — `max`/`min` guards on the point loops
/// then clip each tile back to the true domain.
///
/// Returns `None` when the band is too deep, uses non-unit steps,
/// non-affine bounds, duplicate variables, or when the projection cannot
/// produce at least one lower and one upper bound per level.
pub fn band_hull(band: &[CanonLoop]) -> Option<Vec<HullBounds>> {
    if band.is_empty() || band.len() > MAX_EXACT_DEPTH {
        return None;
    }
    if band.iter().any(|l| l.step != 1) {
        return None;
    }
    let vars: Vec<&str> = band.iter().map(|l| l.var.as_str()).collect();
    if (1..vars.len()).any(|i| vars[..i].contains(&vars[i])) {
        return None;
    }

    let mut bounds = Vec::with_capacity(band.len());
    let mut params: Vec<String> = Vec::new();
    for l in band {
        let lo = extract_affine(&l.lower)?;
        let up = extract_affine(&l.exclusive_upper())?;
        for v in lo.vars().chain(up.vars()) {
            if !vars.contains(&v) && !params.iter().any(|p| p == v) {
                params.push(v.to_string());
            }
        }
        bounds.push((lo, up));
    }

    let d = band.len();
    let nvars = d + params.len();
    let col = |name: &str| -> usize {
        vars.iter()
            .position(|v| *v == name)
            .unwrap_or_else(|| d + params.iter().position(|p| p == name).expect("collected"))
    };
    let mut sys = PolySystem::new(nvars);
    for (l, (lo, up)) in bounds.iter().enumerate() {
        // v - lo >= 0
        let mut row = vec![0i64; nvars];
        row[l] += 1;
        for (name, c) in &lo.coeffs {
            row[col(name)] -= c;
        }
        sys.ge0(row, -lo.constant);
        // up - 1 - v >= 0
        let mut row = vec![0i64; nvars];
        row[l] -= 1;
        for (name, c) in &up.coeffs {
            row[col(name)] += c;
        }
        sys.ge0(row, up.constant - 1);
    }

    let mut out = Vec::with_capacity(d);
    for l in 0..d {
        let eliminate: Vec<usize> = (0..d).filter(|&v| v != l).collect();
        let rows = sys.project(&eliminate)?;
        let mut lowers: Vec<AffineExpr> = Vec::new();
        let mut uppers: Vec<AffineExpr> = Vec::new();
        for (coeffs, constant) in rows {
            let a = coeffs[l];
            if a == 0 {
                continue;
            }
            // The rest of the row, as an affine expression over params.
            let mut rest = AffineExpr::constant(constant);
            for (i, p) in params.iter().enumerate() {
                let c = coeffs[d + i];
                if c != 0 {
                    let mut t = AffineExpr::var(p.clone());
                    t.scale(c);
                    rest.add(&t);
                }
            }
            if a > 0 {
                // a*v + rest >= 0  =>  v >= ceil(-rest / a)
                if a == 1 {
                    rest.scale(-1);
                    push_unique(&mut lowers, rest);
                } else if rest.is_constant() {
                    push_unique(
                        &mut lowers,
                        AffineExpr::constant(
                            (-rest.constant).div_euclid(a)
                                + i64::from((-rest.constant).rem_euclid(a) != 0),
                        ),
                    );
                }
                // Non-unit coefficients with symbolic rest are skipped:
                // dropping a bound only widens the hull, which is safe.
            } else {
                let b = -a;
                // rest - b*v >= 0  =>  v <= floor(rest / b), exclusive +1
                if b == 1 {
                    rest.constant += 1;
                    push_unique(&mut uppers, rest);
                } else if rest.is_constant() {
                    push_unique(
                        &mut uppers,
                        AffineExpr::constant(rest.constant.div_euclid(b) + 1),
                    );
                }
            }
        }
        if lowers.is_empty() || uppers.is_empty() {
            return None;
        }
        out.push(HullBounds {
            lowers,
            uppers_excl: uppers,
        });
    }
    Some(out)
}

fn push_unique(list: &mut Vec<AffineExpr>, item: AffineExpr) {
    if !list.contains(&item) {
        list.push(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(n: i64, dims: usize) -> PolySystem {
        let mut sys = PolySystem::new(dims);
        for v in 0..dims {
            let mut lo = vec![0; dims];
            lo[v] = 1;
            sys.ge0(lo, 0); // v >= 0
            let mut up = vec![0; dims];
            up[v] = -1;
            sys.ge0(up, n - 1); // v <= n - 1
        }
        sys
    }

    #[test]
    fn empty_system_is_feasible() {
        assert_eq!(PolySystem::new(3).feasibility(), Feasibility::NonEmpty);
    }

    #[test]
    fn box_is_nonempty_and_exact() {
        assert_eq!(boxed(10, 2).feasibility(), Feasibility::NonEmpty);
    }

    #[test]
    fn contradictory_bounds_are_empty() {
        let mut sys = PolySystem::new(1);
        sys.ge0(vec![1], 0); // x >= 0
        sys.ge0(vec![-1], -1); // x <= -1
        assert_eq!(sys.feasibility(), Feasibility::Empty);
    }

    #[test]
    fn gcd_tightening_disproves_parity_clash() {
        // 2x = 2y + 1 over a box: no integer solution.
        let mut sys = boxed(10, 2);
        sys.eq0(vec![2, -2], -1);
        assert_eq!(sys.feasibility(), Feasibility::Empty);
    }

    #[test]
    fn triangular_domain_with_shifted_lower_bound() {
        // 0 <= i < 10, i + 1 <= k < 10 — nonempty (i=0, k=1).
        let mut sys = boxed(10, 2);
        sys.ge0(vec![-1, 1], -1); // k - i - 1 >= 0
        assert_eq!(sys.feasibility(), Feasibility::NonEmpty);
        // Shrink the box to one point: i = 9 forces k >= 10 — empty.
        sys.ge0(vec![1, 0], -9); // i >= 9
        assert_eq!(sys.feasibility(), Feasibility::Empty);
    }

    #[test]
    fn equality_constraints_pin_points() {
        let mut sys = boxed(10, 2);
        sys.eq0(vec![1, -1], -3); // x - y = 3
        assert_eq!(sys.feasibility(), Feasibility::NonEmpty);
        sys.eq0(vec![1, 0], 0); // x = 0  => y = -3, outside the box
        assert_eq!(sys.feasibility(), Feasibility::Empty);
    }

    #[test]
    fn dark_shadow_proves_wide_stride_nonempty() {
        // y <= 2x <= y + 2, 0 <= y <= 10: dark shadow certifies a point.
        let mut sys = PolySystem::new(2);
        sys.ge0(vec![2, -1], 0); // 2x - y >= 0
        sys.ge0(vec![-2, 1], 2); // y + 2 - 2x >= 0
        sys.ge0(vec![0, 1], 0);
        sys.ge0(vec![0, -1], 10);
        assert_eq!(sys.feasibility(), Feasibility::NonEmpty);
    }

    #[test]
    fn shadow_gap_reports_unknown() {
        // y = 1 and y <= 3x <= y + 1: truly empty, but the real shadow is
        // feasible and the dark shadow is not — the engine must admit it
        // cannot decide rather than guess.
        let mut sys = PolySystem::new(2);
        sys.ge0(vec![3, -1], 0); // 3x - y >= 0
        sys.ge0(vec![-3, 1], 1); // y + 1 - 3x >= 0
        sys.eq0(vec![0, 1], -1); // y = 1
        assert_eq!(sys.feasibility(), Feasibility::Unknown);
    }

    #[test]
    fn rollback_restores_previous_state() {
        let mut sys = boxed(4, 1);
        let mark = sys.len();
        sys.ge0(vec![1], -100); // x >= 100
        assert_eq!(sys.feasibility(), Feasibility::Empty);
        sys.truncate(mark);
        assert_eq!(sys.feasibility(), Feasibility::NonEmpty);
    }

    #[test]
    fn project_keeps_transitive_bounds() {
        // 0 <= i < 10, 0 <= j <= i: projecting out i must retain
        // j <= 9 alongside j >= 0.
        let mut sys = PolySystem::new(2);
        sys.ge0(vec![1, 0], 0); // i >= 0
        sys.ge0(vec![-1, 0], 9); // i <= 9
        sys.ge0(vec![0, 1], 0); // j >= 0
        sys.ge0(vec![1, -1], 0); // i - j >= 0
        let rows = sys.project(&[0]).unwrap();
        assert!(rows.contains(&(vec![0, 1], 0)), "{rows:?}");
        assert!(rows.contains(&(vec![0, -1], 9)), "{rows:?}");
    }

    fn canon(var: &str, lower: &str, upper_excl: &str) -> CanonLoop {
        CanonLoop {
            var: var.to_string(),
            lower: locus_srcir::parse_expr(lower).unwrap(),
            upper: locus_srcir::parse_expr(upper_excl).unwrap(),
            inclusive: false,
            step: 1,
            declares_var: true,
        }
    }

    #[test]
    fn hull_of_rectangular_band_is_its_own_bounds() {
        let band = [canon("i", "0", "n"), canon("j", "0", "n")];
        let hull = band_hull(&band).unwrap();
        assert_eq!(hull[0].lowers, vec![AffineExpr::constant(0)]);
        assert_eq!(hull[0].uppers_excl, vec![AffineExpr::var("n")]);
        assert_eq!(hull[1].lowers, vec![AffineExpr::constant(0)]);
        assert_eq!(hull[1].uppers_excl, vec![AffineExpr::var("n")]);
    }

    #[test]
    fn hull_of_triangular_band_projects_through_the_outer_bound() {
        // i in [0, n), j in [0, i]: the hull of j is [0, n).
        let band = [canon("i", "0", "n"), canon("j", "0", "i + 1")];
        let hull = band_hull(&band).unwrap();
        assert_eq!(hull[1].lowers, vec![AffineExpr::constant(0)]);
        assert_eq!(hull[1].uppers_excl, vec![AffineExpr::var("n")]);
    }

    #[test]
    fn hull_of_shifted_band_covers_the_shift() {
        // i in [0, n), k in [i+1, n): hull of k is [1, n).
        let band = [canon("i", "0", "n"), canon("k", "i + 1", "n")];
        let hull = band_hull(&band).unwrap();
        assert_eq!(hull[1].lowers, vec![AffineExpr::constant(1)]);
        assert_eq!(hull[1].uppers_excl, vec![AffineExpr::var("n")]);
    }

    #[test]
    fn hull_refuses_nonaffine_and_non_unit_steps() {
        let band = [canon("i", "0", "f(n)")];
        assert!(band_hull(&band).is_none());
        let mut stepped = canon("i", "0", "n");
        stepped.step = 2;
        assert!(band_hull(&[stepped]).is_none());
    }
}
