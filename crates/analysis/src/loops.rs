//! Canonical-loop recognition and loop-nest queries.
//!
//! These implement the paper's `BuiltIn` queries (`IsPerfectLoopNest`,
//! `LoopNestDepth`, `ListInnerLoops`, `ListOuterLoops`) plus the
//! canonical-form extraction every transformation relies on.

use locus_srcir::ast::{AssignOp, BinOp, Expr, ForLoop, Stmt, StmtKind};
use locus_srcir::index::HierIndex;
use locus_srcir::visit::{child, child_count};

/// A `for` loop in canonical form: `for (v = lo; v </<= hi; v += step)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonLoop {
    /// Induction variable name.
    pub var: String,
    /// Lower bound (inclusive).
    pub lower: Expr,
    /// Upper bound expression as written.
    pub upper: Expr,
    /// `true` when the comparison is inclusive (`<=`), `false` for `<`.
    pub inclusive: bool,
    /// Constant step (always positive in canonical form).
    pub step: i64,
    /// Whether the induction variable is declared in the loop header.
    pub declares_var: bool,
}

impl CanonLoop {
    /// The exclusive upper bound: `upper` for `<`, `upper + 1` for `<=`.
    pub fn exclusive_upper(&self) -> Expr {
        if self.inclusive {
            Expr::bin(BinOp::Add, self.upper.clone(), Expr::int(1))
        } else {
            self.upper.clone()
        }
    }

    /// The constant trip count, when both bounds are integer literals.
    pub fn const_trip_count(&self) -> Option<i64> {
        let lo = self.lower.as_const_int()?;
        let hi = self.upper.as_const_int()? + i64::from(self.inclusive);
        if hi <= lo {
            return Some(0);
        }
        Some((hi - lo + self.step - 1) / self.step)
    }
}

/// Tries to put a `for` loop into canonical form.
///
/// Recognized shapes: init `v = lo` or `int v = lo`; condition
/// `v < hi` / `v <= hi`; step `v++`, `v += c`, or `v = v + c` with a
/// positive constant `c`.
pub fn canonicalize(stmt: &Stmt) -> Option<CanonLoop> {
    let f = stmt.as_for()?;
    canonicalize_for(f)
}

/// Same as [`canonicalize`] but starting from the [`ForLoop`] payload.
pub fn canonicalize_for(f: &ForLoop) -> Option<CanonLoop> {
    let (var, lower, declares_var) = match f.init.as_deref()?.kind.clone() {
        StmtKind::Decl {
            name,
            init: Some(init),
            dims,
            ..
        } if dims.is_empty() => (name, init, true),
        StmtKind::Expr(Expr::Assign {
            op: AssignOp::Assign,
            lhs,
            rhs,
        }) => match *lhs {
            Expr::Ident(name) => (name, *rhs, false),
            _ => return None,
        },
        _ => return None,
    };

    let (upper, inclusive) = match f.cond.as_ref()? {
        Expr::Binary { op, lhs, rhs } => {
            if !matches!(lhs.as_ref(), Expr::Ident(n) if n == &var) {
                return None;
            }
            match op {
                BinOp::Lt => ((**rhs).clone(), false),
                BinOp::Le => ((**rhs).clone(), true),
                _ => return None,
            }
        }
        _ => return None,
    };

    let step = match f.step.as_ref()? {
        Expr::Assign { op, lhs, rhs } => {
            if !matches!(lhs.as_ref(), Expr::Ident(n) if n == &var) {
                return None;
            }
            match op {
                AssignOp::AddAssign => rhs.as_const_int()?,
                AssignOp::Assign => match rhs.as_ref() {
                    Expr::Binary {
                        op: BinOp::Add,
                        lhs: l,
                        rhs: r,
                    } if matches!(l.as_ref(), Expr::Ident(n) if n == &var) => r.as_const_int()?,
                    _ => return None,
                },
                _ => return None,
            }
        }
        _ => return None,
    };
    if step <= 0 {
        return None;
    }

    Some(CanonLoop {
        var,
        lower,
        upper,
        inclusive,
        step,
        declares_var,
    })
}

/// Summary of the loop nest rooted at a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNestInfo {
    /// Maximum loop nesting depth (0 for a statement with no loops).
    pub depth: usize,
    /// Whether the nest is perfect: each loop body contains exactly one
    /// statement, which is the next loop, except the innermost body.
    pub perfect: bool,
    /// Hierarchical indices of the innermost loops (loops containing no
    /// other loop).
    pub inner_loops: Vec<HierIndex>,
    /// Hierarchical indices of the outermost loops.
    pub outer_loops: Vec<HierIndex>,
}

/// Returns `true` if the statement subtree contains a `for` loop.
pub fn contains_loop(stmt: &Stmt) -> bool {
    if stmt.is_for() {
        return true;
    }
    (0..child_count(stmt)).any(|i| child(stmt, i).is_some_and(contains_loop))
}

/// Computes [`LoopNestInfo`] for the region rooted at `root`.
///
/// Indices are hierarchical indices relative to `root` (so the root loop
/// itself is `"0"`).
pub fn loop_nest_info(root: &Stmt) -> LoopNestInfo {
    let mut inner_loops = Vec::new();
    let mut outer_loops = Vec::new();
    if root.is_for() {
        outer_loops.push(HierIndex::root());
    } else {
        // For block regions, outer loops are the top-level loops inside.
        for i in 0..child_count(root) {
            if let Some(c) = child(root, i) {
                if c.is_for() {
                    outer_loops.push(HierIndex::new(vec![0, i]));
                }
            }
        }
    }
    let depth = collect_info(root, &HierIndex::root(), &mut inner_loops);
    let perfect = is_perfect_nest(root);
    LoopNestInfo {
        depth,
        perfect,
        inner_loops,
        outer_loops,
    }
}

/// Recursively computes nest depth and records innermost loops.
fn collect_info(stmt: &Stmt, index: &HierIndex, inner: &mut Vec<HierIndex>) -> usize {
    let mut max_child_depth = 0;
    let mut has_inner_loop = false;
    for i in 0..child_count(stmt) {
        let Some(c) = child(stmt, i) else { continue };
        let child_depth = collect_info(c, &index.push(i), inner);
        max_child_depth = max_child_depth.max(child_depth);
        if contains_loop(c) {
            has_inner_loop = true;
        }
    }
    if stmt.is_for() {
        if !has_inner_loop {
            inner.push(index.clone());
        }
        max_child_depth + 1
    } else {
        max_child_depth
    }
}

/// The paper's `IsPerfectLoopNest` query.
///
/// A nest rooted at a loop is perfect when every loop body consists of
/// exactly one statement all the way down, each being the next loop,
/// until the innermost body (which may hold any number of non-loop
/// statements).
pub fn is_perfect_nest(root: &Stmt) -> bool {
    let Some(f) = root.as_for() else {
        return false;
    };
    let body = f.body.body_stmts();
    let loops_in_body = body.iter().filter(|s| contains_loop(s)).count();
    if loops_in_body == 0 {
        return true;
    }
    if body.len() != 1 || !body[0].is_for() {
        return false;
    }
    is_perfect_nest(&body[0])
}

/// Collects the chain of perfectly nested canonical loops starting at
/// `root`, outermost first. Stops at the first imperfect level or
/// non-canonical loop.
pub fn perfect_nest_loops(root: &Stmt) -> Vec<CanonLoop> {
    let mut out = Vec::new();
    let mut cur = root;
    while let Some(canon) = canonicalize(cur) {
        out.push(canon);
        let Some(f) = cur.as_for() else { break };
        let body = f.body.body_stmts();
        if body.len() == 1 && body[0].is_for() {
            cur = &body[0];
        } else {
            break;
        }
    }
    out
}

/// Collects the hierarchical indices of every loop in the region, in
/// pre-order.
pub fn all_loops(root: &Stmt) -> Vec<HierIndex> {
    let mut out = Vec::new();
    fn rec(stmt: &Stmt, index: &HierIndex, out: &mut Vec<HierIndex>) {
        if stmt.is_for() {
            out.push(index.clone());
        }
        for i in 0..child_count(stmt) {
            if let Some(c) = child(stmt, i) {
                rec(c, &index.push(i), out);
            }
        }
    }
    rec(root, &HierIndex::root(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn first_stmt(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    #[test]
    fn canonicalizes_common_forms() {
        for step_src in ["i++", "i += 2", "i = i + 3"] {
            let src =
                format!("void f(int n) {{ for (int i = 0; i < n; {step_src}) {{ n = n; }} }}");
            let l = canonicalize(&first_stmt(&src)).unwrap();
            assert_eq!(l.var, "i");
            assert!(l.declares_var);
        }
    }

    #[test]
    fn inclusive_bound_is_recognized() {
        let l = canonicalize(&first_stmt(
            "void f(int n) { for (int i = 1; i <= n; i++) { n = n; } }",
        ))
        .unwrap();
        assert!(l.inclusive);
        // i <= n  has exclusive bound n + 1.
        assert_eq!(
            l.exclusive_upper(),
            Expr::bin(BinOp::Add, Expr::ident("n"), Expr::int(1))
        );
    }

    #[test]
    fn rejects_non_canonical_loops() {
        // Decreasing loop.
        assert!(canonicalize(&first_stmt(
            "void f(int n) { for (int i = n; i > 0; i -= 1) { n = n; } }"
        ))
        .is_none());
        // Condition on a different variable.
        assert!(canonicalize(&first_stmt(
            "void f(int n, int m) { for (int i = 0; m < n; i++) { n = n; } }"
        ))
        .is_none());
    }

    #[test]
    fn const_trip_count() {
        let l = canonicalize(&first_stmt(
            "void f() { for (int i = 0; i < 10; i += 3) { int x; } }",
        ))
        .unwrap();
        assert_eq!(l.const_trip_count(), Some(4));
        let l = canonicalize(&first_stmt(
            "void f() { for (int i = 0; i <= 10; i++) { int x; } }",
        ))
        .unwrap();
        assert_eq!(l.const_trip_count(), Some(11));
    }

    const MATMUL: &str = r#"
    void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
                for (int k = 0; k < n; k++)
                    C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
    "#;

    #[test]
    fn matmul_is_a_perfect_depth_three_nest() {
        let root = first_stmt(MATMUL);
        let info = loop_nest_info(&root);
        assert_eq!(info.depth, 3);
        assert!(info.perfect);
        assert_eq!(info.inner_loops, vec!["0.0.0".parse().unwrap()]);
        assert_eq!(info.outer_loops, vec![HierIndex::root()]);
    }

    #[test]
    fn imperfect_nest_is_detected() {
        let root = first_stmt(
            "void f(int n, double A[8]) { for (int i = 0; i < n; i++) { A[0] = 0.0; for (int j = 0; j < n; j++) { A[j] = 1.0; } } }",
        );
        let info = loop_nest_info(&root);
        assert_eq!(info.depth, 2);
        assert!(!info.perfect);
    }

    #[test]
    fn multiple_inner_loops_are_listed() {
        let root = first_stmt(
            "void f(int n, double A[8]) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { A[j] = 1.0; } for (int k = 0; k < n; k++) { A[k] = 2.0; } } }",
        );
        let info = loop_nest_info(&root);
        assert_eq!(info.inner_loops.len(), 2);
        assert_eq!(info.inner_loops[0], "0.0".parse().unwrap());
        assert_eq!(info.inner_loops[1], "0.1".parse().unwrap());
    }

    #[test]
    fn perfect_nest_loops_extracts_all_levels() {
        let root = first_stmt(MATMUL);
        let loops = perfect_nest_loops(&root);
        assert_eq!(loops.len(), 3);
        assert_eq!(loops[0].var, "i");
        assert_eq!(loops[2].var, "k");
    }

    #[test]
    fn all_loops_preorder() {
        let root = first_stmt(MATMUL);
        let loops = all_loops(&root);
        assert_eq!(loops.len(), 3);
        assert_eq!(loops[1], "0.0".parse().unwrap());
    }

    #[test]
    fn innermost_body_with_many_statements_is_still_perfect() {
        let root = first_stmt(
            "void f(int n, double A[8]) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { A[j] = 1.0; A[j] = A[j] + 1.0; } } }",
        );
        assert!(is_perfect_nest(&root));
    }
}
