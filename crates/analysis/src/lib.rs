//! Program analyses over the Locus source IR.
//!
//! This crate supplies the analyses the paper obtains from Rose/Pips and
//! from the `BuiltIn` module collection (Sec. IV-A.4):
//!
//! * [`loops`] — canonical-loop recognition and the loop-nest queries
//!   `IsPerfectLoopNest`, `LoopNestDepth`, `ListInnerLoops`,
//!   `ListOuterLoops`;
//! * [`affine`] — affine-form extraction from subscript expressions;
//! * [`polyhedron`] — integer Fourier–Motzkin feasibility over affine
//!   constraint systems (the Omega-style real/dark-shadow test), the
//!   exact engine for triangular and shifted iteration domains;
//! * [`deps`] — data-dependence analysis: exact polyhedral decisions
//!   wherever bounds and subscripts are affine, with the classic
//!   ZIV / strong-SIV / GCD tests as the conservative fallback, and an
//!   explicit *unknown* outcome that models the `IsDepAvailable` query
//!   of Fig. 13. Every dependence carries a [`deps::Provenance`] tag.
//!
//! Transformations in `locus-transform` consult these analyses for their
//! legality checks; by design (Sec. II of the paper), the *system* never
//! checks legality itself — each module decides, and a programmer can
//! force a transformation when they know better.

#![warn(missing_docs)]

pub mod affine;
pub mod deps;
pub mod loops;
pub mod polyhedron;

pub use affine::AffineExpr;
pub use deps::{DepKind, Dependence, DependenceInfo, Direction, Provenance};
pub use loops::{CanonLoop, LoopNestInfo};
pub use polyhedron::{Feasibility, PolySystem};
