//! Program analyses over the Locus source IR.
//!
//! This crate supplies the analyses the paper obtains from Rose/Pips and
//! from the `BuiltIn` module collection (Sec. IV-A.4):
//!
//! * [`loops`] — canonical-loop recognition and the loop-nest queries
//!   `IsPerfectLoopNest`, `LoopNestDepth`, `ListInnerLoops`,
//!   `ListOuterLoops`;
//! * [`affine`] — affine-form extraction from subscript expressions;
//! * [`deps`] — data-dependence analysis (ZIV / strong-SIV / GCD tests,
//!   direction vectors) with an explicit *unknown* outcome that models the
//!   `IsDepAvailable` query of Fig. 13.
//!
//! Transformations in `locus-transform` consult these analyses for their
//! legality checks; by design (Sec. II of the paper), the *system* never
//! checks legality itself — each module decides, and a programmer can
//! force a transformation when they know better.

#![warn(missing_docs)]

pub mod affine;
pub mod deps;
pub mod loops;

pub use affine::AffineExpr;
pub use deps::{DepKind, Dependence, DependenceInfo, Direction};
pub use loops::{CanonLoop, LoopNestInfo};
