//! Data-dependence analysis for loop nests.
//!
//! Implements the classic subscript dependence tests (ZIV, strong SIV,
//! and the GCD fallback) over affine subscripts, producing direction
//! vectors relative to the enclosing canonical loop nest. The analysis is
//! deliberately conservative: anything it cannot prove independent is a
//! dependence, and any non-affine subscript makes the whole region's
//! dependence information *unavailable* — which is exactly the
//! `RoseLocus.IsDepAvailable()` query of the paper's Fig. 13 (and mirrors
//! the applicability limit that makes Pluto skip non-affine nests in
//! Sec. V-D).

use std::collections::BTreeMap;

use locus_srcir::ast::{Expr, Stmt, StmtKind};
use locus_srcir::visit::{child, child_count};

use crate::affine::{extract_affine, AffineExpr};
use crate::loops::{canonicalize, perfect_nest_loops};

/// Dependence direction for one loop level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<` — carried forward by this loop.
    Lt,
    /// `=` — same iteration of this loop.
    Eq,
    /// `>` — would be carried backward (only appears pre-normalization).
    Gt,
    /// `*` — unknown.
    Star,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            Direction::Lt => '<',
            Direction::Eq => '=',
            Direction::Gt => '>',
            Direction::Star => '*',
        };
        write!(f, "{c}")
    }
}

/// Kind of a data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read (true/flow dependence).
    Flow,
    /// Read then write (anti dependence).
    Anti,
    /// Write then write (output dependence).
    Output,
}

/// One data dependence between two statement accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Index of the source statement (in region statement order).
    pub src_stmt: usize,
    /// Index of the destination statement.
    pub dst_stmt: usize,
    /// The variable or array involved.
    pub array: String,
    /// Dependence kind.
    pub kind: DepKind,
    /// Direction per loop level, outermost first (normalized: never
    /// lexicographically negative).
    pub directions: Vec<Direction>,
}

impl Dependence {
    /// `true` when the dependence is within a single iteration of every
    /// loop (all `=` directions).
    pub fn is_loop_independent(&self) -> bool {
        self.directions.iter().all(|d| *d == Direction::Eq)
    }

    /// The outermost loop level (0-based) that carries this dependence,
    /// if any. `Star` levels count as carriers.
    pub fn carrier_level(&self) -> Option<usize> {
        self.directions
            .iter()
            .position(|d| matches!(d, Direction::Lt | Direction::Gt | Direction::Star))
    }
}

/// The result of analyzing a loop-nest region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceInfo {
    /// `false` when some subscript was non-affine (or similar), so no
    /// dependence facts are known. Mirrors `IsDepAvailable()`.
    pub available: bool,
    /// The loop variables of the perfect nest, outermost first.
    pub loop_vars: Vec<String>,
    /// All (normalized) dependences that could not be disproven.
    pub deps: Vec<Dependence>,
    /// Number of assignment statements seen in the region body.
    pub stmt_count: usize,
}

impl DependenceInfo {
    /// Checks whether permuting the loops by `perm` preserves all
    /// dependences (`perm[new_level] = old_level`).
    ///
    /// A permutation is legal iff every direction vector remains
    /// lexicographically non-negative after permutation.
    pub fn interchange_legal(&self, perm: &[usize]) -> bool {
        if !self.available {
            return false;
        }
        self.deps.iter().all(|dep| {
            let permuted: Vec<Direction> = perm
                .iter()
                .map(|&old| dep.directions.get(old).copied().unwrap_or(Direction::Eq))
                .collect();
            lex_nonnegative(&permuted)
        })
    }

    /// Checks whether the loops at levels `band` (0-based, outermost
    /// first) are fully permutable, the legality condition for tiling the
    /// band.
    pub fn band_permutable(&self, band: &[usize]) -> bool {
        if !self.available {
            return false;
        }
        self.deps.iter().all(|dep| {
            // If the dependence is carried by a loop outside (before) the
            // band, the band loops may be reordered freely for it.
            if let Some(level) = dep.carrier_level() {
                if level < *band.iter().min().unwrap_or(&0)
                    && dep.directions[level] == Direction::Lt
                {
                    return true;
                }
            }
            band.iter().all(|&l| {
                matches!(
                    dep.directions.get(l).copied().unwrap_or(Direction::Eq),
                    Direction::Eq | Direction::Lt
                )
            })
        })
    }

    /// Checks whether distributing the (outermost) loop over its body
    /// statements, in source order, is legal: no dependence may point from
    /// a later statement back to an earlier one.
    pub fn distribution_legal(&self) -> bool {
        if !self.available {
            return false;
        }
        self.deps.iter().all(|dep| dep.src_stmt <= dep.dst_stmt)
    }

    /// `true` when no dependence is carried by any loop (every dependence
    /// is loop independent) — the condition `#pragma ivdep` asserts.
    pub fn vectorizable(&self) -> bool {
        self.available && self.deps.iter().all(Dependence::is_loop_independent)
    }
}

/// One array (or scalar) access with its affine subscripts.
#[derive(Debug, Clone)]
struct Access {
    stmt: usize,
    array: String,
    /// `None` when the access is scalar or a subscript is non-affine.
    subscripts: Option<Vec<AffineExpr>>,
    is_write: bool,
}

/// Analyzes the loop-nest region rooted at `root`.
///
/// The loop context is the chain of perfectly nested canonical loops from
/// the root; accesses anywhere in the region body are collected, and
/// subscripts referencing variables declared *inside* the region are
/// treated as non-affine (their values are not modeled).
pub fn analyze_region(root: &Stmt) -> DependenceInfo {
    let nest = perfect_nest_loops(root);
    let loop_vars: Vec<String> = nest.iter().map(|l| l.var.clone()).collect();
    let loop_steps: Vec<i64> = nest.iter().map(|l| l.step).collect();

    let mut accesses = Vec::new();
    let mut local_decls = Vec::new();
    let mut stmt_counter = 0usize;
    let mut available = true;
    collect_accesses(
        root,
        &loop_vars,
        &mut local_decls,
        &mut stmt_counter,
        &mut accesses,
        &mut available,
    );

    if !available {
        return DependenceInfo {
            available: false,
            loop_vars,
            deps: Vec::new(),
            stmt_count: stmt_counter,
        };
    }

    let mut deps = Vec::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(i) {
            if a.array != b.array || (!a.is_write && !b.is_write) {
                continue;
            }
            if std::ptr::eq(a, b) {
                continue;
            }
            if let Some(mut dep_list) = test_pair(a, b, &loop_vars, &loop_steps) {
                deps.append(&mut dep_list);
            }
        }
    }
    deps.sort_by(|x, y| {
        (x.src_stmt, x.dst_stmt, &x.array).cmp(&(y.src_stmt, y.dst_stmt, &y.array))
    });
    deps.dedup();

    DependenceInfo {
        available,
        loop_vars,
        deps,
        stmt_count: stmt_counter,
    }
}

fn collect_accesses(
    stmt: &Stmt,
    loop_vars: &[String],
    local_decls: &mut Vec<String>,
    stmt_counter: &mut usize,
    out: &mut Vec<Access>,
    available: &mut bool,
) {
    match &stmt.kind {
        StmtKind::Expr(e) => {
            let idx = *stmt_counter;
            *stmt_counter += 1;
            collect_expr_accesses(e, idx, loop_vars, local_decls, out, available, false);
        }
        StmtKind::Decl { name, init, .. } => {
            local_decls.push(name.clone());
            if let Some(init) = init {
                let idx = *stmt_counter;
                *stmt_counter += 1;
                collect_reads(init, idx, local_decls, out, available);
            }
        }
        _ => {
            // Register loop induction variables as locally bound *before*
            // visiting the body so reads of them don't create dependences.
            if let Some(f) = stmt.as_for() {
                if let Some(canon) = canonicalize(stmt) {
                    local_decls.push(canon.var);
                } else if let Some(init) = &f.init {
                    if let StmtKind::Decl { name, .. } = &init.kind {
                        local_decls.push(name.clone());
                    } else if let StmtKind::Expr(Expr::Assign { lhs, .. }) = &init.kind {
                        if let Expr::Ident(name) = lhs.as_ref() {
                            local_decls.push(name.clone());
                        }
                    }
                }
            }
            for i in 0..child_count(stmt) {
                if let Some(c) = child(stmt, i) {
                    collect_accesses(c, loop_vars, local_decls, stmt_counter, out, available);
                }
            }
        }
    }
}

#[allow(clippy::only_used_in_recursion)] // kept for signature symmetry
fn collect_expr_accesses(
    e: &Expr,
    stmt: usize,
    loop_vars: &[String],
    local_decls: &mut Vec<String>,
    out: &mut Vec<Access>,
    available: &mut bool,
    _lhs: bool,
) {
    match e {
        Expr::Assign { op, lhs, rhs } => {
            // The written location.
            record_access(lhs, stmt, local_decls, out, available, true);
            // Compound assignment also reads the location.
            if op.to_bin_op().is_some() {
                record_access(lhs, stmt, local_decls, out, available, false);
            }
            // Subscripts of the lhs are reads.
            if let Expr::Index { base, index } = lhs.as_ref() {
                collect_reads(index, stmt, local_decls, out, available);
                let mut cur = base.as_ref();
                while let Expr::Index { base, index } = cur {
                    collect_reads(index, stmt, local_decls, out, available);
                    cur = base;
                }
            }
            collect_expr_accesses(rhs, stmt, loop_vars, local_decls, out, available, false);
        }
        _ => collect_reads(e, stmt, local_decls, out, available),
    }
}

fn collect_reads(
    e: &Expr,
    stmt: usize,
    local_decls: &[String],
    out: &mut Vec<Access>,
    available: &mut bool,
) {
    collect_reads_rec(e, stmt, local_decls, out, available);
}

fn collect_reads_rec(
    e: &Expr,
    stmt: usize,
    local_decls: &[String],
    out: &mut Vec<Access>,
    available: &mut bool,
) {
    match e {
        Expr::Index { .. } => {
            record_access(e, stmt, local_decls, out, available, false);
            // Subscripts themselves may read arrays.
            let mut cur = e;
            while let Expr::Index { base, index } = cur {
                collect_reads_rec(index, stmt, local_decls, out, available);
                cur = base;
            }
        }
        Expr::Assign { op, lhs, rhs } => {
            record_access(lhs, stmt, local_decls, out, available, true);
            if op.to_bin_op().is_some() {
                record_access(lhs, stmt, local_decls, out, available, false);
            }
            collect_reads_rec(rhs, stmt, local_decls, out, available);
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_reads_rec(lhs, stmt, local_decls, out, available);
            collect_reads_rec(rhs, stmt, local_decls, out, available);
        }
        Expr::Unary { operand, .. } => {
            collect_reads_rec(operand, stmt, local_decls, out, available)
        }
        Expr::Cast { expr, .. } => collect_reads_rec(expr, stmt, local_decls, out, available),
        Expr::Call { args, .. } => {
            for a in args {
                collect_reads_rec(a, stmt, local_decls, out, available);
            }
        }
        Expr::Ident(_) => record_access(e, stmt, local_decls, out, available, false),
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) => {}
    }
}

fn record_access(
    e: &Expr,
    stmt: usize,
    local_decls: &[String],
    out: &mut Vec<Access>,
    available: &mut bool,
    is_write: bool,
) {
    if let Some((name, indices)) = e.as_array_access() {
        let subscripts: Option<Vec<AffineExpr>> =
            indices.iter().map(|i| extract_affine(i)).collect();
        if subscripts.is_none() {
            *available = false;
        }
        out.push(Access {
            stmt,
            array: name.to_string(),
            subscripts,
            is_write,
        });
        return;
    }
    match e {
        Expr::Ident(name) => {
            if local_decls.iter().any(|d| d == name) {
                return;
            }
            // Scalar access to a region-external variable: if it is ever
            // written, pairs with other accesses become all-`*`
            // dependences.
            out.push(Access {
                stmt,
                array: name.clone(),
                subscripts: None,
                is_write,
            });
        }
        Expr::Unary { operand, .. }
            // `*p = ...`: treated as an opaque write, poisons analysis.
            if is_write => {
                if let Expr::Ident(name) = operand.as_ref() {
                    out.push(Access {
                        stmt,
                        array: name.clone(),
                        subscripts: None,
                        is_write: true,
                    });
                    *available = false;
                }
            }
        _ => {}
    }
}

/// Runs the subscript tests on one access pair. Returns `None` when
/// independence is proven; otherwise the (normalized) dependences.
fn test_pair(
    a: &Access,
    b: &Access,
    loop_vars: &[String],
    loop_steps: &[i64],
) -> Option<Vec<Dependence>> {
    let (sa, sb) = match (&a.subscripts, &b.subscripts) {
        (Some(sa), Some(sb)) => (sa, sb),
        // Scalar-vs-anything on the same name: unknown at all levels.
        _ => {
            let directions = vec![Direction::Star; loop_vars.len()];
            return Some(normalize(a, b, directions, loop_vars.len()));
        }
    };
    if sa.len() != sb.len() {
        // Same array used with different dimensionality: be conservative.
        let directions = vec![Direction::Star; loop_vars.len()];
        return Some(normalize(a, b, directions, loop_vars.len()));
    }

    // Per-variable distance constraints: None = unconstrained.
    let mut distances: BTreeMap<&str, Option<i64>> = BTreeMap::new();

    for (da, db) in sa.iter().zip(sb) {
        // Symbolic (non-loop-var) terms must cancel, otherwise unknown.
        let mut symbolic_mismatch = false;
        for v in da.vars().chain(db.vars()) {
            if !loop_vars.iter().any(|lv| lv == v) && da.coeff(v) != db.coeff(v) {
                symbolic_mismatch = true;
            }
        }
        if symbolic_mismatch {
            continue; // No information from this dimension.
        }

        let involved: Vec<&String> = loop_vars
            .iter()
            .filter(|v| da.coeff(v) != 0 || db.coeff(v) != 0)
            .collect();

        match involved.len() {
            0 => {
                // ZIV test.
                if da.constant != db.constant {
                    return None;
                }
            }
            1 => {
                let v = involved[0].as_str();
                let ca = da.coeff(v);
                let cb = db.coeff(v);
                if ca == cb && ca != 0 {
                    // Strong SIV: distance d with i_b = i_a + d.
                    let diff = da.constant - db.constant;
                    if diff % ca != 0 {
                        return None;
                    }
                    let d = diff / ca;
                    // Both iteration values lie on the lattice
                    // {lo, lo+step, ...}: a value distance that the step
                    // does not divide has no integer solution (this is
                    // what makes unrolled loop bodies independent).
                    let step = loop_vars
                        .iter()
                        .position(|lv| lv.as_str() == v)
                        .and_then(|i| loop_steps.get(i).copied())
                        .unwrap_or(1);
                    if step > 1 && d % step != 0 {
                        return None;
                    }
                    match distances.get(v) {
                        Some(Some(prev)) if *prev != d => return None,
                        _ => {
                            distances.insert(
                                loop_vars.iter().find(|lv| lv.as_str() == v).unwrap(),
                                Some(d),
                            );
                        }
                    }
                } else {
                    // Weak SIV — fall back to the GCD test.
                    if !gcd_test(&[ca, cb], db.constant - da.constant) {
                        return None;
                    }
                }
            }
            _ => {
                // MIV: GCD test over all coefficients.
                let coeffs: Vec<i64> = involved
                    .iter()
                    .flat_map(|v| [da.coeff(v), db.coeff(v)])
                    .collect();
                if !gcd_test(&coeffs, db.constant - da.constant) {
                    return None;
                }
            }
        }
    }

    let directions: Vec<Direction> = loop_vars
        .iter()
        .map(|v| match distances.get(v.as_str()) {
            Some(Some(d)) => match d.cmp(&0) {
                std::cmp::Ordering::Greater => Direction::Lt,
                std::cmp::Ordering::Equal => Direction::Eq,
                std::cmp::Ordering::Less => Direction::Gt,
            },
            _ => Direction::Star,
        })
        .collect();

    Some(normalize(a, b, directions, loop_vars.len()))
}

/// GCD test: does `gcd(coeffs)` divide `delta`?
/// Returns `true` when a dependence may exist.
fn gcd_test(coeffs: &[i64], delta: i64) -> bool {
    let g = coeffs.iter().copied().filter(|c| *c != 0).fold(0i64, gcd);
    if g == 0 {
        return delta == 0;
    }
    delta % g == 0
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Normalizes a raw direction vector into lexicographically non-negative
/// dependences, splitting leading `*` levels and flipping reversed
/// vectors (which swap source and destination and therefore kind).
fn normalize(a: &Access, b: &Access, directions: Vec<Direction>, levels: usize) -> Vec<Dependence> {
    let mut out = Vec::new();
    expand(&directions, 0, &mut Vec::new(), &mut |v: &[Direction]| {
        // Determine lexicographic class of a vector without stars.
        let mut class = std::cmp::Ordering::Equal;
        for d in v {
            match d {
                Direction::Lt => {
                    class = std::cmp::Ordering::Less;
                    break;
                }
                Direction::Gt => {
                    class = std::cmp::Ordering::Greater;
                    break;
                }
                _ => {}
            }
        }
        let (src, dst, dirs): (&Access, &Access, Vec<Direction>) = match class {
            std::cmp::Ordering::Less | std::cmp::Ordering::Equal => (a, b, v.to_vec()),
            std::cmp::Ordering::Greater => {
                // Flip the dependence: it actually runs dst -> src.
                let flipped = v
                    .iter()
                    .map(|d| match d {
                        Direction::Lt => Direction::Gt,
                        Direction::Gt => Direction::Lt,
                        other => *other,
                    })
                    .collect();
                (b, a, flipped)
            }
        };
        // Same-statement, same-iteration "dependence" of an access with
        // itself is meaningless.
        if class == std::cmp::Ordering::Equal
            && src.stmt == dst.stmt
            && src.is_write == dst.is_write
        {
            if !(src.is_write && dst.is_write) {
                return;
            }
            // Output self-dep in the same iteration: skip.
            return;
        }
        let kind = match (src.is_write, dst.is_write) {
            (true, true) => DepKind::Output,
            (true, false) => DepKind::Flow,
            (false, true) => DepKind::Anti,
            (false, false) => return,
        };
        out.push(Dependence {
            src_stmt: src.stmt,
            dst_stmt: dst.stmt,
            array: src.array.clone(),
            kind,
            directions: dirs,
        });
    });
    let _ = levels;
    out.sort_by(|x, y| format!("{:?}", x).cmp(&format!("{:?}", y)));
    out.dedup();
    out
}

/// Expands `*` entries that appear before the first definite `<`/`>` into
/// the three concrete directions, so each emitted vector has a definite
/// lexicographic class. Stars after the first definite entry are kept.
fn expand(
    dirs: &[Direction],
    i: usize,
    prefix: &mut Vec<Direction>,
    emit: &mut impl FnMut(&[Direction]),
) {
    if i == dirs.len() {
        emit(prefix);
        return;
    }
    match dirs[i] {
        Direction::Star => {
            for d in [Direction::Lt, Direction::Eq, Direction::Gt] {
                prefix.push(d);
                if d == Direction::Eq {
                    expand(dirs, i + 1, prefix, emit);
                } else {
                    // Class already decided; keep the rest as-is.
                    prefix.extend_from_slice(&dirs[i + 1..]);
                    emit(prefix);
                    prefix.truncate(prefix.len() - (dirs.len() - i - 1));
                }
                prefix.pop();
            }
        }
        d @ (Direction::Lt | Direction::Gt) => {
            prefix.push(d);
            prefix.extend_from_slice(&dirs[i + 1..]);
            emit(prefix);
            prefix.truncate(prefix.len() - (dirs.len() - i - 1));
            prefix.pop();
        }
        Direction::Eq => {
            prefix.push(Direction::Eq);
            expand(dirs, i + 1, prefix, emit);
            prefix.pop();
        }
    }
}

/// `true` when the vector cannot be lexicographically negative.
fn lex_nonnegative(dirs: &[Direction]) -> bool {
    for d in dirs {
        match d {
            Direction::Lt => return true,
            Direction::Eq => continue,
            Direction::Gt | Direction::Star => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn matmul() -> Stmt {
        region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
    }

    #[test]
    fn matmul_is_fully_permutable() {
        let info = analyze_region(&matmul());
        assert!(info.available);
        assert_eq!(info.loop_vars, vec!["i", "j", "k"]);
        // All 6 permutations of a matmul nest are legal.
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(info.interchange_legal(&perm), "perm {perm:?}");
        }
        assert!(info.band_permutable(&[0, 1, 2]));
    }

    #[test]
    fn flow_dependence_blocks_interchange() {
        // A[i][j] = A[i-1][j+1]: dependence (<, >) — interchange illegal.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        ));
        assert!(info.available);
        assert!(info.interchange_legal(&[0, 1]));
        assert!(!info.interchange_legal(&[1, 0]));
        assert!(!info.band_permutable(&[0, 1]));
    }

    #[test]
    fn wavefront_is_permutable() {
        // A[i][j] = A[i-1][j] + A[i][j-1]: directions (<,=) and (=,<).
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 1; j < n; j++)
                    A[i][j] = A[i - 1][j] + A[i][j - 1];
            }"#,
        ));
        assert!(info.available);
        assert!(info.interchange_legal(&[1, 0]));
        assert!(info.band_permutable(&[0, 1]));
    }

    #[test]
    fn independent_loop_is_vectorizable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++)
                A[i] = B[i] * 2.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.vectorizable());
        assert!(info.deps.is_empty());
    }

    #[test]
    fn carried_recurrence_is_not_vectorizable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8]) {
            for (int i = 1; i < n; i++)
                A[i] = A[i - 1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(!info.vectorizable());
        assert!(info
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.directions == vec![Direction::Lt]));
    }

    #[test]
    fn ziv_disproves_dependence() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][2]) {
            for (int i = 0; i < n; i++)
                A[i][0] = A[i][1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.deps.is_empty());
    }

    #[test]
    fn gcd_test_disproves_stride_mismatch() {
        // A[2*i] = A[2*i+1]: 2i = 2i'+1 has no integer solution.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++)
                A[2 * i] = A[2 * i + 1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.deps.is_empty());
    }

    #[test]
    fn nonaffine_subscript_makes_deps_unavailable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[64], int idx[64]) {
            for (int i = 0; i < n; i++)
                A[idx[i]] = 1.0;
            }"#,
        ));
        assert!(!info.available);
        assert!(!info.interchange_legal(&[0]));
    }

    #[test]
    fn modulo_subscript_makes_deps_unavailable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[2][8]) {
            for (int t = 0; t < n; t++)
                A[(t + 1) % 2][0] = A[t % 2][0];
            }"#,
        ));
        assert!(!info.available);
    }

    #[test]
    fn scalar_accumulation_creates_dependence() {
        let info = analyze_region(&region(
            r#"void f(int n, double s, double A[8]) {
            for (int i = 0; i < n; i++)
                s = s + A[i];
            }"#,
        ));
        assert!(info.available);
        assert!(!info.vectorizable());
    }

    #[test]
    fn local_scalar_does_not_create_dependence() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++) {
                double t = A[i];
                B[i] = t * 2.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.vectorizable());
    }

    #[test]
    fn distribution_legality_forward_dep() {
        // S0 writes A[i], S1 reads A[i]: forward dep, distribution legal.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++) {
                A[i] = 1.0;
                B[i] = A[i] * 2.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.distribution_legal());
    }

    #[test]
    fn distribution_illegal_with_backward_dep() {
        // S1 writes A[i], S0 reads A[i-1] in a *later* iteration: the flow
        // dependence runs from statement 1 back to statement 0, so the
        // loops cannot be distributed in source order.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8], double C[8]) {
            for (int i = 1; i < n; i++) {
                B[i] = A[i - 1];
                A[i] = C[i] + 1.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(!info.distribution_legal());
    }

    #[test]
    fn distribution_legal_with_forward_anti_dep() {
        // S0 reads A[i+1], S1 writes A[i]: anti dependence S0 -> S1 is
        // forward, so distribution in source order preserves it.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8], double C[8]) {
            for (int i = 0; i < n - 1; i++) {
                B[i] = A[i + 1];
                A[i] = C[i] + 1.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.distribution_legal());
    }

    #[test]
    fn unrolled_bodies_are_step_aware() {
        // `for (j = 1; j < n; j += 2) { A[j] = ..; A[j+1] = ..; }`
        // writes distinct addresses: value distance 1 is not divisible by
        // the step 2, so there is no dependence and the loop vectorizes.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int j = 1; j < n - 1; j += 2) {
                A[j] = B[j] * 2.0;
                A[j + 1] = B[j + 1] * 2.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.vectorizable(), "{:?}", info.deps);
        // With unit step the same subscripts do conflict across
        // iterations (A[j+1] then A[j]).
        let unit = analyze_region(&region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int j = 1; j < n - 1; j += 1) {
                A[j] = B[j] * 2.0;
                A[j + 1] = B[j + 1] * 2.0;
            }
            }"#,
        ));
        assert!(!unit.deps.is_empty());
    }

    #[test]
    fn forward_read_normalizes_to_anti_dependence() {
        // A[i] = A[i+1]: the raw write->read distance is negative, so the
        // normalizer flips it into an anti dependence read->write with a
        // lexicographically positive (<) direction.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n - 1; i++)
                A[i] = A[i + 1] * 0.5;
            }"#,
        ));
        assert!(info.available);
        assert!(!info.vectorizable());
        assert!(info
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Anti && d.directions == vec![Direction::Lt]));
        assert!(
            info.deps.iter().all(|d| lex_nonnegative(&d.directions)),
            "normalized vectors are never lexicographically negative"
        );
    }

    #[test]
    fn negative_coefficient_subscripts_are_conservative() {
        // A[n - i] = A[i]: coefficients -1 and +1 fall to the weak-SIV
        // GCD test, which cannot disprove the crossing — a (conservative)
        // dependence must be reported.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++)
                A[n - i] = A[i] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(!info.deps.is_empty(), "reflection may self-intersect");
        assert!(!info.vectorizable());
    }

    #[test]
    fn coupled_subscripts_disprove_dependence() {
        // A[i][i] = A[i-1][i]: dimension 0 demands distance 1, dimension
        // 1 demands distance 0 — the coupled system has no solution.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                A[i][i] = A[i - 1][i] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.deps.is_empty(), "{:?}", info.deps);
        assert!(info.vectorizable());
    }

    #[test]
    fn coupled_subscripts_with_consistent_distance_depend() {
        // A[i][i] = A[i-1][i-1]: both dimensions agree on distance 1.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                A[i][i] = A[i - 1][i - 1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.directions == vec![Direction::Lt]));
    }

    #[test]
    fn miv_gcd_distinguishes_coprime_from_non_coprime() {
        // 2i + 4j vs 2i + 4j + 1: gcd(2,4) = 2 does not divide 1 — no
        // dependence, the loop nest vectorizes.
        let coprime = analyze_region(&region(
            r#"void f(int n, double A[256]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[2 * i + 4 * j] = A[2 * i + 4 * j + 1] * 0.5;
            }"#,
        ));
        assert!(coprime.available);
        assert!(coprime.deps.is_empty(), "{:?}", coprime.deps);

        // 2i + 4j vs 2i + 4j + 2: gcd 2 divides 2, so a dependence may
        // exist and must be reported.
        let divisible = analyze_region(&region(
            r#"void f(int n, double A[256]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[2 * i + 4 * j] = A[2 * i + 4 * j + 2] * 0.5;
            }"#,
        ));
        assert!(divisible.available);
        assert!(!divisible.deps.is_empty());
        assert!(!divisible.vectorizable());
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Lt.to_string(), "<");
        assert_eq!(Direction::Star.to_string(), "*");
    }
}
