//! Data-dependence analysis for loop nests.
//!
//! Two engines cooperate here. The **exact** engine models each access
//! pair as a dependence polyhedron — iteration-domain constraints
//! (including triangular and shifted bounds like `k = i+1 .. N`),
//! subscript equalities, and step lattices — and decides existence and
//! direction vectors with the integer Fourier–Motzkin solver in
//! [`crate::polyhedron`]. The **conservative** engine is the classic
//! subscript-test stack (ZIV, strong SIV, GCD fallback) and remains the
//! fallback wherever the exact fragment does not apply (non-affine
//! bounds, deep nests, inner-local subscripts, scalars). Every reported
//! dependence carries a [`Provenance`] tag saying which engine decided
//! it, and [`DependenceInfo::exact`] records whether the whole region was
//! decided exactly. Any non-affine subscript still makes the region's
//! dependence information *unavailable* — the `RoseLocus.IsDepAvailable()`
//! query of the paper's Fig. 13 (mirroring the applicability limit that
//! makes Pluto skip non-affine nests in Sec. V-D).

use std::collections::BTreeMap;

use locus_srcir::ast::{Expr, Stmt, StmtKind};
use locus_srcir::visit::{child, child_count};

use crate::affine::{extract_affine, AffineExpr};
use crate::loops::{canonicalize, perfect_nest_loops, CanonLoop};
use crate::polyhedron::{Feasibility, PolySystem, MAX_EXACT_DEPTH};

/// Dependence direction for one loop level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<` — carried forward by this loop.
    Lt,
    /// `=` — same iteration of this loop.
    Eq,
    /// `>` — would be carried backward (only appears pre-normalization).
    Gt,
    /// `*` — unknown.
    Star,
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            Direction::Lt => '<',
            Direction::Eq => '=',
            Direction::Gt => '>',
            Direction::Star => '*',
        };
        write!(f, "{c}")
    }
}

/// How a dependence fact was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// Decided by the polyhedral engine with no free symbols involved:
    /// the dependence (and each direction vector) provably exists.
    Exact,
    /// Established conservatively — by the classic subscript tests, or by
    /// an exact decision forced to over-approximate free symbols. May be
    /// spurious; never misses a real dependence.
    Conservative,
}

impl Provenance {
    /// Stable lowercase tag used in traces, store records and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Provenance::Exact => "exact",
            Provenance::Conservative => "conservative",
        }
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Kind of a data dependence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write then read (true/flow dependence).
    Flow,
    /// Read then write (anti dependence).
    Anti,
    /// Write then write (output dependence).
    Output,
}

impl DepKind {
    /// Stable lowercase name (`"flow"`, `"anti"`, `"output"`).
    pub fn as_str(self) -> &'static str {
        match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One data dependence between two statement accesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dependence {
    /// Index of the source statement (in region statement order).
    pub src_stmt: usize,
    /// Index of the destination statement.
    pub dst_stmt: usize,
    /// The variable or array involved.
    pub array: String,
    /// Dependence kind.
    pub kind: DepKind,
    /// Direction per loop level, outermost first (normalized: never
    /// lexicographically negative).
    pub directions: Vec<Direction>,
    /// Which engine established this dependence.
    pub provenance: Provenance,
}

impl Dependence {
    /// `true` when the dependence is within a single iteration of every
    /// loop (all `=` directions).
    pub fn is_loop_independent(&self) -> bool {
        self.directions.iter().all(|d| *d == Direction::Eq)
    }

    /// The outermost loop level (0-based) that carries this dependence,
    /// if any. `Star` levels count as carriers.
    pub fn carrier_level(&self) -> Option<usize> {
        self.directions
            .iter()
            .position(|d| matches!(d, Direction::Lt | Direction::Gt | Direction::Star))
    }
}

impl std::fmt::Display for Dependence {
    /// Renders like `flow C s0->s0 (=,=,<) [exact]`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {} s{}->s{} (",
            self.kind, self.array, self.src_stmt, self.dst_stmt
        )?;
        for (i, d) in self.directions.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ") [{}]", self.provenance)
    }
}

/// The result of analyzing a loop-nest region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependenceInfo {
    /// `false` when some subscript was non-affine (or similar), so no
    /// dependence facts are known. Mirrors `IsDepAvailable()`.
    pub available: bool,
    /// The loop variables of the perfect nest, outermost first.
    pub loop_vars: Vec<String>,
    /// All (normalized) dependences that could not be disproven.
    pub deps: Vec<Dependence>,
    /// Number of assignment statements seen in the region body.
    pub stmt_count: usize,
    /// `true` when every access pair was decided by the exact polyhedral
    /// engine with no over-approximation: the dependence set is then the
    /// precise truth, not a safe superset.
    pub exact: bool,
}

impl DependenceInfo {
    /// Checks whether permuting the loops by `perm` preserves all
    /// dependences (`perm[new_level] = old_level`).
    ///
    /// A permutation is legal iff every direction vector remains
    /// lexicographically non-negative after permutation.
    pub fn interchange_legal(&self, perm: &[usize]) -> bool {
        if !self.available {
            return false;
        }
        self.deps.iter().all(|dep| {
            let permuted: Vec<Direction> = perm
                .iter()
                .map(|&old| dep.directions.get(old).copied().unwrap_or(Direction::Eq))
                .collect();
            lex_nonnegative(&permuted)
        })
    }

    /// Checks whether the loops at levels `band` (0-based, outermost
    /// first) are fully permutable, the legality condition for tiling the
    /// band.
    pub fn band_permutable(&self, band: &[usize]) -> bool {
        if !self.available {
            return false;
        }
        self.deps.iter().all(|dep| {
            // If the dependence is carried by a loop outside (before) the
            // band, the band loops may be reordered freely for it.
            if let Some(level) = dep.carrier_level() {
                if level < *band.iter().min().unwrap_or(&0)
                    && dep.directions[level] == Direction::Lt
                {
                    return true;
                }
            }
            band.iter().all(|&l| {
                matches!(
                    dep.directions.get(l).copied().unwrap_or(Direction::Eq),
                    Direction::Eq | Direction::Lt
                )
            })
        })
    }

    /// Checks whether distributing the (outermost) loop over its body
    /// statements, in source order, is legal: no dependence may point from
    /// a later statement back to an earlier one.
    pub fn distribution_legal(&self) -> bool {
        if !self.available {
            return false;
        }
        self.deps.iter().all(|dep| dep.src_stmt <= dep.dst_stmt)
    }

    /// `true` when no dependence is carried by any loop (every dependence
    /// is loop independent) — the condition `#pragma ivdep` asserts.
    pub fn vectorizable(&self) -> bool {
        self.available && self.deps.iter().all(Dependence::is_loop_independent)
    }
}

/// One inner loop (below the shared perfect nest) enclosing an access.
/// The exact engine models it as a per-instance existential variable
/// ranged over its affine bounds — how a subscript like `B[k][j]` with
/// `k = i+1 .. n` stays inside the polyhedral fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct InnerLoop {
    var: String,
    lower: AffineExpr,
    /// Exclusive upper bound.
    upper: AffineExpr,
}

/// One array (or scalar) access with its affine subscripts.
#[derive(Debug, Clone)]
struct Access {
    stmt: usize,
    array: String,
    /// `None` when the access is scalar or a subscript is non-affine.
    subscripts: Option<Vec<AffineExpr>>,
    is_write: bool,
    /// The affine inner loops (below the shared nest) enclosing the
    /// access, outermost first. Loops outside the affine fragment are
    /// simply absent; a subscript referencing one then fails the exact
    /// engine's variable check and the pair falls back conservative.
    inner: Vec<InnerLoop>,
}

/// Analyzes the loop-nest region rooted at `root`, using the exact
/// polyhedral engine wherever bounds and subscripts are affine and the
/// conservative subscript tests everywhere else.
///
/// The loop context is the chain of perfectly nested canonical loops from
/// the root; accesses anywhere in the region body are collected.
pub fn analyze_region(root: &Stmt) -> DependenceInfo {
    analyze_region_impl(root, true)
}

/// The conservative engine alone (ZIV / strong SIV / GCD), exactly as it
/// behaved before the polyhedral engine existed. Kept public for
/// differential testing: the exact engine may only *remove* dependences
/// relative to this, never add them.
pub fn analyze_region_conservative(root: &Stmt) -> DependenceInfo {
    analyze_region_impl(root, false)
}

fn analyze_region_impl(root: &Stmt, use_exact: bool) -> DependenceInfo {
    let nest = perfect_nest_loops(root);
    let loop_vars: Vec<String> = nest.iter().map(|l| l.var.clone()).collect();
    let loop_steps: Vec<i64> = nest.iter().map(|l| l.step).collect();

    // Pointers to the loops forming the shared perfect nest, so the
    // access walk can tell them apart from inner loops below the nest.
    let mut nest_ptrs: Vec<*const Stmt> = Vec::new();
    let mut cur = root;
    while canonicalize(cur).is_some() {
        nest_ptrs.push(cur as *const Stmt);
        if nest_ptrs.len() == nest.len() {
            break;
        }
        let Some(f) = cur.as_for() else { break };
        let body = f.body.body_stmts();
        if body.len() == 1 && body[0].is_for() {
            cur = &body[0];
        } else {
            break;
        }
    }

    let mut accesses = Vec::new();
    let mut local_decls = Vec::new();
    let mut stmt_counter = 0usize;
    let mut available = true;
    collect_accesses(
        root,
        &loop_vars,
        &nest_ptrs,
        &mut Vec::new(),
        &mut local_decls,
        &mut stmt_counter,
        &mut accesses,
        &mut available,
    );

    if !available {
        return DependenceInfo {
            available: false,
            loop_vars,
            deps: Vec::new(),
            stmt_count: stmt_counter,
            exact: false,
        };
    }

    let exact_nest = if use_exact {
        build_exact_nest(&nest)
    } else {
        None
    };
    let mut all_exact = exact_nest.is_some();
    let mut deps = Vec::new();
    for (i, a) in accesses.iter().enumerate() {
        for b in accesses.iter().skip(i) {
            if a.array != b.array || (!a.is_write && !b.is_write) {
                continue;
            }
            if std::ptr::eq(a, b) {
                continue;
            }
            let exact_result = exact_nest
                .as_ref()
                .and_then(|ctx| test_pair_exact(a, b, ctx, &local_decls));
            match exact_result {
                Some((mut dep_list, pair_exact)) => {
                    all_exact &= pair_exact;
                    deps.append(&mut dep_list);
                }
                None => {
                    all_exact = false;
                    if let Some(mut dep_list) = test_pair(a, b, &loop_vars, &loop_steps) {
                        deps.append(&mut dep_list);
                    }
                }
            }
        }
    }
    deps.sort_by(|x, y| {
        (x.src_stmt, x.dst_stmt, &x.array)
            .cmp(&(y.src_stmt, y.dst_stmt, &y.array))
            .then_with(|| {
                format!("{:?}{:?}", x.kind, x.directions)
                    .cmp(&format!("{:?}{:?}", y.kind, y.directions))
            })
            .then_with(|| {
                // Exact first, so dedup keeps the stronger provenance.
                (x.provenance == Provenance::Conservative)
                    .cmp(&(y.provenance == Provenance::Conservative))
            })
    });
    deps.dedup_by(|x, y| {
        x.src_stmt == y.src_stmt
            && x.dst_stmt == y.dst_stmt
            && x.array == y.array
            && x.kind == y.kind
            && x.directions == y.directions
    });

    DependenceInfo {
        available,
        loop_vars,
        deps,
        stmt_count: stmt_counter,
        exact: all_exact,
    }
}

/// Inner-loop chain budget per access (columns are per instance, so a
/// pair adds up to twice this).
const MAX_EXACT_INNER: usize = 2;

#[allow(clippy::too_many_arguments)]
fn collect_accesses(
    stmt: &Stmt,
    loop_vars: &[String],
    nest_ptrs: &[*const Stmt],
    inner: &mut Vec<InnerLoop>,
    local_decls: &mut Vec<String>,
    stmt_counter: &mut usize,
    out: &mut Vec<Access>,
    available: &mut bool,
) {
    match &stmt.kind {
        StmtKind::Expr(e) => {
            let idx = *stmt_counter;
            *stmt_counter += 1;
            collect_expr_accesses(e, idx, loop_vars, local_decls, inner, out, available, false);
        }
        StmtKind::Decl { name, init, .. } => {
            local_decls.push(name.clone());
            if let Some(init) = init {
                let idx = *stmt_counter;
                *stmt_counter += 1;
                collect_reads(init, idx, local_decls, inner, out, available);
            }
        }
        _ => {
            // Register loop induction variables as locally bound *before*
            // visiting the body so reads of them don't create dependences.
            // A canonical unit-step affine loop below the shared nest
            // additionally enters the inner chain, so subscripts using
            // its variable stay in the exact fragment; anything else is
            // simply left out and the per-pair variable check falls back
            // to the conservative engine when it is referenced.
            let mut pushed_inner = false;
            if let Some(f) = stmt.as_for() {
                let in_nest = nest_ptrs.contains(&(stmt as *const Stmt));
                if let Some(canon) = canonicalize(stmt) {
                    if !in_nest {
                        let shadowed = loop_vars.contains(&canon.var)
                            || inner.iter().any(|il| il.var == canon.var);
                        if let (Some(lower), Some(upper)) = (
                            extract_affine(&canon.lower),
                            extract_affine(&canon.exclusive_upper()),
                        ) {
                            if canon.step == 1 && !shadowed && inner.len() < MAX_EXACT_INNER {
                                inner.push(InnerLoop {
                                    var: canon.var.clone(),
                                    lower,
                                    upper,
                                });
                                pushed_inner = true;
                            }
                        }
                    }
                    local_decls.push(canon.var);
                } else if let Some(init) = &f.init {
                    if let StmtKind::Decl { name, .. } = &init.kind {
                        local_decls.push(name.clone());
                    } else if let StmtKind::Expr(Expr::Assign { lhs, .. }) = &init.kind {
                        if let Expr::Ident(name) = lhs.as_ref() {
                            local_decls.push(name.clone());
                        }
                    }
                }
            }
            for i in 0..child_count(stmt) {
                if let Some(c) = child(stmt, i) {
                    collect_accesses(
                        c,
                        loop_vars,
                        nest_ptrs,
                        inner,
                        local_decls,
                        stmt_counter,
                        out,
                        available,
                    );
                }
            }
            if pushed_inner {
                inner.pop();
            }
        }
    }
}

#[allow(clippy::only_used_in_recursion, clippy::too_many_arguments)] // kept for signature symmetry
fn collect_expr_accesses(
    e: &Expr,
    stmt: usize,
    loop_vars: &[String],
    local_decls: &mut Vec<String>,
    inner: &[InnerLoop],
    out: &mut Vec<Access>,
    available: &mut bool,
    _lhs: bool,
) {
    match e {
        Expr::Assign { op, lhs, rhs } => {
            // The written location.
            record_access(lhs, stmt, local_decls, inner, out, available, true);
            // Compound assignment also reads the location.
            if op.to_bin_op().is_some() {
                record_access(lhs, stmt, local_decls, inner, out, available, false);
            }
            // Subscripts of the lhs are reads.
            if let Expr::Index { base, index } = lhs.as_ref() {
                collect_reads(index, stmt, local_decls, inner, out, available);
                let mut cur = base.as_ref();
                while let Expr::Index { base, index } = cur {
                    collect_reads(index, stmt, local_decls, inner, out, available);
                    cur = base;
                }
            }
            collect_expr_accesses(
                rhs,
                stmt,
                loop_vars,
                local_decls,
                inner,
                out,
                available,
                false,
            );
        }
        _ => collect_reads(e, stmt, local_decls, inner, out, available),
    }
}

fn collect_reads(
    e: &Expr,
    stmt: usize,
    local_decls: &[String],
    inner: &[InnerLoop],
    out: &mut Vec<Access>,
    available: &mut bool,
) {
    collect_reads_rec(e, stmt, local_decls, inner, out, available);
}

fn collect_reads_rec(
    e: &Expr,
    stmt: usize,
    local_decls: &[String],
    inner: &[InnerLoop],
    out: &mut Vec<Access>,
    available: &mut bool,
) {
    match e {
        Expr::Index { .. } => {
            record_access(e, stmt, local_decls, inner, out, available, false);
            // Subscripts themselves may read arrays.
            let mut cur = e;
            while let Expr::Index { base, index } = cur {
                collect_reads_rec(index, stmt, local_decls, inner, out, available);
                cur = base;
            }
        }
        Expr::Assign { op, lhs, rhs } => {
            record_access(lhs, stmt, local_decls, inner, out, available, true);
            if op.to_bin_op().is_some() {
                record_access(lhs, stmt, local_decls, inner, out, available, false);
            }
            collect_reads_rec(rhs, stmt, local_decls, inner, out, available);
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_reads_rec(lhs, stmt, local_decls, inner, out, available);
            collect_reads_rec(rhs, stmt, local_decls, inner, out, available);
        }
        Expr::Unary { operand, .. } => {
            collect_reads_rec(operand, stmt, local_decls, inner, out, available)
        }
        Expr::Cast { expr, .. } => {
            collect_reads_rec(expr, stmt, local_decls, inner, out, available)
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_reads_rec(a, stmt, local_decls, inner, out, available);
            }
        }
        Expr::Ident(_) => record_access(e, stmt, local_decls, inner, out, available, false),
        Expr::IntLit(_) | Expr::FloatLit(_) | Expr::StrLit(_) => {}
    }
}

fn record_access(
    e: &Expr,
    stmt: usize,
    local_decls: &[String],
    inner: &[InnerLoop],
    out: &mut Vec<Access>,
    available: &mut bool,
    is_write: bool,
) {
    if let Some((name, indices)) = e.as_array_access() {
        let subscripts: Option<Vec<AffineExpr>> =
            indices.iter().map(|i| extract_affine(i)).collect();
        if subscripts.is_none() {
            *available = false;
        }
        out.push(Access {
            stmt,
            array: name.to_string(),
            subscripts,
            is_write,
            inner: inner.to_vec(),
        });
        return;
    }
    match e {
        Expr::Ident(name) => {
            if local_decls.iter().any(|d| d == name) {
                return;
            }
            // Scalar access to a region-external variable: if it is ever
            // written, pairs with other accesses become all-`*`
            // dependences.
            out.push(Access {
                stmt,
                array: name.clone(),
                subscripts: None,
                is_write,
                inner: inner.to_vec(),
            });
        }
        Expr::Unary { operand, .. }
            // `*p = ...`: treated as an opaque write, poisons analysis.
            if is_write => {
                if let Expr::Ident(name) = operand.as_ref() {
                    out.push(Access {
                        stmt,
                        array: name.clone(),
                        subscripts: None,
                        is_write: true,
                        inner: inner.to_vec(),
                    });
                    *available = false;
                }
            }
        _ => {}
    }
}

/// Affine model of a perfect nest, precomputed once per region for the
/// exact engine: per-level affine lower and exclusive upper bounds plus
/// the constant steps.
struct ExactNest {
    vars: Vec<String>,
    lowers: Vec<AffineExpr>,
    uppers: Vec<AffineExpr>,
    steps: Vec<i64>,
}

/// Free-symbol budget for one dependence polyhedron.
const MAX_EXACT_PARAMS: usize = 8;

/// Builds the affine nest model, or `None` when the nest is outside the
/// exact fragment: empty, too deep, non-affine bounds, duplicate loop
/// variables, or bounds referencing the loop's own / an inner variable.
/// Triangular and shifted bounds (references to strictly outer nest
/// variables) are exactly what the engine is for and are accepted.
fn build_exact_nest(nest: &[CanonLoop]) -> Option<ExactNest> {
    if nest.is_empty() || nest.len() > MAX_EXACT_DEPTH {
        return None;
    }
    let vars: Vec<String> = nest.iter().map(|l| l.var.clone()).collect();
    if (1..vars.len()).any(|i| vars[..i].contains(&vars[i])) {
        return None;
    }
    let mut lowers = Vec::with_capacity(nest.len());
    let mut uppers = Vec::with_capacity(nest.len());
    for (l, c) in nest.iter().enumerate() {
        if c.step <= 0 {
            return None;
        }
        let lo = extract_affine(&c.lower)?;
        let up = extract_affine(&c.exclusive_upper())?;
        for v in lo.vars().chain(up.vars()) {
            if let Some(p) = vars.iter().position(|nv| nv == v) {
                if p >= l {
                    return None;
                }
            }
        }
        lowers.push(lo);
        uppers.push(up);
    }
    Some(ExactNest {
        vars,
        lowers,
        uppers,
        steps: nest.iter().map(|l| l.step).collect(),
    })
}

/// Decides one access pair with the polyhedral engine.
///
/// Builds a system over `[x_0..x_{d-1}, y_0..y_{d-1}, params..., q...,
/// a-inner..., b-inner...]` (two copies of the iteration vector, shared
/// free symbols, lattice variables for non-unit steps, one existential
/// per inner loop per copy), asks for overall feasibility, then
/// enumerates direction vectors recursively, pruning any prefix whose
/// partial system is already empty.
///
/// Inner loops below the shared nest (a triangular `k = i+1 .. n` under
/// an `(i, j)` nest, say) do not take part in the direction vector: each
/// copy gets its own column ranged over the loop's affine bounds, and
/// Fourier–Motzkin projects it away.
///
/// Returns `None` when the pair is outside the exact fragment — missing
/// subscripts, dimension mismatch, too many free symbols, a subscript
/// referencing a region-local variable that is not a modeled inner loop
/// (whose per-iteration value the model cannot pin down), or an
/// undecidable base system — and the caller falls back to the
/// conservative tests. Otherwise returns the dependences plus whether
/// every decision was exact.
fn test_pair_exact(
    a: &Access,
    b: &Access,
    nest: &ExactNest,
    local_decls: &[String],
) -> Option<(Vec<Dependence>, bool)> {
    let (sa, sb) = match (&a.subscripts, &b.subscripts) {
        (Some(sa), Some(sb)) if sa.len() == sb.len() => (sa, sb),
        _ => return None,
    };
    let d = nest.vars.len();
    let (ia, ib) = (&a.inner, &b.inner);

    // Free symbols: anything in a bound or subscript that is neither a
    // nest variable nor (for the owning side) a modeled inner loop
    // variable. They get one column shared by both instances (the same
    // value on both sides) — correct for loop invariants and enclosing
    // loop variables. Any other region-local varies between the
    // instances, so the pair leaves the fragment.
    fn scan<'a>(
        aff: &'a AffineExpr,
        own: &[InnerLoop],
        nest: &ExactNest,
        local_decls: &[String],
        params: &mut Vec<&'a str>,
    ) -> Option<()> {
        for v in aff.vars() {
            if nest.vars.iter().any(|nv| nv == v) || own.iter().any(|il| il.var == v) {
                continue;
            }
            if local_decls.iter().any(|l| l == v) {
                return None;
            }
            if !params.contains(&v) {
                params.push(v);
            }
        }
        Some(())
    }
    let mut params: Vec<&str> = Vec::new();
    for aff in nest.lowers.iter().chain(&nest.uppers) {
        scan(aff, &[], nest, local_decls, &mut params)?;
    }
    for aff in sa {
        scan(aff, ia, nest, local_decls, &mut params)?;
    }
    for aff in sb {
        scan(aff, ib, nest, local_decls, &mut params)?;
    }
    for il in ia {
        scan(&il.lower, ia, nest, local_decls, &mut params)?;
        scan(&il.upper, ia, nest, local_decls, &mut params)?;
    }
    for il in ib {
        scan(&il.lower, ib, nest, local_decls, &mut params)?;
        scan(&il.upper, ib, nest, local_decls, &mut params)?;
    }
    if params.len() > MAX_EXACT_PARAMS {
        return None;
    }

    let q_levels: Vec<usize> = (0..d).filter(|&l| nest.steps[l] > 1).collect();
    let inner_base = 2 * d + params.len() + 2 * q_levels.len();
    let nvars = inner_base + ia.len() + ib.len();
    let mut sys = PolySystem::new(nvars);
    // Adds `sign * aff` (with nest and inner variables mapped to the
    // given copy) into a coefficient row and its constant.
    let add_aff = |aff: &AffineExpr, copy: usize, sign: i64, row: &mut [i64], k: &mut i64| {
        let own = if copy == 0 { ia } else { ib };
        for (name, c) in &aff.coeffs {
            let col = if let Some(l) = nest.vars.iter().position(|v| v == name) {
                copy * d + l
            } else if let Some(j) = own.iter().position(|il| &il.var == name) {
                inner_base + if copy == 0 { 0 } else { ia.len() } + j
            } else {
                2 * d + params.iter().position(|p| p == name).expect("collected")
            };
            row[col] += sign * c;
        }
        *k += sign * aff.constant;
    };

    for copy in 0..2 {
        for l in 0..d {
            // v >= lower
            let mut r = vec![0i64; nvars];
            let mut k = 0i64;
            r[copy * d + l] += 1;
            add_aff(&nest.lowers[l], copy, -1, &mut r, &mut k);
            sys.ge0(r, k);
            // v < upper
            let mut r = vec![0i64; nvars];
            let mut k = 0i64;
            r[copy * d + l] -= 1;
            add_aff(&nest.uppers[l], copy, 1, &mut r, &mut k);
            sys.ge0(r, k - 1);
            // Step lattice: v = lower + step*q with q >= 0, so values off
            // the stride grid are excluded (what makes unrolled bodies
            // independent).
            if nest.steps[l] > 1 {
                let qi = q_levels.iter().position(|&x| x == l).expect("collected");
                let qcol = 2 * d + params.len() + 2 * qi + copy;
                let mut r = vec![0i64; nvars];
                let mut k = 0i64;
                r[copy * d + l] += 1;
                add_aff(&nest.lowers[l], copy, -1, &mut r, &mut k);
                r[qcol] -= nest.steps[l];
                sys.eq0(r, k);
                let mut r = vec![0i64; nvars];
                r[qcol] = 1;
                sys.ge0(r, 0);
            }
        }
    }
    // Inner-loop domains: lower <= v < upper per copy. The bounds may
    // reference nest variables (triangular) — they resolve against the
    // owning copy's columns.
    for (copy, chain) in [(0usize, ia), (1usize, ib)] {
        for (j, il) in chain.iter().enumerate() {
            let col = inner_base + if copy == 0 { 0 } else { ia.len() } + j;
            let mut r = vec![0i64; nvars];
            let mut k = 0i64;
            r[col] += 1;
            add_aff(&il.lower, copy, -1, &mut r, &mut k);
            sys.ge0(r, k);
            let mut r = vec![0i64; nvars];
            let mut k = 0i64;
            r[col] -= 1;
            add_aff(&il.upper, copy, 1, &mut r, &mut k);
            sys.ge0(r, k - 1);
        }
    }
    // Subscript equalities: sa_i(x) = sb_i(y) per dimension.
    for (da, db) in sa.iter().zip(sb) {
        let mut r = vec![0i64; nvars];
        let mut k = 0i64;
        add_aff(da, 0, 1, &mut r, &mut k);
        add_aff(db, 1, -1, &mut r, &mut k);
        sys.eq0(r, k);
    }

    // A NonEmpty verdict is exact only when no free symbol actually
    // constrains the system (symbols with cancelled coefficients — the
    // same `n` offset on both sides — don't count).
    let symbolic = (0..params.len()).any(|i| sys.var_occurs(2 * d + i));

    match sys.feasibility() {
        Feasibility::Empty => return Some((Vec::new(), true)),
        Feasibility::Unknown => return None,
        Feasibility::NonEmpty => {}
    }

    let mut found: Vec<(Vec<Direction>, Feasibility)> = Vec::new();
    enumerate_directions(&mut sys, d, 0, &mut Vec::with_capacity(d), &mut found);

    let mut all_exact = true;
    let mut out = Vec::new();
    for (dirs, f) in found {
        let provenance = match f {
            Feasibility::NonEmpty if !symbolic => Provenance::Exact,
            _ => Provenance::Conservative,
        };
        all_exact &= provenance == Provenance::Exact;
        out.append(&mut normalize(a, b, dirs, d, provenance));
    }
    Some((out, all_exact))
}

/// Recursively enumerates direction vectors `(<, =, >)^d`, adding the
/// level-`level` ordering constraint between the two iteration copies and
/// pruning every subtree whose partial system is provably empty.
fn enumerate_directions(
    sys: &mut PolySystem,
    d: usize,
    level: usize,
    prefix: &mut Vec<Direction>,
    out: &mut Vec<(Vec<Direction>, Feasibility)>,
) {
    let nvars = sys.nvars();
    for dir in [Direction::Lt, Direction::Eq, Direction::Gt] {
        let mark = sys.len();
        let mut r = vec![0i64; nvars];
        match dir {
            // `<`: the sink iteration is strictly later, y - x - 1 >= 0.
            Direction::Lt => {
                r[d + level] = 1;
                r[level] = -1;
                sys.ge0(r, -1);
            }
            Direction::Eq => {
                r[d + level] = 1;
                r[level] = -1;
                sys.eq0(r, 0);
            }
            Direction::Gt => {
                r[level] = 1;
                r[d + level] = -1;
                sys.ge0(r, -1);
            }
            Direction::Star => unreachable!(),
        }
        let f = sys.feasibility();
        if f != Feasibility::Empty {
            prefix.push(dir);
            if level + 1 == d {
                out.push((prefix.clone(), f));
            } else {
                enumerate_directions(sys, d, level + 1, prefix, out);
            }
            prefix.pop();
        }
        sys.truncate(mark);
    }
}

/// Runs the subscript tests on one access pair. Returns `None` when
/// independence is proven; otherwise the (normalized) dependences.
fn test_pair(
    a: &Access,
    b: &Access,
    loop_vars: &[String],
    loop_steps: &[i64],
) -> Option<Vec<Dependence>> {
    let (sa, sb) = match (&a.subscripts, &b.subscripts) {
        (Some(sa), Some(sb)) => (sa, sb),
        // Scalar-vs-anything on the same name: unknown at all levels.
        _ => {
            let directions = vec![Direction::Star; loop_vars.len()];
            return Some(normalize(
                a,
                b,
                directions,
                loop_vars.len(),
                Provenance::Conservative,
            ));
        }
    };
    if sa.len() != sb.len() {
        // Same array used with different dimensionality: be conservative.
        let directions = vec![Direction::Star; loop_vars.len()];
        return Some(normalize(
            a,
            b,
            directions,
            loop_vars.len(),
            Provenance::Conservative,
        ));
    }

    // Per-variable distance constraints: None = unconstrained.
    let mut distances: BTreeMap<&str, Option<i64>> = BTreeMap::new();

    for (da, db) in sa.iter().zip(sb) {
        // Symbolic (non-loop-var) terms must cancel, otherwise unknown.
        let mut symbolic_mismatch = false;
        for v in da.vars().chain(db.vars()) {
            if !loop_vars.iter().any(|lv| lv == v) && da.coeff(v) != db.coeff(v) {
                symbolic_mismatch = true;
            }
        }
        if symbolic_mismatch {
            continue; // No information from this dimension.
        }

        let involved: Vec<&String> = loop_vars
            .iter()
            .filter(|v| da.coeff(v) != 0 || db.coeff(v) != 0)
            .collect();

        match involved.len() {
            0 => {
                // ZIV test.
                if da.constant != db.constant {
                    return None;
                }
            }
            1 => {
                let v = involved[0].as_str();
                let ca = da.coeff(v);
                let cb = db.coeff(v);
                if ca == cb && ca != 0 {
                    // Strong SIV: distance d with i_b = i_a + d.
                    let diff = da.constant - db.constant;
                    if diff % ca != 0 {
                        return None;
                    }
                    let d = diff / ca;
                    // Both iteration values lie on the lattice
                    // {lo, lo+step, ...}: a value distance that the step
                    // does not divide has no integer solution (this is
                    // what makes unrolled loop bodies independent).
                    let step = loop_vars
                        .iter()
                        .position(|lv| lv.as_str() == v)
                        .and_then(|i| loop_steps.get(i).copied())
                        .unwrap_or(1);
                    if step > 1 && d % step != 0 {
                        return None;
                    }
                    match distances.get(v) {
                        Some(Some(prev)) if *prev != d => return None,
                        _ => {
                            distances.insert(
                                loop_vars.iter().find(|lv| lv.as_str() == v).unwrap(),
                                Some(d),
                            );
                        }
                    }
                } else {
                    // Weak SIV — fall back to the GCD test.
                    if !gcd_test(&[ca, cb], db.constant - da.constant) {
                        return None;
                    }
                }
            }
            _ => {
                // MIV: GCD test over all coefficients.
                let coeffs: Vec<i64> = involved
                    .iter()
                    .flat_map(|v| [da.coeff(v), db.coeff(v)])
                    .collect();
                if !gcd_test(&coeffs, db.constant - da.constant) {
                    return None;
                }
            }
        }
    }

    let directions: Vec<Direction> = loop_vars
        .iter()
        .map(|v| match distances.get(v.as_str()) {
            Some(Some(d)) => match d.cmp(&0) {
                std::cmp::Ordering::Greater => Direction::Lt,
                std::cmp::Ordering::Equal => Direction::Eq,
                std::cmp::Ordering::Less => Direction::Gt,
            },
            _ => Direction::Star,
        })
        .collect();

    Some(normalize(
        a,
        b,
        directions,
        loop_vars.len(),
        Provenance::Conservative,
    ))
}

/// GCD test: does `gcd(coeffs)` divide `delta`?
/// Returns `true` when a dependence may exist.
fn gcd_test(coeffs: &[i64], delta: i64) -> bool {
    let g = coeffs.iter().copied().filter(|c| *c != 0).fold(0i64, gcd);
    if g == 0 {
        return delta == 0;
    }
    delta % g == 0
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Normalizes a raw direction vector into lexicographically non-negative
/// dependences, splitting leading `*` levels and flipping reversed
/// vectors (which swap source and destination and therefore kind).
fn normalize(
    a: &Access,
    b: &Access,
    directions: Vec<Direction>,
    levels: usize,
    provenance: Provenance,
) -> Vec<Dependence> {
    let mut out = Vec::new();
    expand(&directions, 0, &mut Vec::new(), &mut |v: &[Direction]| {
        // Determine lexicographic class of a vector without stars.
        let mut class = std::cmp::Ordering::Equal;
        for d in v {
            match d {
                Direction::Lt => {
                    class = std::cmp::Ordering::Less;
                    break;
                }
                Direction::Gt => {
                    class = std::cmp::Ordering::Greater;
                    break;
                }
                _ => {}
            }
        }
        let (src, dst, dirs): (&Access, &Access, Vec<Direction>) = match class {
            std::cmp::Ordering::Less | std::cmp::Ordering::Equal => (a, b, v.to_vec()),
            std::cmp::Ordering::Greater => {
                // Flip the dependence: it actually runs dst -> src.
                let flipped = v
                    .iter()
                    .map(|d| match d {
                        Direction::Lt => Direction::Gt,
                        Direction::Gt => Direction::Lt,
                        other => *other,
                    })
                    .collect();
                (b, a, flipped)
            }
        };
        // Same-statement, same-iteration "dependence" of an access with
        // itself is meaningless.
        if class == std::cmp::Ordering::Equal
            && src.stmt == dst.stmt
            && src.is_write == dst.is_write
        {
            if !(src.is_write && dst.is_write) {
                return;
            }
            // Output self-dep in the same iteration: skip.
            return;
        }
        let kind = match (src.is_write, dst.is_write) {
            (true, true) => DepKind::Output,
            (true, false) => DepKind::Flow,
            (false, true) => DepKind::Anti,
            (false, false) => return,
        };
        out.push(Dependence {
            src_stmt: src.stmt,
            dst_stmt: dst.stmt,
            array: src.array.clone(),
            kind,
            directions: dirs,
            provenance,
        });
    });
    let _ = levels;
    out.sort_by(|x, y| format!("{:?}", x).cmp(&format!("{:?}", y)));
    out.dedup();
    out
}

/// Expands `*` entries that appear before the first definite `<`/`>` into
/// the three concrete directions, so each emitted vector has a definite
/// lexicographic class. Stars after the first definite entry are kept.
fn expand(
    dirs: &[Direction],
    i: usize,
    prefix: &mut Vec<Direction>,
    emit: &mut impl FnMut(&[Direction]),
) {
    if i == dirs.len() {
        emit(prefix);
        return;
    }
    match dirs[i] {
        Direction::Star => {
            for d in [Direction::Lt, Direction::Eq, Direction::Gt] {
                prefix.push(d);
                if d == Direction::Eq {
                    expand(dirs, i + 1, prefix, emit);
                } else {
                    // Class already decided; keep the rest as-is.
                    prefix.extend_from_slice(&dirs[i + 1..]);
                    emit(prefix);
                    prefix.truncate(prefix.len() - (dirs.len() - i - 1));
                }
                prefix.pop();
            }
        }
        d @ (Direction::Lt | Direction::Gt) => {
            prefix.push(d);
            prefix.extend_from_slice(&dirs[i + 1..]);
            emit(prefix);
            prefix.truncate(prefix.len() - (dirs.len() - i - 1));
            prefix.pop();
        }
        Direction::Eq => {
            prefix.push(Direction::Eq);
            expand(dirs, i + 1, prefix, emit);
            prefix.pop();
        }
    }
}

/// `true` when the vector cannot be lexicographically negative.
fn lex_nonnegative(dirs: &[Direction]) -> bool {
    for d in dirs {
        match d {
            Direction::Lt => return true,
            Direction::Eq => continue,
            Direction::Gt | Direction::Star => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::parse_program;

    fn region(src: &str) -> Stmt {
        let p = parse_program(src).unwrap();
        let s = p.functions().next().unwrap().body[0].clone();
        s
    }

    fn matmul() -> Stmt {
        region(
            r#"void f(int n, double C[8][8], double A[8][8], double B[8][8]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    for (int k = 0; k < n; k++)
                        C[i][j] = C[i][j] + A[i][k] * B[k][j];
            }"#,
        )
    }

    #[test]
    fn matmul_is_fully_permutable() {
        let info = analyze_region(&matmul());
        assert!(info.available);
        assert_eq!(info.loop_vars, vec!["i", "j", "k"]);
        // All 6 permutations of a matmul nest are legal.
        for perm in [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            assert!(info.interchange_legal(&perm), "perm {perm:?}");
        }
        assert!(info.band_permutable(&[0, 1, 2]));
    }

    #[test]
    fn flow_dependence_blocks_interchange() {
        // A[i][j] = A[i-1][j+1]: dependence (<, >) — interchange illegal.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 0; j < n - 1; j++)
                    A[i][j] = A[i - 1][j + 1];
            }"#,
        ));
        assert!(info.available);
        assert!(info.interchange_legal(&[0, 1]));
        assert!(!info.interchange_legal(&[1, 0]));
        assert!(!info.band_permutable(&[0, 1]));
    }

    #[test]
    fn wavefront_is_permutable() {
        // A[i][j] = A[i-1][j] + A[i][j-1]: directions (<,=) and (=,<).
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                for (int j = 1; j < n; j++)
                    A[i][j] = A[i - 1][j] + A[i][j - 1];
            }"#,
        ));
        assert!(info.available);
        assert!(info.interchange_legal(&[1, 0]));
        assert!(info.band_permutable(&[0, 1]));
    }

    #[test]
    fn independent_loop_is_vectorizable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++)
                A[i] = B[i] * 2.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.vectorizable());
        assert!(info.deps.is_empty());
    }

    #[test]
    fn carried_recurrence_is_not_vectorizable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8]) {
            for (int i = 1; i < n; i++)
                A[i] = A[i - 1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(!info.vectorizable());
        assert!(info
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.directions == vec![Direction::Lt]));
    }

    #[test]
    fn ziv_disproves_dependence() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][2]) {
            for (int i = 0; i < n; i++)
                A[i][0] = A[i][1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.deps.is_empty());
    }

    #[test]
    fn gcd_test_disproves_stride_mismatch() {
        // A[2*i] = A[2*i+1]: 2i = 2i'+1 has no integer solution.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++)
                A[2 * i] = A[2 * i + 1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.deps.is_empty());
    }

    #[test]
    fn nonaffine_subscript_makes_deps_unavailable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[64], int idx[64]) {
            for (int i = 0; i < n; i++)
                A[idx[i]] = 1.0;
            }"#,
        ));
        assert!(!info.available);
        assert!(!info.interchange_legal(&[0]));
    }

    #[test]
    fn modulo_subscript_makes_deps_unavailable() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[2][8]) {
            for (int t = 0; t < n; t++)
                A[(t + 1) % 2][0] = A[t % 2][0];
            }"#,
        ));
        assert!(!info.available);
    }

    #[test]
    fn scalar_accumulation_creates_dependence() {
        let info = analyze_region(&region(
            r#"void f(int n, double s, double A[8]) {
            for (int i = 0; i < n; i++)
                s = s + A[i];
            }"#,
        ));
        assert!(info.available);
        assert!(!info.vectorizable());
    }

    #[test]
    fn local_scalar_does_not_create_dependence() {
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++) {
                double t = A[i];
                B[i] = t * 2.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.vectorizable());
    }

    #[test]
    fn distribution_legality_forward_dep() {
        // S0 writes A[i], S1 reads A[i]: forward dep, distribution legal.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8]) {
            for (int i = 0; i < n; i++) {
                A[i] = 1.0;
                B[i] = A[i] * 2.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.distribution_legal());
    }

    #[test]
    fn distribution_illegal_with_backward_dep() {
        // S1 writes A[i], S0 reads A[i-1] in a *later* iteration: the flow
        // dependence runs from statement 1 back to statement 0, so the
        // loops cannot be distributed in source order.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8], double C[8]) {
            for (int i = 1; i < n; i++) {
                B[i] = A[i - 1];
                A[i] = C[i] + 1.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(!info.distribution_legal());
    }

    #[test]
    fn distribution_legal_with_forward_anti_dep() {
        // S0 reads A[i+1], S1 writes A[i]: anti dependence S0 -> S1 is
        // forward, so distribution in source order preserves it.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8], double B[8], double C[8]) {
            for (int i = 0; i < n - 1; i++) {
                B[i] = A[i + 1];
                A[i] = C[i] + 1.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.distribution_legal());
    }

    #[test]
    fn unrolled_bodies_are_step_aware() {
        // `for (j = 1; j < n; j += 2) { A[j] = ..; A[j+1] = ..; }`
        // writes distinct addresses: value distance 1 is not divisible by
        // the step 2, so there is no dependence and the loop vectorizes.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int j = 1; j < n - 1; j += 2) {
                A[j] = B[j] * 2.0;
                A[j + 1] = B[j + 1] * 2.0;
            }
            }"#,
        ));
        assert!(info.available);
        assert!(info.vectorizable(), "{:?}", info.deps);
        // With unit step the same subscripts do conflict across
        // iterations (A[j+1] then A[j]).
        let unit = analyze_region(&region(
            r#"void f(int n, double A[64], double B[64]) {
            for (int j = 1; j < n - 1; j += 1) {
                A[j] = B[j] * 2.0;
                A[j + 1] = B[j + 1] * 2.0;
            }
            }"#,
        ));
        assert!(!unit.deps.is_empty());
    }

    #[test]
    fn forward_read_normalizes_to_anti_dependence() {
        // A[i] = A[i+1]: the raw write->read distance is negative, so the
        // normalizer flips it into an anti dependence read->write with a
        // lexicographically positive (<) direction.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n - 1; i++)
                A[i] = A[i + 1] * 0.5;
            }"#,
        ));
        assert!(info.available);
        assert!(!info.vectorizable());
        assert!(info
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Anti && d.directions == vec![Direction::Lt]));
        assert!(
            info.deps.iter().all(|d| lex_nonnegative(&d.directions)),
            "normalized vectors are never lexicographically negative"
        );
    }

    #[test]
    fn negative_coefficient_subscripts_are_conservative() {
        // A[n - i] = A[i]: coefficients -1 and +1 fall to the weak-SIV
        // GCD test, which cannot disprove the crossing — a (conservative)
        // dependence must be reported.
        let info = analyze_region(&region(
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++)
                A[n - i] = A[i] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(!info.deps.is_empty(), "reflection may self-intersect");
        assert!(!info.vectorizable());
    }

    #[test]
    fn coupled_subscripts_disprove_dependence() {
        // A[i][i] = A[i-1][i]: dimension 0 demands distance 1, dimension
        // 1 demands distance 0 — the coupled system has no solution.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                A[i][i] = A[i - 1][i] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.deps.is_empty(), "{:?}", info.deps);
        assert!(info.vectorizable());
    }

    #[test]
    fn coupled_subscripts_with_consistent_distance_depend() {
        // A[i][i] = A[i-1][i-1]: both dimensions agree on distance 1.
        let info = analyze_region(&region(
            r#"void f(int n, double A[8][8]) {
            for (int i = 1; i < n; i++)
                A[i][i] = A[i - 1][i - 1] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info
            .deps
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.directions == vec![Direction::Lt]));
    }

    #[test]
    fn miv_gcd_distinguishes_coprime_from_non_coprime() {
        // 2i + 4j vs 2i + 4j + 1: gcd(2,4) = 2 does not divide 1 — no
        // dependence, the loop nest vectorizes.
        let coprime = analyze_region(&region(
            r#"void f(int n, double A[256]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[2 * i + 4 * j] = A[2 * i + 4 * j + 1] * 0.5;
            }"#,
        ));
        assert!(coprime.available);
        assert!(coprime.deps.is_empty(), "{:?}", coprime.deps);

        // 2i + 4j vs 2i + 4j + 2: gcd 2 divides 2, so a dependence may
        // exist and must be reported.
        let divisible = analyze_region(&region(
            r#"void f(int n, double A[256]) {
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    A[2 * i + 4 * j] = A[2 * i + 4 * j + 2] * 0.5;
            }"#,
        ));
        assert!(divisible.available);
        assert!(!divisible.deps.is_empty());
        assert!(!divisible.vectorizable());
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Lt.to_string(), "<");
        assert_eq!(Direction::Star.to_string(), "*");
    }

    #[test]
    fn constant_bounds_make_the_analysis_exact() {
        let info = analyze_region(&region(
            r#"void f(double C[8][8], double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++)
                    for (int k = 0; k < 8; k++)
                        C[i][j] = C[i][j] + A[i][k] * A[j][k];
            }"#,
        ));
        assert!(info.available);
        assert!(info.exact, "{:?}", info.deps);
        assert!(info.deps.iter().all(|d| d.provenance == Provenance::Exact));
    }

    #[test]
    fn symbolic_bounds_are_decided_but_marked_conservative() {
        let info = analyze_region(&matmul());
        assert!(info.available);
        // Direction vectors are still the precise enumeration...
        assert!(info.interchange_legal(&[2, 1, 0]));
        // ...but with a free `n` the NonEmpty answers over-approximate.
        assert!(!info.exact);
        assert!(info
            .deps
            .iter()
            .all(|d| d.provenance == Provenance::Conservative));
    }

    #[test]
    fn triangular_syrk_nest_is_fully_permutable_and_exact() {
        // SYRK shape: j <= i. The exact engine proves the only deps on C
        // are k-carried (=,=,<) plus the loop-independent (=,=,=).
        let info = analyze_region(&region(
            r#"void f(double C[8][8], double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j <= i; j++)
                    for (int k = 0; k < 8; k++)
                        C[i][j] = C[i][j] + A[i][k] * A[j][k];
            }"#,
        ));
        assert!(info.available);
        assert!(info.exact);
        assert!(info.band_permutable(&[0, 1, 2]), "{:?}", info.deps);
        for dep in &info.deps {
            assert_eq!(dep.directions[0], Direction::Eq, "{dep:?}");
            assert_eq!(dep.directions[1], Direction::Eq, "{dep:?}");
        }
    }

    #[test]
    fn shifted_lower_bound_domain_is_modeled_exactly() {
        // k = i+1 .. 8: every write A[i][k] lands strictly above the
        // diagonal, every read A[k][i] strictly below — with the shifted
        // domain modeled, the sets never meet and independence is proven.
        let info = analyze_region(&region(
            r#"void f(double A[9][9]) {
            for (int i = 0; i < 8; i++)
                for (int k = i + 1; k < 8; k++)
                    A[i][k] = A[k][i] + 1.0;
            }"#,
        ));
        assert!(info.available);
        assert!(info.exact);
        assert!(info.deps.is_empty(), "{:?}", info.deps);

        // A genuinely carried recurrence in the same shifted domain is
        // still found, with its precise (=,<) vector.
        let carried = analyze_region(&region(
            r#"void f(double A[9][9]) {
            for (int i = 0; i < 8; i++)
                for (int k = i + 1; k < 8; k++)
                    A[i][k] = A[i][k - 1] + 1.0;
            }"#,
        ));
        assert!(carried.available);
        assert!(carried.exact);
        assert!(carried.deps.iter().any(|d| {
            d.kind == DepKind::Flow && d.directions == vec![Direction::Eq, Direction::Lt]
        }));
        assert!(carried.band_permutable(&[0, 1]), "{:?}", carried.deps);
    }

    #[test]
    fn triangular_domain_disproves_out_of_domain_crossing() {
        // Lower-triangular writes A[i][j] (j <= i) read A[j][i]: the
        // mirrored element lies strictly in the *upper* triangle except
        // on the diagonal, and diagonal touches are same-iteration. With
        // the domain modeled exactly there is no loop-carried dependence.
        let info = analyze_region(&region(
            r#"void f(double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < i; j++)
                    A[i][j] = A[j][i] * 0.5;
            }"#,
        ));
        assert!(info.available);
        assert!(info.exact);
        assert!(info.deps.is_empty(), "{:?}", info.deps);
        // The conservative engine cannot see the domain and must keep a
        // dependence — the exact engine strictly sharpens it.
        let conservative = analyze_region_conservative(&region(
            r#"void f(double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < i; j++)
                    A[i][j] = A[j][i] * 0.5;
            }"#,
        ));
        assert!(!conservative.deps.is_empty());
        assert!(!conservative.exact);
    }

    #[test]
    fn triangular_inner_loop_is_modeled_existentially() {
        // The TRMM shape: the innermost k loop sits below the perfect
        // (i, j) nest (two statements in j's body) and its triangular
        // bound `k = i+1 .. 8` makes B[k][j] touch only *later* rows.
        // Modeled as a per-instance existential, every pair stays exact
        // and the only carried direction is (<, =) — so interchanging
        // i and j is provably legal.
        let info = analyze_region(&region(
            r#"void f(double B[8][8], double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    for (int k = i + 1; k < 8; k++)
                        B[i][j] = B[i][j] + A[k][i] * B[k][j];
                    B[i][j] = 1.5 * B[i][j];
                }
            }"#,
        ));
        assert!(info.available);
        assert!(info.exact);
        assert_eq!(info.loop_vars, vec!["i", "j"]);
        assert!(!info.deps.is_empty());
        for dep in &info.deps {
            assert_eq!(dep.provenance, Provenance::Exact);
            assert!(
                matches!(dep.directions.as_slice(), [Direction::Lt, Direction::Eq])
                    || matches!(dep.directions.as_slice(), [Direction::Eq, Direction::Eq]),
                "unexpected direction: {dep:?}"
            );
        }
        assert!(info.interchange_legal(&[1, 0]));
        // The conservative engine splits the unknown k dimension into a
        // `*` cloud: it happens to land in the same cone here, but keeps
        // extra dependences (a spurious backward component) and stays
        // inexact.
        let cons = analyze_region_conservative(&region(
            r#"void f(double B[8][8], double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    for (int k = i + 1; k < 8; k++)
                        B[i][j] = B[i][j] + A[k][i] * B[k][j];
                    B[i][j] = 1.5 * B[i][j];
                }
            }"#,
        ));
        assert!(!cons.exact);
        assert!(cons.deps.len() > info.deps.len(), "{:?}", cons.deps);
    }

    #[test]
    fn unmodelable_inner_subscripts_fall_back_to_the_conservative_path() {
        // A non-unit-step inner loop stays outside the affine fragment;
        // subscripts referencing its variable must decline the exact
        // path rather than treat k as a shared symbol.
        let info = analyze_region(&region(
            r#"void f(double B[8][8], double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j < 8; j++) {
                    for (int k = 0; k < 8; k += 2)
                        B[i][j] = B[i][j] + A[k][i] * B[k][j];
                    B[i][j] = 1.5 * B[i][j];
                }
            }"#,
        ));
        assert!(info.available);
        assert!(!info.exact);
        assert!(!info.deps.is_empty());
    }

    #[test]
    fn exact_engine_only_removes_dependences() {
        // One-sided invariant on a mixed bag of nests: every dependence
        // the exact engine keeps must be covered by a conservative one
        // (same endpoints and kind, directions equal or generalized by
        // `*`), so exact refusals are a subset of conservative refusals.
        let sources = [
            r#"void f(double A[8][8]) {
            for (int i = 0; i < 8; i++)
                for (int j = 0; j <= i; j++)
                    A[i][j] = A[i][j] + 1.0;
            }"#,
            r#"void f(double A[8][8]) {
            for (int i = 1; i < 8; i++)
                for (int j = 1; j < 8; j++)
                    A[i][j] = A[i - 1][j] + A[i][j - 1];
            }"#,
            r#"void f(int n, double A[64]) {
            for (int i = 0; i < n; i++)
                A[n - i] = A[i] + 1.0;
            }"#,
        ];
        for src in sources {
            let exact = analyze_region(&region(src));
            let cons = analyze_region_conservative(&region(src));
            for dep in &exact.deps {
                assert!(
                    cons.deps.iter().any(|c| {
                        c.src_stmt == dep.src_stmt
                            && c.dst_stmt == dep.dst_stmt
                            && c.array == dep.array
                            && c.kind == dep.kind
                            && c.directions
                                .iter()
                                .zip(&dep.directions)
                                .all(|(cd, ed)| cd == ed || *cd == Direction::Star)
                    }),
                    "exact dep {dep:?} not covered by conservative set {:?}",
                    cons.deps
                );
            }
        }
    }
}
