//! Criterion bench behind Fig. 6 (left): skewed generic tiling and the
//! stencil measurement loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use locus_bench::bench_machine;
use locus_corpus::{stencil_program, Stencil};
use locus_srcir::index::HierIndex;
use locus_srcir::region::{extract_region, find_regions};
use locus_transform::generic_tiling::{generic_tile, skewing1_matrix};

fn bench(c: &mut Criterion) {
    let program = stencil_program(Stencil::Heat2d, 32, 6);
    let regions = find_regions(&program);
    let stmt = extract_region(&program, &regions[0]).expect("region").stmt;

    c.bench_function("fig6_stencils/skewed_tiling_transform", |b| {
        b.iter(|| {
            let mut s = stmt.clone();
            generic_tile(
                &mut s,
                &HierIndex::root(),
                black_box(&skewing1_matrix(3, 8)),
                None,
            )
            .unwrap();
            s
        })
    });

    let machine = bench_machine(1);
    let mut group = c.benchmark_group("fig6_stencils/measure");
    group.sample_size(10);
    for stencil in [Stencil::Jacobi1d, Stencil::Heat2d, Stencil::Seidel2d] {
        let p = stencil_program(stencil, 24, 4);
        group.bench_function(format!("{stencil}"), |b| {
            b.iter(|| machine.run(black_box(&p), "kernel").unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
