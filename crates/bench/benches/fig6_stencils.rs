//! Bench behind Fig. 6 (left): skewed generic tiling and the stencil
//! measurement loop, under the in-tree [`locus_bench::timer`] harness.

use std::hint::black_box;

use locus_bench::bench_machine;
use locus_bench::timer::bench_function;
use locus_corpus::{stencil_program, Stencil};
use locus_srcir::index::HierIndex;
use locus_srcir::region::{extract_region, find_regions};
use locus_transform::generic_tiling::{generic_tile, skewing1_matrix};

fn main() {
    let program = stencil_program(Stencil::Heat2d, 32, 6);
    let regions = find_regions(&program);
    let stmt = extract_region(&program, &regions[0]).expect("region").stmt;

    bench_function("fig6_stencils/skewed_tiling_transform", || {
        let mut s = stmt.clone();
        generic_tile(
            &mut s,
            &HierIndex::root(),
            black_box(&skewing1_matrix(3, 8)),
            None,
        )
        .unwrap();
        s
    });

    let machine = bench_machine(1);
    for stencil in [Stencil::Jacobi1d, Stencil::Heat2d, Stencil::Seidel2d] {
        let p = stencil_program(stencil, 24, 4);
        bench_function(&format!("fig6_stencils/measure/{stencil}"), || {
            machine.run(black_box(&p), "kernel").unwrap()
        });
    }
}
