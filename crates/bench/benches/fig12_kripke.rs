//! Bench behind Fig. 12: generating one Kripke variant (Altdesc +
//! Interchange + LICM + ScalarRepl + OMPFor) and running it, under the
//! in-tree [`locus_bench::timer`] harness.

use std::hint::black_box;

use locus_bench::bench_machine;
use locus_bench::fig12::fig11_locus_program;
use locus_bench::timer::bench_function;
use locus_core::LocusSystem;
use locus_corpus::{kripke_hand_optimized, kripke_skeleton, kripke_snippets, KripkeKernel};
use locus_space::{ParamValue, Point};

fn main() {
    let kernel = KripkeKernel::Scattering;
    let skeleton = kripke_skeleton(kernel);
    let locus = fig11_locus_program(kernel);
    let mut system = LocusSystem::new(bench_machine(4));
    system.snippets = kripke_snippets(kernel);
    system.check_legality = false;
    system.verify_results = false;
    let prepared = system.prepare(&skeleton, &locus).expect("prepare");
    let mut point = Point::new();
    point.set("datalayout", ParamValue::Choice(4)); // "ZDG"

    bench_function("fig12_kripke/build_variant", || {
        system
            .build_variant(black_box(&skeleton), &prepared, &point)
            .unwrap()
    });

    let variant = system.build_variant(&skeleton, &prepared, &point).unwrap();
    let machine = bench_machine(4);
    bench_function("fig12_kripke/measure/locus_variant", || {
        machine.run(black_box(&variant), "kernel").unwrap()
    });
    let hand = kripke_hand_optimized(kernel, "ZDG");
    bench_function("fig12_kripke/measure/hand_optimized", || {
        machine.run(black_box(&hand), "kernel").unwrap()
    });
}
