//! Bench behind Fig. 6 (right): the cost of the DGEMM pipeline stages —
//! preparing the Fig. 7 program, building one variant, measuring it on
//! the simulated machine, and a short end-to-end search.
//!
//! Runs under the in-tree [`locus_bench::timer`] harness (`cargo bench
//! -p locus-bench --bench fig6_dgemm`); the workspace has no external
//! bench dependencies.

use std::hint::black_box;

use locus_bench::fig6::fig7_locus_program;
use locus_bench::timer::bench_function;
use locus_bench::{bench_machine, fig6::run_dgemm};
use locus_core::LocusSystem;
use locus_corpus::dgemm_program;
use locus_space::{ParamValue, Point};

fn fig7_point() -> Point {
    let mut point = Point::new();
    for (id, v) in [
        ("tileI", 16),
        ("tileK", 16),
        ("tileJ", 16),
        ("tileI_2", 4),
        ("tileK_2", 4),
        ("tileJ_2", 4),
    ] {
        point.set(id, ParamValue::Int(v));
    }
    point.set("p6", ParamValue::Choice(0)); // schedule enum
    point.set("p7", ParamValue::Int(8)); // chunk
    point.set("p8", ParamValue::Choice(0)); // OR block
    point
}

fn main() {
    let source = dgemm_program(32);
    let locus = fig7_locus_program(512);
    let system = LocusSystem::new(bench_machine(4));
    let prepared = system.prepare(&source, &locus).expect("prepare");
    let point = fig7_point();

    bench_function("fig6_dgemm/prepare", || {
        system
            .prepare(black_box(&source), black_box(&locus))
            .unwrap()
    });
    bench_function("fig6_dgemm/build_variant", || {
        system
            .build_variant(black_box(&source), &prepared, &point)
            .unwrap()
    });
    let variant = system.build_variant(&source, &prepared, &point).unwrap();
    bench_function("fig6_dgemm/measure_32", || {
        system.measure(black_box(&variant)).unwrap()
    });
    bench_function("fig6_dgemm/search/bandit_budget8", || {
        let mut search = locus_search::BanditTuner::new(1);
        system
            .tune(black_box(&source), black_box(&locus), &mut search, 8)
            .unwrap()
    });
    bench_function("fig6_dgemm/figure/two_core_points", || {
        run_dgemm(black_box(24), 4, &[1, 4], 7, 16)
    });
}
