//! Bench of the Locus pipeline stages and the ablation knobs: parsing,
//! query substitution + optimization, space extraction, and the Table I
//! per-nest tuning step — with the Sec. IV-C optimizer on and off.
//! Runs under the in-tree [`locus_bench::timer`] harness.

use std::hint::black_box;

use locus_bench::bench_machine;
use locus_bench::table1::FIG13_PROGRAM;
use locus_bench::timer::bench_function;
use locus_core::LocusSystem;
use locus_corpus::generate_corpus;

fn main() {
    bench_function("pipeline/parse_fig13", || {
        locus_lang::parse(black_box(FIG13_PROGRAM)).unwrap()
    });

    let locus = locus_lang::parse(FIG13_PROGRAM).unwrap();
    let nest = generate_corpus(9, 1)
        .into_iter()
        .find(|n| n.depth >= 2 && n.affine)
        .expect("a deep affine nest exists");

    let mut on = LocusSystem::new(bench_machine(1));
    on.optimize_programs = true;
    let mut off = on.clone();
    off.optimize_programs = false;

    bench_function("pipeline/prepare_optimizer_on", || {
        on.prepare(black_box(&nest.program), &locus).unwrap()
    });
    bench_function("pipeline/prepare_optimizer_off", || {
        off.prepare(black_box(&nest.program), &locus).unwrap()
    });

    bench_function("pipeline/tune_one_nest/budget6", || {
        let mut search = locus_search::BanditTuner::new(3);
        on.tune(black_box(&nest.program), &locus, &mut search, 6)
            .unwrap()
    });

    // Dependence analysis, the hot inner analysis of every legality
    // check.
    let stmt = {
        let regions = locus_srcir::region::find_regions(&nest.program);
        locus_srcir::region::extract_region(&nest.program, &regions[0])
            .expect("region")
            .stmt
    };
    bench_function("pipeline/dependence_analysis", || {
        locus_analysis::deps::analyze_region(black_box(&stmt))
    });
}
