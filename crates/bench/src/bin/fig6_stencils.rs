//! Regenerates Fig. 6 (left): the six stencils — Locus (Fig. 9 skewed
//! generic tiling + empirical skew-factor search) vs Pluto (-tile -pet).
//!
//! Usage: `cargo run --release -p locus-bench --bin fig6_stencils`
//! (set `LOCUS_FULL=1` for larger grids).

use locus_bench::fig6::run_stencils;
use locus_bench::report::render_table;

fn main() {
    let full = std::env::var("LOCUS_FULL").is_ok();
    let (n, t, budget) = if full { (128, 16, 8) } else { (96, 12, 6) };

    eprintln!("Fig. 6 (left): stencils, {n} interior points, {t} time steps");
    let rows = run_stencils(n, t, budget);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.stencil.to_string(),
                format!("{:.2}x", r.locus),
                format!("{:.2}x", r.pluto),
                r.evaluations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Stencil speedup over the untiled baseline",
            &["stencil", "Locus", "Pluto-like", "evals"],
            &table
        )
    );
    let wins = rows.iter().filter(|r| r.locus >= r.pluto).count();
    println!(
        "Locus matches or beats Pluto on {wins}/6 stencils \
         (paper: Locus outperforms Pluto on all six, up to 4x over baseline)"
    );
}
