//! The cross-machine corpus sweep: every registry entry tuned cold on
//! every machine profile and compared against a one-evaluation store
//! transfer from the donor profile. Writes `BENCH_corpus.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_corpus
//! [--check] [output.json]` (threads via `LOCUS_THREADS`, default 8;
//! budget via `LOCUS_BUDGET`, default 16). `--check` runs the CI smoke
//! subset (two entries, two profiles, budget 4) and writes nothing.

use locus_bench::corpus::{run_corpus, run_smoke, to_json, CorpusRow};

fn print_rows(rows: &[CorpusRow]) {
    for r in rows {
        println!(
            "{:<18} {:<10} {:<18} space {:>8}  cold {:>3} evals (best @ {:>3}) {:>6.2}x  \
             transfer {} {:>6.2}x",
            r.entry,
            r.family,
            r.profile,
            r.space_size,
            r.cold_evaluations,
            r.cold_evals_to_best,
            r.cold_speedup,
            if r.is_donor {
                "  (donor)"
            } else if r.transfer_from_store {
                "from store"
            } else {
                "  fallback"
            },
            r.transfer_speedup,
        );
    }
}

fn main() {
    let threads = std::env::var("LOCUS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let budget = std::env::var("LOCUS_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--check") {
        eprintln!("corpus sweep smoke: 2 entries, 2 profiles, budget 4, {threads} threads");
        let rows = run_smoke(threads);
        print_rows(&rows);
        assert!(
            rows.iter()
                .filter(|r| !r.is_donor)
                .all(|r| r.transfer_from_store),
            "smoke: a transfer fell back to the static suggestion"
        );
        eprintln!("ok");
        return;
    }

    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_corpus.json".to_string());

    eprintln!("corpus x profile sweep, budget {budget}, {threads} worker threads");
    let rows = run_corpus(budget, threads);
    print_rows(&rows);
    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");
}
