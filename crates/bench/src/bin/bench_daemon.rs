//! Benchmarks `locusd` as a tuning service: 1, 4, and 16 concurrent
//! clients firing tune requests over the NDJSON wire protocol, each
//! level measured against a cold store and again against the warm
//! store the cold phase populated. Writes throughput and client-side
//! p50/p95 latency per phase to `BENCH_daemon.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_daemon
//! [output.json] [--check]`. With `--check` the harness first runs the
//! service-invariant smoke test (zero error replies, warm phase
//! re-measures nothing and beats cold wall-clock, a poisoned request is
//! isolated) and exits non-zero on any violation — this is the CI
//! entry point.

use locus_bench::daemon::{run_daemon_bench, to_json};

fn main() {
    let mut out = "BENCH_daemon.json".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out = arg;
        }
    }

    if check {
        eprintln!("checking service invariants (errors, warm replay, supervision)");
        locus_bench::daemon::check_daemon();
        eprintln!("service invariants hold");
    }

    eprintln!("locusd service benchmark: 1/4/16 clients, cold vs warm store");
    let rows = run_daemon_bench(&[1, 4, 16], 8);
    for r in &rows {
        println!(
            "{:>4} {:>2} clients  {:>4} requests  {:>2} errors  wall {:>8.3}s  \
             {:>8.1} req/s  p50 {:>8.2}ms  p95 {:>8.2}ms  {:>5} evaluations",
            r.phase,
            r.clients,
            r.requests,
            r.errors,
            r.wall_s,
            r.throughput_rps,
            r.p50_ms,
            r.p95_ms,
            r.evaluations,
        );
    }
    assert!(rows.iter().all(|r| r.errors == 0), "error replies observed");
    assert!(
        rows.iter()
            .filter(|r| r.phase == "warm")
            .all(|r| r.evaluations == 0),
        "a warm phase re-measured"
    );

    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");
}
