//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! 1. the Sec. IV-C Locus-program optimizer (space shrink from query
//!    substitution + DCE);
//! 2. dependent-range constraints (invalid-point rejection rate);
//! 3. search-module quality (bandit vs random vs annealing vs
//!    stratified exhaustive at equal budget);
//! 4. cache-simulator fidelity (the non-monotone tile-size cost
//!    surface that makes empirical search worthwhile).
//!
//! Usage: `cargo run --release -p locus-bench --bin ablations`

use locus_bench::report::render_table;
use locus_bench::{bench_machine, table1::FIG13_PROGRAM};
use locus_core::LocusSystem;
use locus_corpus::{dgemm_program, generate_corpus};
use locus_search::{AnnealTuner, BanditTuner, ExhaustiveSearch, RandomSearch, SearchModule};
use locus_srcir::index::HierIndex;

fn main() {
    ablation_program_optimizer();
    ablation_constraints();
    ablation_search_modules();
    ablation_cost_surface();
}

/// 1. Space sizes with and without the Sec. IV-C optimizer, over nests
///    of different depths (the paper's depth-1 example).
fn ablation_program_optimizer() {
    let locus = locus_lang::parse(FIG13_PROGRAM).expect("Fig. 13 parses");
    let mut rows = Vec::new();
    for nest in generate_corpus(21, 1) {
        let mut on = LocusSystem::new(bench_machine(1));
        on.optimize_programs = true;
        let mut off = on.clone();
        off.optimize_programs = false;
        let with = on
            .prepare(&nest.program, &locus)
            .map(|p| p.space.size())
            .unwrap_or(0);
        let without = off
            .prepare(&nest.program, &locus)
            .map(|p| p.space.size())
            .unwrap_or(0);
        if rows.len() < 6 {
            rows.push(vec![
                nest.name.clone(),
                nest.depth.to_string(),
                nest.affine.to_string(),
                without.to_string(),
                with.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation 1: Sec. IV-C program optimizer (space size per nest)",
            &[
                "nest",
                "depth",
                "affine",
                "space (opt off)",
                "space (opt on)"
            ],
            &rows
        )
    );
}

/// 2. How many proposed points the dependent-range revalidation rejects
///    in the two-level-tiling space of Fig. 7.
fn ablation_constraints() {
    let source = dgemm_program(32);
    let locus = locus_lang::parse(
        r#"CodeReg matmul {
            tileI = poweroftwo(2..32);
            tileI_2 = poweroftwo(2..tileI);
            Pips.Tiling(loop="0", factor=[tileI, tileI_2, 8]);
        }"#,
    )
    .expect("program parses");
    let system = LocusSystem::new(bench_machine(1));
    let mut search = ExhaustiveSearch::default();
    let result = system
        .tune(&source, &locus, &mut search, 64)
        .expect("tuning runs");
    println!("Ablation 2: dependent-range constraints (Fig. 7 style two-level tiling)");
    println!(
        "  evaluated {} valid variants, rejected {} invalid points (tileI_2 > tileI)\n",
        result.outcome.evaluations, result.outcome.invalid
    );
}

/// 3. Search quality at equal budget on the DGEMM space.
fn ablation_search_modules() {
    let source = dgemm_program(48);
    let locus = locus_bench::fig6::fig7_locus_program(64);
    let budget = 25;
    let system = LocusSystem::new(bench_machine(4));
    let mut rows = Vec::new();
    let mut run = |name: &str, search: &mut dyn SearchModule| {
        let result = system
            .tune(&source, &locus, search, budget)
            .expect("tuning runs");
        rows.push(vec![
            name.to_string(),
            format!("{:.2}x", result.speedup()),
            result.outcome.evaluations.to_string(),
            result.outcome.duplicates.to_string(),
        ]);
    };
    run("bandit (OpenTuner-like)", &mut BanditTuner::new(5));
    run("annealing (Hyperopt-like)", &mut AnnealTuner::new(5));
    run("random", &mut RandomSearch::new(5));
    run("stratified exhaustive", &mut ExhaustiveSearch::default());
    println!(
        "{}",
        render_table(
            &format!("Ablation 3: search modules, DGEMM 48x48, budget {budget}"),
            &["module", "speedup", "evals", "dups skipped"],
            &rows
        )
    );
}

/// 4. The tile-size cost surface on the simulated machine: non-monotone,
///    with an interior optimum — the property that makes search pay off.
fn ablation_cost_surface() {
    let machine = bench_machine(1);
    let mut rows = Vec::new();
    for tile in [2i64, 4, 8, 16, 32, 48] {
        let source = dgemm_program(48);
        let mut stmt = {
            let regions = locus_srcir::region::find_regions(&source);
            locus_srcir::region::extract_region(&source, &regions[0])
                .expect("region exists")
                .stmt
        };
        locus_transform::interchange::interchange(&mut stmt, &[0, 2, 1], true)
            .expect("legal interchange");
        locus_transform::tiling::tile(&mut stmt, &HierIndex::root(), &[tile, tile, tile], true)
            .expect("legal tiling");
        let mut program = source.clone();
        let regions = locus_srcir::region::find_regions(&program);
        locus_srcir::region::replace_region(&mut program, &regions[0], stmt);
        let m = machine.run(&program, "kernel").expect("variant runs");
        rows.push(vec![
            tile.to_string(),
            format!("{:.0}", m.cycles),
            format!("{:.1}%", 100.0 * m.cache.l1_miss_ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation 4: DGEMM 48x48 tile-size cost surface (i,k,j + square tiles)",
            &["tile", "cycles", "L1 miss"],
            &rows
        )
    );
}
