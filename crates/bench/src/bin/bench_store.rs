//! Benchmarks the persistent tuning store: the Fig. 6 DGEMM tuning
//! session run cold (empty store) and warm (rehydrated from the cold
//! session's records) and writes the cold-vs-warm wall-clock ratio to
//! `BENCH_store.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_store
//! [output.json]` (threads via `LOCUS_THREADS`, default 8).

use locus_bench::store::{run_store, to_json};

fn main() {
    let threads = std::env::var("LOCUS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_store.json".to_string());

    eprintln!("cold vs warm store-backed tuning, {threads} worker threads");
    let rows = run_store(threads);
    for r in &rows {
        println!(
            "{:<26} {:<18} budget {:>5}  cold {:>8.3}s ({} evals)  warm {:>8.3}s \
             ({} evals, {} store hits)  cold/warm {:>6.2}x  store {:>7} B  identical_best {}",
            r.label,
            r.search,
            r.budget,
            r.cold_s,
            r.cold.evaluations(),
            r.warm_s,
            r.warm.evaluations(),
            r.warm.store_hits(),
            r.ratio,
            r.store_bytes,
            r.identical_best,
        );
    }

    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");
}
