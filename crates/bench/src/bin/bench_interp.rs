//! Benchmarks the bytecode VM against the tree interpreter on the
//! corpus kernels and writes the per-kernel speedups to
//! `BENCH_interp.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_interp
//! [output.json] [--check]` (repeats via `LOCUS_REPEATS`, default 10).
//!
//! With `--check` the harness additionally fails (exit 1) unless every
//! kernel is bit-identical across engines, the geometric-mean speedup is
//! at least 5x, and the disabled-tracer `run_traced` path costs less
//! than 1% over plain `run` — the CI smoke gate for the compiled engine
//! and for the tracing hooks staying free when tracing is off.

use locus_bench::interp::{geomean_speedup, run_interp, to_json, trace_overhead};

fn main() {
    let repeats = std::env::var("LOCUS_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let mut out = "BENCH_interp.json".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out = arg;
        }
    }

    eprintln!("bytecode VM vs tree interpreter, {repeats} repeats per engine");
    let rows = run_interp(repeats);
    for r in &rows {
        println!(
            "{:<24} {:>10} ops  tree {:>8.3}s  vm {:>8.3}s  speedup {:>6.2}x  identical {}",
            r.label, r.ops, r.tree_s, r.vm_s, r.speedup, r.identical,
        );
    }
    let geomean = geomean_speedup(&rows);
    println!("geomean speedup {geomean:.2}x");

    let overhead = trace_overhead(repeats);
    println!(
        "trace overhead (disabled tracer) on {}: plain {:.3}s, traced {:.3}s, {:+.2}%",
        overhead.label,
        overhead.plain_s,
        overhead.traced_s,
        overhead.overhead() * 100.0,
    );

    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");

    if check {
        let all_identical = rows.iter().all(|r| r.identical);
        if !all_identical {
            eprintln!("FAIL: engines disagree on at least one kernel");
            std::process::exit(1);
        }
        if geomean < 5.0 {
            eprintln!("FAIL: geomean speedup {geomean:.2}x is below the 5x floor");
            std::process::exit(1);
        }
        // The ceiling is a claim about the code, measured on a shared,
        // noisy machine: one sub-1% observation proves the hooks are
        // free, so remeasure a few times and fail only if *every*
        // attempt lands at or above the ceiling — genuine overhead
        // fails all of them.
        let mut best = overhead.overhead();
        for _ in 0..4 {
            if best < 0.01 {
                break;
            }
            let retry = trace_overhead(repeats);
            eprintln!(
                "retrying noisy overhead measurement: {:+.2}%",
                retry.overhead() * 100.0
            );
            best = best.min(retry.overhead());
        }
        if best >= 0.01 {
            eprintln!(
                "FAIL: disabled-tracer overhead {:+.2}% is at or above the 1% ceiling",
                best * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "check passed: bit-identical, {geomean:.2}x >= 5x, trace overhead {:+.2}% < 1%",
            overhead.overhead() * 100.0
        );
    }
}
