//! Benchmarks the compiled execution engines against the tree
//! interpreter on the corpus kernels and writes the per-kernel
//! speedups to `BENCH_interp.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_interp
//! [output.json] [--check]` (repeats via `LOCUS_REPEATS`, default 10).
//!
//! With `--check` the harness additionally fails (exit 1) unless every
//! kernel is bit-identical across all engines *and* the batched path,
//! the register VM clears its speedup floors — 7x geomean batched
//! (the headline path: compile once, measure many configurations) and
//! 6x sequential — the stack VM holds its historical 5x floor
//! (regression guard), and the disabled-tracer `run_traced` path costs
//! less than 1% over plain `run` — the CI smoke gate for the compiled
//! engines and for the tracing hooks staying free when tracing is off.
//!
//! The floors are set from measured geomeans (~8x batched, ~7.5x
//! sequential register, ~5.5x stack on the reference machine) with
//! noise headroom; past the loop/subscript-chain fusion the remaining
//! per-iteration time is contract work the engines must reproduce
//! bit-identically (the tree's per-charge f64 additions, per-access
//! cache simulation, flop counting), which bounds how far dispatch
//! elimination alone can push the ratio.

use locus_bench::interp::{
    geomean_batched, geomean_reg, geomean_stack, run_interp, to_json, trace_overhead,
};

fn main() {
    let repeats = std::env::var("LOCUS_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    let mut out = "BENCH_interp.json".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out = arg;
        }
    }

    eprintln!("execution engines vs tree interpreter, {repeats} repeats per engine");
    let rows = run_interp(repeats);
    for r in &rows {
        println!(
            "{:<24} {:>10} ops  tree {:>7.3}s  stack {:>6.2}x  reg {:>6.2}x  batched {:>6.2}x  identical {}",
            r.label, r.ops, r.tree_s, r.stack_speedup, r.reg_speedup, r.batched_speedup, r.identical,
        );
    }
    let stack = geomean_stack(&rows);
    let reg = geomean_reg(&rows);
    let batched = geomean_batched(&rows);
    println!(
        "geomean speedups: stack {stack:.2}x, register {reg:.2}x, batched register {batched:.2}x"
    );

    let overhead = trace_overhead(repeats);
    println!(
        "trace overhead (disabled tracer) on {}: plain {:.3}s, traced {:.3}s, {:+.2}%",
        overhead.label,
        overhead.plain_s,
        overhead.traced_s,
        overhead.overhead() * 100.0,
    );

    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");

    if check {
        // Bit-identity covers tree vs stack vs register vs batched
        // register: the batched path must be indistinguishable from
        // per-variant evaluation.
        let all_identical = rows.iter().all(|r| r.identical);
        if !all_identical {
            eprintln!("FAIL: engines (or batched evaluation) disagree on at least one kernel");
            std::process::exit(1);
        }
        if batched < 7.0 {
            eprintln!("FAIL: batched register-VM geomean {batched:.2}x is below the 7x floor");
            std::process::exit(1);
        }
        if reg < 6.0 {
            eprintln!("FAIL: register-VM geomean {reg:.2}x is below the 6x floor");
            std::process::exit(1);
        }
        if stack < 5.0 {
            eprintln!("FAIL: stack-VM geomean {stack:.2}x regressed below its historical 5x floor");
            std::process::exit(1);
        }
        // The ceiling is a claim about the code, measured on a shared,
        // noisy machine: one sub-1% observation proves the hooks are
        // free, so remeasure a few times and fail only if *every*
        // attempt lands at or above the ceiling — genuine overhead
        // fails all of them.
        let mut best = overhead.overhead();
        for _ in 0..4 {
            if best < 0.01 {
                break;
            }
            let retry = trace_overhead(repeats);
            eprintln!(
                "retrying noisy overhead measurement: {:+.2}%",
                retry.overhead() * 100.0
            );
            best = best.min(retry.overhead());
        }
        if best >= 0.01 {
            eprintln!(
                "FAIL: disabled-tracer overhead {:+.2}% is at or above the 1% ceiling",
                best * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "check passed: bit-identical (incl. batched), batched register {batched:.2}x >= 7x, \
             register {reg:.2}x >= 6x, stack {stack:.2}x >= 5x, trace overhead {:+.2}% < 1%",
            overhead.overhead() * 100.0
        );
    }
}
