//! Benchmarks verifier-pruned search: the Fig. 6 DGEMM tuning session
//! run with the static safety verifier active and with legality checks
//! disabled, plus the exact-vs-conservative verdict-precision sweep over
//! the corpus registry. Writes the evaluations avoided, the wall-clock
//! ratio, and the precision counters to `BENCH_verify.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_verify
//! [--check] [output.json]` (threads via `LOCUS_THREADS`, default 8).
//! `--check` runs only the precision sweep and fails (exit 1) unless at
//! least one triangular registry entry admits a restructuring the
//! conservative engine refused; it writes nothing.

use locus_bench::verify::{run_precision, run_verify, to_json_with_precision, PrecisionRow};

fn print_precision(rows: &[PrecisionRow]) {
    for r in rows {
        println!(
            "{:<18} {:<12} steps {:>3}  exact {:>3}  conservative {:>3}  legal {:>3}  \
             newly-legal {:>2}",
            r.entry,
            if r.rectangular {
                "rectangular"
            } else {
                "triangular"
            },
            r.steps,
            r.exact_verdicts,
            r.conservative_verdicts,
            r.legal_steps,
            r.newly_legal,
        );
    }
}

fn main() {
    let threads = std::env::var("LOCUS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--check") {
        eprintln!("verdict-precision smoke: registry sweep, exact vs conservative");
        let precision = run_precision();
        print_precision(&precision);
        let triangular_newly_legal: usize = precision
            .iter()
            .filter(|r| !r.rectangular)
            .map(|r| r.newly_legal)
            .sum();
        assert!(
            triangular_newly_legal >= 1,
            "smoke: no triangular registry entry admits a restructuring the \
             conservative engine refused"
        );
        eprintln!("ok ({triangular_newly_legal} newly-legal triangular restructurings)");
        return;
    }

    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_verify.json".to_string());

    eprintln!("verifier-pruned vs unchecked tuning, {threads} worker threads");
    let rows = run_verify(threads);
    for r in &rows {
        println!(
            "{:<30} space {:>3}  checked {:>8.3}s ({} evals, {} pruned)  unchecked \
             {:>8.3}s ({} evals)  unchecked/checked {:>5.2}x  ships_racy {}",
            r.label,
            r.space,
            r.checked_s,
            r.checked.evaluations(),
            r.checked.pruned_illegal,
            r.unchecked_s,
            r.unchecked.evaluations(),
            r.ratio,
            r.unchecked_ships_racy(),
        );
    }
    let precision = run_precision();
    print_precision(&precision);

    std::fs::write(&out, to_json_with_precision(&rows, &precision))
        .expect("write benchmark report");
    eprintln!("wrote {out}");
}
