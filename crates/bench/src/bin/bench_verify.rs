//! Benchmarks verifier-pruned search: the Fig. 6 DGEMM tuning session
//! run with the static safety verifier active and with legality checks
//! disabled, and writes the evaluations avoided and the wall-clock
//! ratio to `BENCH_verify.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_verify
//! [output.json]` (threads via `LOCUS_THREADS`, default 8).

use locus_bench::verify::{run_verify, to_json};

fn main() {
    let threads = std::env::var("LOCUS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_verify.json".to_string());

    eprintln!("verifier-pruned vs unchecked tuning, {threads} worker threads");
    let rows = run_verify(threads);
    for r in &rows {
        println!(
            "{:<30} space {:>3}  checked {:>8.3}s ({} evals, {} pruned)  unchecked \
             {:>8.3}s ({} evals)  unchecked/checked {:>5.2}x  ships_racy {}",
            r.label,
            r.space,
            r.checked_s,
            r.checked.evaluations(),
            r.checked.pruned_illegal,
            r.unchecked_s,
            r.unchecked.evaluations(),
            r.ratio,
            r.unchecked_ships_racy(),
        );
    }

    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");
}
