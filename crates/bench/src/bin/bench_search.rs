//! The search-module shoot-out: every module of `locus-search` tunes
//! every corpus-registry entry under one shared memo cache, scored by
//! evaluations-to-best-known. Writes `BENCH_search.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_search
//! [--check] [output.json]` (threads via `LOCUS_THREADS`, default 8;
//! budget via `LOCUS_BUDGET`, default 48). `--check` runs the full
//! sweep, asserts the acceptance bar (a new module beats bandit and
//! anneal on at least one family; the extended portfolio regresses
//! nowhere), and writes nothing.

use locus_bench::search::{aggregate, check, run_search, to_json, SearchRow};

fn print_rows(rows: &[SearchRow]) {
    for r in rows {
        println!(
            "{:<18} {:<10} {:<14} space {:>8}  {:>3} evals  best {:>9.3} ms  \
             to-best {:>3}{}",
            r.entry,
            r.family,
            r.module,
            r.space_size,
            r.evaluations,
            r.best_value,
            r.evals_to_best_known,
            if r.reached_best { "" } else { "  (never)" },
        );
    }
    println!();
    for a in aggregate(rows) {
        println!(
            "{:<10} {:<14} mean evals-to-best {:>7.2}  reached {}/{}",
            a.family, a.module, a.mean_evals_to_best, a.reached, a.entries,
        );
    }
}

fn main() {
    let threads = std::env::var("LOCUS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let budget = std::env::var("LOCUS_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48);
    let args: Vec<String> = std::env::args().skip(1).collect();

    eprintln!("search shoot-out: full registry, budget {budget}, {threads} worker threads");
    let rows = run_search(budget, threads);
    print_rows(&rows);

    if args.iter().any(|a| a == "--check") {
        let violations = check(&rows);
        assert!(
            violations.is_empty(),
            "search shoot-out acceptance bar failed:\n  {}",
            violations.join("\n  ")
        );
        eprintln!("ok");
        return;
    }

    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_search.json".to_string());
    for v in check(&rows) {
        eprintln!("warning: {v}");
    }
    std::fs::write(&out, to_json(&rows)).expect("write benchmark report");
    eprintln!("wrote {out}");
}
