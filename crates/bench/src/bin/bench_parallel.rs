//! Benchmarks `tune_parallel` (batched evaluation + shared memo cache)
//! against the sequential `tune` on the Fig. 7 DGEMM problem and writes
//! the result to `BENCH_parallel.json`.
//!
//! Usage: `cargo run --release -p locus-bench --bin bench_parallel
//! [output.json]` (threads via `LOCUS_THREADS`, default 8).

use locus_bench::parallel::{run_parallel, to_json};

fn main() {
    let threads = std::env::var("LOCUS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());

    eprintln!("tune_parallel vs tune, {threads} worker threads");
    let rows = run_parallel(threads);
    for r in &rows {
        println!(
            "{:<28} {:<20} budget {:>4}  seq {:>8.3}s  par {:>8.3}s  speedup {:>5.2}x  \
             variants {}/{} points  hits {}+{}  identical_best {}",
            r.label,
            r.search,
            r.budget,
            r.sequential_s,
            r.parallel_s,
            r.speedup,
            r.stats.unique_variants,
            r.stats.unique_points,
            r.stats.point_hits,
            r.stats.variant_hits,
            r.identical_best,
        );
    }
    std::fs::write(&out, to_json(&rows)).expect("write benchmark JSON");
    eprintln!("wrote {out}");
}
