//! Regenerates Fig. 12: Kripke execution time, hand-optimized versus
//! Locus-generated, for 6 data layouts x 5 kernels.
//!
//! Usage: `cargo run --release -p locus-bench --bin fig12_kripke`

use locus_bench::fig12::run_kripke;
use locus_bench::report::render_table;

fn main() {
    let cores = 4;
    eprintln!("Fig. 12: Kripke, {cores} cores, 5 kernels x 6 layouts");
    let rows = run_kripke(cores);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.kernel.to_string(),
                r.layout.to_string(),
                format!("{:.4}", r.hand_ms),
                format!("{:.4}", r.locus_ms),
                format!("{:.2}", r.ratio()),
                if r.results_match { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Kripke: hand-optimized vs Locus-generated (simulated ms)",
            &[
                "kernel",
                "layout",
                "hand",
                "Locus",
                "ratio",
                "results match"
            ],
            &table
        )
    );

    let worst = rows.iter().map(|r| r.ratio()).fold(0.0f64, f64::max);
    let mismatches = rows.iter().filter(|r| !r.results_match).count();
    println!(
        "Worst Locus/hand ratio: {worst:.2} (paper: \"very close\"); result mismatches: {mismatches}"
    );
    println!(
        "Locus replaces 30 hand-written kernel versions with 5 skeletons + 6 address \
         snippets each (paper Sec. V-C)."
    );
}
