//! Regenerates Fig. 6 (right): DGEMM speedup for 1..10 cores — Locus
//! (Fig. 7 program + empirical search) vs the Pluto-like baseline vs the
//! MKL-like oracle.
//!
//! Usage: `cargo run --release -p locus-bench --bin fig6_dgemm`
//! (set `LOCUS_FULL=1` for the larger problem / budget).

use locus_bench::fig6::run_dgemm;
use locus_bench::report::render_table;

fn main() {
    let full = std::env::var("LOCUS_FULL").is_ok();
    // The paper searches tiles up to 512 on 2048-point loops (a quarter
    // of the extent); the scaled default keeps that ratio. LOCUS_FULL
    // uses the paper's literal 2..512 range with a bigger budget.
    let (n, budget, max_tile) = if full { (64, 200, 512) } else { (48, 40, 32) };
    let cores = [1usize, 2, 4, 6, 8, 10];

    eprintln!("Fig. 6 (right): DGEMM {n}x{n}, search budget {budget} variants per core count");
    let result = run_dgemm(n, budget, &cores, 0xD6E, max_tile);

    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                format!("{:.2}x", r.locus),
                format!("{:.2}x", r.pluto),
                format!("{:.2}x", r.mkl),
                r.evaluations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &format!(
                "DGEMM {n}x{n} speedup over 1-core naive baseline (space: {} variants)",
                result.space_size
            ),
            &["cores", "Locus", "Pluto-like", "MKL-like", "evals"],
            &rows
        )
    );

    let best = result.rows.last().expect("rows");
    let avg_ratio: f64 =
        result.rows.iter().map(|r| r.locus / r.pluto).sum::<f64>() / result.rows.len() as f64;
    println!("Locus/Pluto mean ratio: {avg_ratio:.2}x  (paper: 3.45x on the Xeon)");
    println!(
        "Locus at {} cores: {:.1}x  (paper: 553x over its 1-core baseline at 2048^3)",
        best.cores, best.locus
    );
    println!(
        "Space size (flattened): {}  (paper quotes 34,012,224 under OpenTuner's encoding)",
        result.space_size
    );
}
