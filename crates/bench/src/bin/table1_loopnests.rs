//! Regenerates Table I and the Sec. V-D summary: the generic Fig. 13
//! Locus program over the synthetic extraction corpus vs the Pluto-like
//! baseline.
//!
//! Usage: `cargo run --release -p locus-bench --bin table1_loopnests`
//! (set `LOCUS_FULL=1` for more nests per suite and a larger budget).

use locus_bench::report::render_table;
use locus_bench::table1::run_table1;
use locus_corpus::TABLE1_SUITES;

fn main() {
    let full = std::env::var("LOCUS_FULL").is_ok();
    let (cap, budget) = if full { (8, 80) } else { (2, 40) };

    eprintln!(
        "Table I / Sec. V-D: up to {cap} nests per suite, {budget} variants per nest \
         (paper: 856 nests, 500 variants)"
    );
    let result = run_table1(0x10c5, cap, budget);

    let mut rows = Vec::new();
    for suite in TABLE1_SUITES {
        let mine = result
            .per_suite
            .iter()
            .find(|(name, _, _)| name == suite.name);
        let (ran, variants) = mine.map_or((0, 0), |(_, n, v)| (*n, *v));
        rows.push(vec![
            suite.name.to_string(),
            suite.selected.to_string(),
            suite.variants_assessed.to_string(),
            ran.to_string(),
            variants.to_string(),
        ]);
    }
    rows.push(vec![
        "Total".to_string(),
        "856".to_string(),
        "45899".to_string(),
        result.summary.nests.to_string(),
        result.summary.variants_assessed.to_string(),
    ]);
    println!(
        "{}",
        render_table(
            "Table I: loop nests and variants assessed (paper columns vs this run)",
            &[
                "benchmark",
                "paper nests",
                "paper variants",
                "our nests",
                "our variants"
            ],
            &rows
        )
    );

    let s = &result.summary;
    println!("Sec. V-D summary (paper value in parentheses):");
    println!(
        "  mean speedup:        Locus {:.3} (1.15)   Pluto {:.3} (1.05)",
        s.locus_mean_speedup, s.pluto_mean_speedup
    );
    println!(
        "  nests transformed:   Locus {}/{} (822/856)   Pluto {}/{} (397/856)",
        s.locus_transformed, s.nests, s.pluto_transformed, s.nests
    );
    println!(
        "  speedup > 1.05:      Locus {} (360)   Pluto {} (170)",
        s.locus_gt_105, s.pluto_gt_105
    );
    println!(
        "  head-to-head (both > 1.05): Locus faster on {}/{} (129/170)",
        s.locus_wins_head_to_head, s.both_gt_105
    );
}
