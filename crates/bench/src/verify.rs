//! Benchmarks verifier-pruned search: the same DGEMM tuning session run
//! twice — once with the static safety verifier active (racy
//! parallelization choices are refused before the simulator ever runs
//! them) and once with legality checking disabled (every point is built
//! and measured). The difference in evaluation counts is the number of
//! simulations the verifier saved; the wall-clock ratio is the headline
//! number of `BENCH_verify.json`.
//!
//! The unchecked session also shows *why* the verifier exists: the
//! simulated machine executes racy variants deterministically, so a
//! data race on the reduction loop is invisible to measurement — only
//! static analysis can refuse it.

use std::time::Instant;

use locus_core::{LocusSystem, TuneReport, TuneResult};
use locus_corpus::dgemm_program;
use locus_search::ExhaustiveSearch;

use crate::bench_machine_tiny;

/// One checked-vs-unchecked comparison of a tuning session over a space
/// that contains statically racy parallelization choices.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Row label.
    pub label: String,
    /// Evaluation budget per session.
    pub budget: usize,
    /// Worker threads.
    pub threads: usize,
    /// Points in the search space.
    pub space: u128,
    /// Wall-clock of the checked (verifier active) session.
    pub checked_s: f64,
    /// Wall-clock of the unchecked (legality checks off) session.
    pub unchecked_s: f64,
    /// `unchecked_s / checked_s`.
    pub ratio: f64,
    /// Session accounting of the checked run.
    pub checked: TuneReport,
    /// Session accounting of the unchecked run.
    pub unchecked: TuneReport,
    /// Canonical key of the checked session's best point.
    pub checked_best: Option<String>,
    /// Canonical key of the unchecked session's best point.
    pub unchecked_best: Option<String>,
}

impl VerifyRow {
    /// Simulations the verifier saved: every point the unchecked session
    /// measured that the checked session statically refused.
    pub fn evaluations_avoided(&self) -> usize {
        self.unchecked
            .evaluations()
            .saturating_sub(self.checked.evaluations())
    }

    /// Whether the unchecked session converged on a point the verifier
    /// would have refused — i.e. it shipped a racy variant.
    pub fn unchecked_ships_racy(&self) -> bool {
        self.unchecked_best != self.checked_best
    }
}

/// Parallelize the `i` loop ("0", legal), the `j` loop ("0.0", legal:
/// distinct `C[i][j]` per iteration) or the `k` loop ("0.0.0", a data
/// race: every `k` iteration accumulates into the same `C[i][j]`),
/// crossed with a chunk-size knob so each choice repeats across several
/// otherwise-distinct points.
fn parallel_loop_choice_program() -> locus_lang::LocusProgram {
    locus_lang::parse(
        r#"CodeReg matmul {
            target = enum("0", "0.0", "0.0.0");
            Pragma.OMPFor(loop=target, schedule="static", chunk=integer(1..8));
        }"#,
    )
    .expect("locus program parses")
}

/// The tiled variant: interchange to `i, k, j`, strip-mine all three
/// levels, then parallelize either the outer tile loop ("0", legal via
/// strip-mine coalescing) or the `k` tile loop ("0.0", refused — the
/// tile of the reduction dimension still races on `C`).
fn tiled_loop_choice_program() -> locus_lang::LocusProgram {
    locus_lang::parse(
        r#"CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tile = poweroftwo(2..4);
            Pips.Tiling(loop="0", factor=[tile, tile, tile]);
            target = enum("0", "0.0");
            Pragma.OMPFor(loop=target);
        }"#,
    )
    .expect("locus program parses")
}

fn best_key(result: &TuneResult) -> Option<String> {
    result.best.as_ref().map(|(p, _, _)| p.canonical_key())
}

fn session(
    check_legality: bool,
    source: &locus_srcir::ast::Program,
    locus: &locus_lang::LocusProgram,
    budget: usize,
    threads: usize,
) -> (TuneResult, TuneReport, f64) {
    let mut system = LocusSystem::new(bench_machine_tiny(1));
    system.check_legality = check_legality;
    let mut search = ExhaustiveSearch::default();
    let start = Instant::now();
    let (result, report) = system
        .tune_parallel_with_report(source, locus, &mut search, budget, threads)
        .expect("tuning runs");
    (result, report, start.elapsed().as_secs_f64())
}

/// Runs one checked-vs-unchecked pair over the given space.
pub fn run_pair(
    label: &str,
    locus: &locus_lang::LocusProgram,
    n: usize,
    budget: usize,
    threads: usize,
) -> VerifyRow {
    let source = dgemm_program(n);
    let (checked_result, checked, checked_s) = session(true, &source, locus, budget, threads);
    let (unchecked_result, unchecked, unchecked_s) =
        session(false, &source, locus, budget, threads);

    VerifyRow {
        label: label.to_string(),
        budget,
        threads,
        space: checked_result.space_size,
        checked_s,
        unchecked_s,
        ratio: unchecked_s / checked_s.max(1e-12),
        checked,
        unchecked,
        checked_best: best_key(&checked_result),
        unchecked_best: best_key(&unchecked_result),
    }
}

/// Runs the benchmark: the flat parallel-loop choice space and the tiled
/// tile-loop choice space, both over the Fig. 6 DGEMM kernel.
pub fn run_verify(threads: usize) -> Vec<VerifyRow> {
    vec![
        run_pair(
            "dgemm parallel-loop choice",
            &parallel_loop_choice_program(),
            16,
            64,
            threads,
        ),
        run_pair(
            "dgemm tiled tile-loop choice",
            &tiled_loop_choice_program(),
            16,
            16,
            threads,
        ),
    ]
}

fn json_opt(key: &Option<String>) -> String {
    match key {
        Some(k) => format!("\"{k}\""),
        None => "null".to_string(),
    }
}

/// Renders the rows as a JSON document (hand-rolled; the workspace has
/// no serde).
pub fn to_json(rows: &[VerifyRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"verifier-pruned vs unchecked tuning session (fig6 dgemm)\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"label\": \"{}\",\n",
                "      \"budget\": {},\n",
                "      \"threads\": {},\n",
                "      \"space\": {},\n",
                "      \"checked_s\": {:.6},\n",
                "      \"unchecked_s\": {:.6},\n",
                "      \"unchecked_over_checked\": {:.3},\n",
                "      \"pruned_illegal\": {},\n",
                "      \"checked_evaluations\": {},\n",
                "      \"unchecked_evaluations\": {},\n",
                "      \"evaluations_avoided\": {},\n",
                "      \"checked_best\": {},\n",
                "      \"unchecked_best\": {},\n",
                "      \"unchecked_ships_racy\": {}\n",
                "    }}{}\n",
            ),
            r.label,
            r.budget,
            r.threads,
            r.space,
            r.checked_s,
            r.unchecked_s,
            r.ratio,
            r.checked.pruned_illegal,
            r.checked.evaluations(),
            r.unchecked.evaluations(),
            r.evaluations_avoided(),
            json_opt(&r.checked_best),
            json_opt(&r.unchecked_best),
            r.unchecked_ships_racy(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifier_saves_exactly_the_racy_points() {
        // Scaled-down kernel; the bench_verify binary runs the same
        // harness at the full size.
        let row = run_pair("test", &parallel_loop_choice_program(), 8, 64, 2);
        assert_eq!(row.space, 24, "3 targets x 8 chunk sizes");
        assert!(row.checked.pruned_illegal > 0, "{:?}", row.checked);
        assert_eq!(row.unchecked.pruned_illegal, 0, "{:?}", row.unchecked);
        // Every point the unchecked session measured but the checked one
        // did not is exactly a statically-refused point.
        assert_eq!(
            row.checked.evaluations() + row.checked.pruned_illegal,
            row.unchecked.evaluations(),
        );
        assert_eq!(row.evaluations_avoided(), row.checked.pruned_illegal);
        // The verifier never refuses the winner: the checked best is one
        // of the legal parallelizations.
        let best = row.checked_best.as_deref().expect("a legal point wins");
        assert!(!best.contains("c2"), "k-loop must not win: {best}");
        let json = to_json(&[row]);
        assert!(json.contains("\"evaluations_avoided\": 8"), "{json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn tiled_space_prunes_the_reduction_tile_loop() {
        let row = run_pair("test", &tiled_loop_choice_program(), 8, 16, 2);
        assert_eq!(row.space, 4, "2 tiles x 2 targets");
        assert_eq!(row.checked.pruned_illegal, 2, "{:?}", row.checked);
        assert_eq!(row.checked.evaluations(), 2);
        assert_eq!(row.unchecked.evaluations(), 4);
    }
}
