//! Benchmarks verifier-pruned search: the same DGEMM tuning session run
//! twice — once with the static safety verifier active (racy
//! parallelization choices are refused before the simulator ever runs
//! them) and once with legality checking disabled (every point is built
//! and measured). The difference in evaluation counts is the number of
//! simulations the verifier saved; the wall-clock ratio is the headline
//! number of `BENCH_verify.json`.
//!
//! The unchecked session also shows *why* the verifier exists: the
//! simulated machine executes racy variants deterministically, so a
//! data race on the reduction loop is invisible to measurement — only
//! static analysis can refuse it.

use std::time::Instant;

use locus_analysis::deps::{analyze_region_conservative, DependenceInfo};
use locus_analysis::loops::perfect_nest_loops;
use locus_core::{LocusSystem, TuneReport, TuneResult};
use locus_corpus::dgemm_program;
use locus_search::ExhaustiveSearch;
use locus_srcir::ast::Stmt;
use locus_srcir::region::{extract_region, find_regions};
use locus_srcir::visit::{child, child_count, walk_exprs};
use locus_srcir::HierIndex;
use locus_verify::{explain, legal, TransformStep};

use crate::bench_machine_tiny;

/// One checked-vs-unchecked comparison of a tuning session over a space
/// that contains statically racy parallelization choices.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Row label.
    pub label: String,
    /// Evaluation budget per session.
    pub budget: usize,
    /// Worker threads.
    pub threads: usize,
    /// Points in the search space.
    pub space: u128,
    /// Wall-clock of the checked (verifier active) session.
    pub checked_s: f64,
    /// Wall-clock of the unchecked (legality checks off) session.
    pub unchecked_s: f64,
    /// `unchecked_s / checked_s`.
    pub ratio: f64,
    /// Session accounting of the checked run.
    pub checked: TuneReport,
    /// Session accounting of the unchecked run.
    pub unchecked: TuneReport,
    /// Canonical key of the checked session's best point.
    pub checked_best: Option<String>,
    /// Canonical key of the unchecked session's best point.
    pub unchecked_best: Option<String>,
}

impl VerifyRow {
    /// Simulations the verifier saved: every point the unchecked session
    /// measured that the checked session statically refused.
    pub fn evaluations_avoided(&self) -> usize {
        self.unchecked
            .evaluations()
            .saturating_sub(self.checked.evaluations())
    }

    /// Whether the unchecked session converged on a point the verifier
    /// would have refused — i.e. it shipped a racy variant.
    pub fn unchecked_ships_racy(&self) -> bool {
        self.unchecked_best != self.checked_best
    }
}

/// Parallelize the `i` loop ("0", legal), the `j` loop ("0.0", legal:
/// distinct `C[i][j]` per iteration) or the `k` loop ("0.0.0", a data
/// race: every `k` iteration accumulates into the same `C[i][j]`),
/// crossed with a chunk-size knob so each choice repeats across several
/// otherwise-distinct points.
fn parallel_loop_choice_program() -> locus_lang::LocusProgram {
    locus_lang::parse(
        r#"CodeReg matmul {
            target = enum("0", "0.0", "0.0.0");
            Pragma.OMPFor(loop=target, schedule="static", chunk=integer(1..8));
        }"#,
    )
    .expect("locus program parses")
}

/// The tiled variant: interchange to `i, k, j`, strip-mine all three
/// levels, then parallelize either the outer tile loop ("0", legal via
/// strip-mine coalescing) or the `k` tile loop ("0.0", refused — the
/// tile of the reduction dimension still races on `C`).
fn tiled_loop_choice_program() -> locus_lang::LocusProgram {
    locus_lang::parse(
        r#"CodeReg matmul {
            RoseLocus.Interchange(order=[0, 2, 1]);
            tile = poweroftwo(2..4);
            Pips.Tiling(loop="0", factor=[tile, tile, tile]);
            target = enum("0", "0.0");
            Pragma.OMPFor(loop=target);
        }"#,
    )
    .expect("locus program parses")
}

fn best_key(result: &TuneResult) -> Option<String> {
    result.best.as_ref().map(|(p, _, _)| p.canonical_key())
}

fn session(
    check_legality: bool,
    source: &locus_srcir::ast::Program,
    locus: &locus_lang::LocusProgram,
    budget: usize,
    threads: usize,
) -> (TuneResult, TuneReport, f64) {
    let mut system = LocusSystem::new(bench_machine_tiny(1));
    system.check_legality = check_legality;
    let mut search = ExhaustiveSearch::default();
    let start = Instant::now();
    let (result, report) = system
        .tune_parallel_with_report(source, locus, &mut search, budget, threads)
        .expect("tuning runs");
    (result, report, start.elapsed().as_secs_f64())
}

/// Runs one checked-vs-unchecked pair over the given space.
pub fn run_pair(
    label: &str,
    locus: &locus_lang::LocusProgram,
    n: usize,
    budget: usize,
    threads: usize,
) -> VerifyRow {
    let source = dgemm_program(n);
    let (checked_result, checked, checked_s) = session(true, &source, locus, budget, threads);
    let (unchecked_result, unchecked, unchecked_s) =
        session(false, &source, locus, budget, threads);

    VerifyRow {
        label: label.to_string(),
        budget,
        threads,
        space: checked_result.space_size,
        checked_s,
        unchecked_s,
        ratio: unchecked_s / checked_s.max(1e-12),
        checked,
        unchecked,
        checked_best: best_key(&checked_result),
        unchecked_best: best_key(&unchecked_result),
    }
}

/// Runs the benchmark: the flat parallel-loop choice space and the tiled
/// tile-loop choice space, both over the Fig. 6 DGEMM kernel.
pub fn run_verify(threads: usize) -> Vec<VerifyRow> {
    vec![
        run_pair(
            "dgemm parallel-loop choice",
            &parallel_loop_choice_program(),
            16,
            64,
            threads,
        ),
        run_pair(
            "dgemm tiled tile-loop choice",
            &tiled_loop_choice_program(),
            16,
            16,
            threads,
        ),
    ]
}

// ---- verdict-precision sweep -------------------------------------------

/// Exact-vs-conservative verdict accounting for one registry entry: how
/// many candidate transformation steps the legality engine judged on
/// exact polyhedral evidence, and how many of its legal verdicts the
/// pre-polyhedral engine (conservative direction enumeration plus the
/// rectangular-bands-only structural gate) would have refused.
#[derive(Debug, Clone)]
pub struct PrecisionRow {
    /// Registry entry name.
    pub entry: String,
    /// Whether the entry's tagged region is rectangular.
    pub rectangular: bool,
    /// Candidate steps judged in the sweep.
    pub steps: usize,
    /// Steps whose verdict rests on exact polyhedral dependence info.
    pub exact_verdicts: usize,
    /// Steps judged on conservative (fallback) dependence info.
    pub conservative_verdicts: usize,
    /// Steps the engine declares legal.
    pub legal_steps: usize,
    /// Legal steps the conservative engine would have refused — the
    /// restructurings the polyhedral engine newly admits.
    pub newly_legal: usize,
}

/// Permutations swept at each region root, as `order[new] = old`.
const PERMS: &[&[usize]] = &[
    &[1, 0],
    &[0, 2, 1],
    &[1, 0, 2],
    &[1, 2, 0],
    &[2, 0, 1],
    &[2, 1, 0],
];

/// All hierarchical indices of `for` loops in the region, root first.
fn loop_targets(root: &Stmt) -> Vec<HierIndex> {
    fn rec(stmt: &Stmt, index: HierIndex, out: &mut Vec<HierIndex>) {
        if stmt.is_for() {
            out.push(index.clone());
        }
        for i in 0..child_count(stmt) {
            if let Some(c) = child(stmt, i) {
                rec(c, index.push(i), out);
            }
        }
    }
    let mut out = Vec::new();
    rec(root, HierIndex::root(), &mut out);
    out
}

/// Whether the leading `width` loops of the perfect nest at `region`
/// form a rectangular band (no bound references another band variable).
fn band_rectangular(region: &Stmt, width: usize) -> bool {
    let nest = perfect_nest_loops(region);
    if nest.len() < width {
        return false;
    }
    let band = &nest[..width];
    band.iter().all(|l| {
        [&l.lower, &l.upper].iter().all(|bound| {
            let mut clean = true;
            walk_exprs(bound, &mut |e| {
                if let locus_srcir::ast::Expr::Ident(n) = e {
                    if band.iter().any(|b| &b.var == n && b.var != l.var) {
                        clean = false;
                    }
                }
            });
            clean
        })
    })
}

/// The step's dependence-level predicate under `info` — `None` when the
/// step has no direction-vector predicate (parallelization and fusion
/// go through race classification instead).
fn dep_predicate(info: &DependenceInfo, step: &TransformStep) -> Option<bool> {
    if !info.available {
        return Some(false);
    }
    match step {
        TransformStep::Interchange { order } => {
            let full: Vec<usize> = order
                .iter()
                .copied()
                .chain(order.len()..info.loop_vars.len())
                .collect();
            Some(info.interchange_legal(&full))
        }
        TransformStep::Tile { width, .. } => {
            let band: Vec<usize> = (0..*width).collect();
            Some(info.band_permutable(&band))
        }
        TransformStep::UnrollAndJam { .. } => Some(info.band_permutable(&[0, 1])),
        TransformStep::Vectorize { .. } => Some(info.vectorizable()),
        TransformStep::Distribute { .. } => Some(info.distribution_legal()),
        TransformStep::ParallelFor { .. } | TransformStep::Fuse { .. } => None,
    }
}

/// What the pre-polyhedral engine would say: the conservative dependence
/// predicate gated by the rectangular-bands-only structural rule.
fn old_engine_legal(region: &Stmt, step: &TransformStep, cons: &DependenceInfo) -> bool {
    let Some(pred) = dep_predicate(cons, step) else {
        return true; // not compared; never counts as newly legal
    };
    let structural = match step {
        TransformStep::Interchange { order } => band_rectangular(region, order.len()),
        TransformStep::Tile { width, .. } => band_rectangular(region, *width),
        TransformStep::UnrollAndJam { .. } => band_rectangular(region, 2),
        _ => true,
    };
    pred && structural
}

/// Sweeps one region: every candidate step judged by the live engine,
/// with provenance counts and the newly-legal diff against the
/// conservative engine.
fn precision_sweep(entry: &str, rectangular: bool, root: &Stmt) -> PrecisionRow {
    let mut row = PrecisionRow {
        entry: entry.to_string(),
        rectangular,
        steps: 0,
        exact_verdicts: 0,
        conservative_verdicts: 0,
        legal_steps: 0,
        newly_legal: 0,
    };
    let mut steps: Vec<TransformStep> = PERMS
        .iter()
        .map(|p| TransformStep::Interchange { order: p.to_vec() })
        .collect();
    for target in loop_targets(root) {
        for width in 1..=3usize {
            steps.push(TransformStep::Tile {
                target: target.clone(),
                width,
            });
        }
        steps.push(TransformStep::UnrollAndJam {
            target: target.clone(),
        });
        steps.push(TransformStep::Vectorize {
            target: target.clone(),
        });
        steps.push(TransformStep::Distribute { target });
    }
    for step in &steps {
        row.steps += 1;
        let ex = explain(root, step);
        if ex.provenance == "exact" {
            row.exact_verdicts += 1;
        } else {
            row.conservative_verdicts += 1;
        }
        if !legal(root, step).is_legal() {
            continue;
        }
        row.legal_steps += 1;
        let region = match step {
            TransformStep::Interchange { .. } | TransformStep::Fuse { .. } => Some(root),
            TransformStep::Tile { target, .. }
            | TransformStep::UnrollAndJam { target }
            | TransformStep::Distribute { target }
            | TransformStep::ParallelFor { target }
            | TransformStep::Vectorize { target } => target.resolve(root).filter(|s| s.is_for()),
        };
        let Some(region) = region else { continue };
        let cons = analyze_region_conservative(region);
        if !old_engine_legal(region, step, &cons) {
            row.newly_legal += 1;
        }
    }
    row
}

/// Runs the verdict-precision sweep over every corpus registry entry.
pub fn run_precision() -> Vec<PrecisionRow> {
    locus_corpus::all_programs()
        .iter()
        .map(|e| {
            let regions = find_regions(&e.program);
            let region = regions
                .iter()
                .find(|r| r.id == e.region)
                .unwrap_or_else(|| panic!("{}: region `{}` missing", e.name, e.region));
            let root = extract_region(&e.program, region)
                .unwrap_or_else(|| panic!("{}: region not extractable", e.name))
                .stmt;
            precision_sweep(e.name, e.rectangular, &root)
        })
        .collect()
}

fn json_opt(key: &Option<String>) -> String {
    match key {
        Some(k) => format!("\"{k}\""),
        None => "null".to_string(),
    }
}

/// Renders the precision rows as a JSON array fragment.
fn precision_json(rows: &[PrecisionRow]) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"entry\": \"{}\",\n",
                "      \"rectangular\": {},\n",
                "      \"steps\": {},\n",
                "      \"exact_verdicts\": {},\n",
                "      \"conservative_verdicts\": {},\n",
                "      \"legal_steps\": {},\n",
                "      \"newly_legal\": {}\n",
                "    }}{}\n",
            ),
            r.entry,
            r.rectangular,
            r.steps,
            r.exact_verdicts,
            r.conservative_verdicts,
            r.legal_steps,
            r.newly_legal,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out
}

/// Renders the rows as a JSON document (hand-rolled; the workspace has
/// no serde).
pub fn to_json(rows: &[VerifyRow]) -> String {
    to_json_with_precision(rows, &[])
}

/// Like [`to_json`], with the verdict-precision sweep appended as a
/// `precision` array.
pub fn to_json_with_precision(rows: &[VerifyRow], precision: &[PrecisionRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"verifier-pruned vs unchecked tuning session (fig6 dgemm)\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"label\": \"{}\",\n",
                "      \"budget\": {},\n",
                "      \"threads\": {},\n",
                "      \"space\": {},\n",
                "      \"checked_s\": {:.6},\n",
                "      \"unchecked_s\": {:.6},\n",
                "      \"unchecked_over_checked\": {:.3},\n",
                "      \"pruned_illegal\": {},\n",
                "      \"checked_evaluations\": {},\n",
                "      \"unchecked_evaluations\": {},\n",
                "      \"evaluations_avoided\": {},\n",
                "      \"checked_best\": {},\n",
                "      \"unchecked_best\": {},\n",
                "      \"unchecked_ships_racy\": {}\n",
                "    }}{}\n",
            ),
            r.label,
            r.budget,
            r.threads,
            r.space,
            r.checked_s,
            r.unchecked_s,
            r.ratio,
            r.checked.pruned_illegal,
            r.checked.evaluations(),
            r.unchecked.evaluations(),
            r.evaluations_avoided(),
            json_opt(&r.checked_best),
            json_opt(&r.unchecked_best),
            r.unchecked_ships_racy(),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    if precision.is_empty() {
        out.push_str("  ]\n}\n");
    } else {
        out.push_str("  ],\n  \"precision\": [\n");
        out.push_str(&precision_json(precision));
        out.push_str("  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifier_saves_exactly_the_racy_points() {
        // Scaled-down kernel; the bench_verify binary runs the same
        // harness at the full size.
        let row = run_pair("test", &parallel_loop_choice_program(), 8, 64, 2);
        assert_eq!(row.space, 24, "3 targets x 8 chunk sizes");
        assert!(row.checked.pruned_illegal > 0, "{:?}", row.checked);
        assert_eq!(row.unchecked.pruned_illegal, 0, "{:?}", row.unchecked);
        // Every point the unchecked session measured but the checked one
        // did not is exactly a statically-refused point.
        assert_eq!(
            row.checked.evaluations() + row.checked.pruned_illegal,
            row.unchecked.evaluations(),
        );
        assert_eq!(row.evaluations_avoided(), row.checked.pruned_illegal);
        // The verifier never refuses the winner: the checked best is one
        // of the legal parallelizations.
        let best = row.checked_best.as_deref().expect("a legal point wins");
        assert!(!best.contains("c2"), "k-loop must not win: {best}");
        let json = to_json(&[row]);
        assert!(json.contains("\"evaluations_avoided\": 8"), "{json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn precision_sweep_finds_newly_legal_triangular_restructurings() {
        let rows = run_precision();
        assert!(rows.len() >= 15, "registry shrank to {}", rows.len());
        // The polyhedral engine must admit at least one restructuring of
        // a triangular entry the conservative engine refused — SYRK's
        // `j <= i` band (tiling/interchange were structurally rejected
        // as "not rectangular") is the canonical case.
        let triangular_newly_legal: usize = rows
            .iter()
            .filter(|r| !r.rectangular)
            .map(|r| r.newly_legal)
            .sum();
        assert!(
            triangular_newly_legal >= 1,
            "no triangular entry gained a legal restructuring: {rows:?}"
        );
        let syrk = rows.iter().find(|r| r.entry == "poly-syrk").expect("syrk");
        assert!(syrk.newly_legal >= 1, "syrk gained nothing: {syrk:?}");
        // TRMM's k loop sits *below* the shared (i, j) nest; the old
        // engine happened to admit its restructurings, so the gain there
        // is exactness, not new legality: the inner-loop existential lets
        // every verdict come from the polyhedral engine.
        let trmm = rows.iter().find(|r| r.entry == "poly-trmm").expect("trmm");
        assert!(
            trmm.exact_verdicts >= 1,
            "trmm never decided exactly: {trmm:?}"
        );
        // Every row judges a non-empty step list, and verdict provenance
        // partitions it.
        for r in &rows {
            assert!(r.steps > 0, "{r:?}");
            assert_eq!(r.exact_verdicts + r.conservative_verdicts, r.steps, "{r:?}");
            assert!(r.newly_legal <= r.legal_steps, "{r:?}");
        }
        let json = to_json_with_precision(&[], &rows);
        assert!(json.contains("\"precision\": ["), "{json}");
        assert!(json.contains("\"entry\": \"poly-syrk\""), "{json}");
    }

    #[test]
    fn tiled_space_prunes_the_reduction_tile_loop() {
        let row = run_pair("test", &tiled_loop_choice_program(), 8, 16, 2);
        assert_eq!(row.space, 4, "2 tiles x 2 targets");
        assert_eq!(row.checked.pruned_illegal, 2, "{:?}", row.checked);
        assert_eq!(row.checked.evaluations(), 2);
        assert_eq!(row.unchecked.evaluations(), 4);
    }
}
