//! Benchmarks `locusd` as a service: many concurrent clients firing
//! tune requests at one daemon over the NDJSON wire protocol, measured
//! end to end (connect → request → structured reply). Each concurrency
//! level runs twice against the same daemon — a **cold** phase where
//! every request pays for its measurements, then a **warm** phase where
//! the shared sharded store replays every objective and the daemon does
//! pure bookkeeping. Throughput and client-observed p50/p95 latency per
//! phase are the headline numbers of `BENCH_daemon.json`.

use std::time::Instant;

use locus_daemon::{Client, Daemon, DaemonConfig, Op, Request};

/// Kernels the clients rotate over — small enough spaces that a cold
/// exhaustive pass at this budget stays in benchmark territory, varied
/// enough that requests land on different store shards.
pub const KERNELS: [&str; 4] = ["dgemm", "stencil-jacobi1d", "poly-syrk", "poly-trmm"];

/// Evaluation budget per tune request.
pub const BUDGET: usize = 6;

/// One measured phase: a fixed client count against a cold or warm
/// store.
#[derive(Debug, Clone)]
pub struct DaemonRow {
    /// `"cold"` or `"warm"`.
    pub phase: &'static str,
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests sent across all clients.
    pub requests: usize,
    /// Requests answered with an error reply (must be 0).
    pub errors: usize,
    /// Wall-clock of the whole phase, seconds.
    pub wall_s: f64,
    /// `requests / wall_s`.
    pub throughput_rps: f64,
    /// Median client-observed request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile client-observed request latency, milliseconds.
    pub p95_ms: f64,
    /// Sum of the `evaluations` field over all replies — 0 in a warm
    /// phase, where the store replays every objective.
    pub evaluations: u64,
}

/// Nearest-rank percentile of an unsorted latency sample (q in 0..=100).
pub fn percentile_ms(latencies: &mut [f64], q: usize) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let rank = (q * latencies.len()).div_ceil(100).max(1) - 1;
    latencies[rank.min(latencies.len() - 1)]
}

fn tune_request(id: String, kernel: &str) -> Request {
    let mut request = Request::new(&id, Op::Tune);
    request.kernel = kernel.to_string();
    request.search = "exhaustive".to_string();
    request.seed = 0;
    request.budget = BUDGET;
    request.threads = 1;
    request
}

/// Runs one phase: `clients` threads, each opening its own connection
/// and sending `per_client` tune requests back to back; `pick` maps
/// `(client, request)` to the kernel that request tunes.
fn run_phase(
    addr: &str,
    phase: &'static str,
    clients: usize,
    per_client: usize,
    pick: &(impl Fn(usize, usize) -> &'static str + Sync),
) -> (DaemonRow, Vec<f64>) {
    let started = Instant::now();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut errors = 0usize;
    let mut evaluations = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(per_client);
                    let mut errors = 0usize;
                    let mut evaluations = 0u64;
                    for r in 0..per_client {
                        let request = tune_request(format!("{phase}-c{c}-r{r}"), pick(c, r));
                        let sent = Instant::now();
                        let reply = client.request(&request).expect("reply");
                        latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                        if reply.ok {
                            evaluations += reply.get_u64("evaluations").unwrap_or(0);
                        } else {
                            errors += 1;
                        }
                    }
                    (latencies, errors, evaluations)
                })
            })
            .collect();
        for handle in handles {
            let (latencies, errs, evals) = handle.join().expect("client thread");
            all_latencies.extend(latencies);
            errors += errs;
            evaluations += evals;
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let requests = clients * per_client;
    let mut sample = all_latencies.clone();
    let row = DaemonRow {
        phase,
        clients,
        requests,
        errors,
        wall_s,
        throughput_rps: requests as f64 / wall_s.max(1e-9),
        p50_ms: percentile_ms(&mut sample, 50),
        p95_ms: percentile_ms(&mut sample, 95),
        evaluations,
    };
    (row, all_latencies)
}

/// Runs the full benchmark: for each concurrency level a fresh daemon
/// with an empty store, one cold phase, then one warm phase against the
/// now-populated store. Returns the rows in phase order per level.
pub fn run_daemon_bench(levels: &[usize], per_client: usize) -> Vec<DaemonRow> {
    let mut rows = Vec::new();
    for &clients in levels {
        let dir = std::env::temp_dir().join(format!(
            "locus-bench-daemon-{}-{clients}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut daemon =
            Daemon::start(DaemonConfig::new(dir.join("store.d"))).expect("start daemon");
        let addr = daemon.addr().to_string();
        let rotate = |c: usize, r: usize| KERNELS[(c + r) % KERNELS.len()];
        let (cold, _) = run_phase(&addr, "cold", clients, per_client, &rotate);
        let (warm, _) = run_phase(&addr, "warm", clients, per_client, &rotate);
        rows.push(cold);
        rows.push(warm);
        daemon.stop();
        std::fs::remove_dir_all(&dir).ok();
    }
    rows
}

/// Smoke-checks the service invariants the benchmark relies on; panics
/// with a diagnostic on any violation. Used by `bench_daemon --check`
/// in CI.
pub fn check_daemon() {
    let dir = std::env::temp_dir().join(format!("locus-bench-daemon-check-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut daemon = Daemon::start(DaemonConfig::new(dir.join("store.d"))).expect("start daemon");
    let addr = daemon.addr().to_string();

    // Every request tunes a *distinct* kernel: the cold phase then pays
    // for 8 real tuning sessions, so cold-vs-warm wall-clock is a
    // session-cost comparison rather than scheduling noise (with the
    // bench's rotating kernels, most cold requests are already answered
    // by a sibling's store records).
    const CHECK_KERNELS: [&str; 8] = [
        "dgemm",
        "stencil-jacobi1d",
        "stencil-heat1d",
        "stencil-seidel1d",
        "poly-syrk",
        "poly-trmm",
        "poly-lu",
        "poly-spmv",
    ];
    let distinct = |c: usize, r: usize| CHECK_KERNELS[c * 2 + r];
    let (cold, _) = run_phase(&addr, "cold", 4, 2, &distinct);
    assert_eq!(cold.errors, 0, "cold phase saw error replies: {cold:?}");
    assert!(
        cold.evaluations > 0,
        "cold phase measured nothing: {cold:?}"
    );
    let (warm, _) = run_phase(&addr, "warm", 4, 2, &distinct);
    assert_eq!(warm.errors, 0, "warm phase saw error replies: {warm:?}");
    assert_eq!(
        warm.evaluations, 0,
        "warm phase re-measured despite the shared store: {warm:?}"
    );
    assert!(
        warm.wall_s < cold.wall_s,
        "warm replay not faster than cold tuning: warm {} s vs cold {} s",
        warm.wall_s,
        cold.wall_s
    );

    // Supervision: a poisoned request is reported as a structured panic
    // error and the daemon keeps serving.
    let mut client = Client::connect(&addr).expect("connect");
    let reply = client
        .request(&Request::new("poison", Op::DebugPanic))
        .expect("reply to poisoned request");
    assert!(!reply.ok, "debug-panic must fail: {reply:?}");
    assert_eq!(
        reply.error_code(),
        Some(locus_daemon::codes::PANIC),
        "wrong error code: {reply:?}"
    );
    assert!(client.ping("after-poison").expect("ping"), "daemon died");

    daemon.stop();
    std::fs::remove_dir_all(&dir).ok();
}

/// Serializes the rows as the `BENCH_daemon.json` report.
pub fn to_json(rows: &[DaemonRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"locusd service throughput and latency, cold vs warm store\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"phase\": \"{}\",\n",
                "      \"clients\": {},\n",
                "      \"requests\": {},\n",
                "      \"errors\": {},\n",
                "      \"wall_s\": {:.6},\n",
                "      \"throughput_rps\": {:.3},\n",
                "      \"p50_ms\": {:.3},\n",
                "      \"p95_ms\": {:.3},\n",
                "      \"evaluations\": {}\n",
                "    }}{}\n",
            ),
            r.phase,
            r.clients,
            r.requests,
            r.errors,
            r.wall_s,
            r.throughput_rps,
            r.p50_ms,
            r.p95_ms,
            r.evaluations,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let mut one = vec![5.0];
        assert_eq!(percentile_ms(&mut one, 50), 5.0);
        assert_eq!(percentile_ms(&mut one, 95), 5.0);
        let mut ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert_eq!(percentile_ms(&mut ten, 50), 5.0);
        assert_eq!(percentile_ms(&mut ten, 95), 10.0);
        assert_eq!(percentile_ms(&mut [], 50), 0.0);
    }

    #[test]
    fn json_report_shape() {
        let row = DaemonRow {
            phase: "cold",
            clients: 4,
            requests: 8,
            errors: 0,
            wall_s: 1.25,
            throughput_rps: 6.4,
            p50_ms: 100.0,
            p95_ms: 400.0,
            evaluations: 24,
        };
        let json = to_json(&[row]);
        assert!(json.contains("\"phase\": \"cold\""));
        assert!(json.contains("\"clients\": 4"));
        assert!(json.contains("\"p95_ms\": 400.000"));
        assert!(json.contains("\"evaluations\": 24"));
    }
}
