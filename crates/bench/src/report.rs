//! Minimal aligned-table rendering for the harness binaries.

/// Renders an aligned plain-text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let text = render_table(
            "T",
            &["name", "x"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "10.00".into()],
            ],
        );
        assert!(text.contains("  name"));
        assert!(text.contains("longer"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len());
    }
}
