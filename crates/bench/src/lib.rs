//! Benchmark harnesses reproducing every table and figure of the Locus
//! paper's evaluation (Sec. V) on the simulated machine.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig6`] | Fig. 6: DGEMM speedups over 1..10 cores (Locus vs Pluto vs MKL-like) and the six stencil speedups (Locus vs Pluto) |
//! | [`fig12`] | Fig. 12: Kripke — Locus-generated vs hand-optimized versions across the six data layouts |
//! | [`table1`] | Table I + the Sec. V-D summary statistics over the synthetic extraction corpus |
//! | [`parallel`] | The parallel batched-evaluation engine vs the sequential driver (BENCH_parallel.json) |
//! | [`store`] | Cold vs warm store-backed tuning sessions (BENCH_store.json) |
//! | [`verify`] | Verifier-pruned vs unchecked tuning sessions (BENCH_verify.json) |
//! | [`interp`] | Bytecode VM vs tree interpreter on the corpus kernels (BENCH_interp.json) |
//! | [`corpus`] | Corpus-registry x machine-profile sweep: cold search vs store transfer (BENCH_corpus.json) |
//! | [`daemon`] | `locusd` service throughput/latency at 1/4/16 concurrent clients, cold vs warm store (BENCH_daemon.json) |
//! | [`search`] | Search-module shoot-out: evaluations-to-best-known per corpus family (BENCH_search.json) |
//! | [`report`] | Plain-text table rendering shared by the harness binaries |
//! | [`timer`] | Minimal timing harness for the `benches/` entry points |
//!
//! Each module has a binary (`cargo run --release -p locus-bench --bin
//! fig6_dgemm`, ...) that prints the regenerated rows next to the
//! paper's reported values. Absolute numbers come from the simulator and
//! are not comparable to the paper's Xeon; the *shape* (who wins, by
//! what rough factor) is the reproduction target, see `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod corpus;
pub mod daemon;
pub mod fig12;
pub mod fig6;
pub mod interp;
pub mod parallel;
pub mod report;
pub mod search;
pub mod store;
pub mod table1;
pub mod timer;
pub mod verify;

use locus_machine::{Machine, MachineConfig};

/// The standard scaled-down machine used by most harnesses.
pub fn bench_machine(cores: usize) -> Machine {
    Machine::new(MachineConfig::scaled_small().with_cores(cores))
}

/// The tiny-cache machine used by the stencil harness, whose grids are
/// scaled furthest from the paper's sizes (see
/// `MachineConfig::scaled_tiny`).
pub fn bench_machine_tiny(cores: usize) -> Machine {
    Machine::new(MachineConfig::scaled_tiny().with_cores(cores))
}

/// Geometric mean of a non-empty slice (1.0 for empty).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
    }
}
