//! Benchmarks the persistent tuning store: the same Fig. 6 DGEMM tuning
//! session run twice against one store file. The cold session pays for
//! every measurement; the warm session rehydrates the memo cache from
//! disk, warm-starts the search, and should perform **zero** fresh
//! measurements — its wall-clock is pure replay. The cold/warm ratio is
//! the headline number of `BENCH_store.json`.

use std::time::Instant;

use locus_core::{LocusSystem, TuneReport, TuneResult};
use locus_corpus::dgemm_program;
use locus_search::{ExhaustiveSearch, SearchModule};
use locus_store::TuningStore;

use crate::bench_machine_tiny;
use crate::fig6::fig7_locus_program;

/// One cold-vs-warm comparison of a store-backed tuning session.
#[derive(Debug, Clone)]
pub struct StoreRow {
    /// Row label.
    pub label: String,
    /// Search module driven in both sessions.
    pub search: String,
    /// Evaluation budget per session.
    pub budget: usize,
    /// Worker threads.
    pub threads: usize,
    /// Wall-clock of the cold (empty-store) session.
    pub cold_s: f64,
    /// Wall-clock of the warm (rehydrated) session.
    pub warm_s: f64,
    /// `cold_s / warm_s`.
    pub ratio: f64,
    /// Session accounting of the cold run.
    pub cold: TuneReport,
    /// Session accounting of the warm run.
    pub warm: TuneReport,
    /// Whether both sessions returned the same best point and objective,
    /// bit for bit.
    pub identical_best: bool,
    /// Size of the store file after both sessions, in bytes.
    pub store_bytes: u64,
}

fn best_key(result: &TuneResult) -> Option<(String, u64)> {
    result
        .outcome
        .best
        .as_ref()
        .map(|(p, v)| (p.canonical_key(), v.to_bits()))
}

fn session(
    system: &LocusSystem,
    store_path: &std::path::Path,
    search: &mut dyn SearchModule,
    budget: usize,
    threads: usize,
) -> (TuneResult, TuneReport, f64) {
    let source = dgemm_program(8);
    let locus = fig7_locus_program(4);
    let mut store = TuningStore::open(store_path).expect("open tuning store");
    let start = Instant::now();
    let (result, report) = system
        .tune_parallel_with_store(&source, &locus, search, budget, threads, &mut store)
        .expect("store-backed tuning runs");
    (result, report, start.elapsed().as_secs_f64())
}

/// Runs one cold-vs-warm pair. The store file lives in the system temp
/// directory and is removed afterwards; each session opens it fresh, so
/// the warm session sees only what the cold session persisted.
pub fn run_pair(label: &str, budget: usize, threads: usize) -> StoreRow {
    let system = LocusSystem::new(bench_machine_tiny(1));
    let path = std::env::temp_dir().join(format!(
        "locus-bench-store-{}-{label}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();

    let mut search = ExhaustiveSearch::default();
    let (cold_result, cold, cold_s) = session(&system, &path, &mut search, budget, threads);
    let mut search = ExhaustiveSearch::default();
    let (warm_result, warm, warm_s) = session(&system, &path, &mut search, budget, threads);

    let store_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&path).ok();

    StoreRow {
        label: label.to_string(),
        search: "ExhaustiveSearch".to_string(),
        budget,
        threads,
        cold_s,
        warm_s,
        ratio: cold_s / warm_s.max(1e-12),
        cold,
        warm,
        identical_best: best_key(&cold_result) == best_key(&warm_result),
        store_bytes,
    }
}

/// Runs the benchmark: the Fig. 7 DGEMM space (tiles capped at 4) at two
/// budgets — a partial sweep and the full 8192-point space.
pub fn run_store(threads: usize) -> Vec<StoreRow> {
    vec![
        run_pair("fig6 dgemm partial sweep", 1024, threads),
        run_pair("fig6 dgemm full space", 8192, threads),
    ]
}

/// Renders the rows as a JSON document (hand-rolled; the workspace has
/// no serde).
pub fn to_json(rows: &[StoreRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"cold vs warm store-backed tuning session (fig6 dgemm)\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"label\": \"{}\",\n",
                "      \"search\": \"{}\",\n",
                "      \"budget\": {},\n",
                "      \"threads\": {},\n",
                "      \"cold_s\": {:.6},\n",
                "      \"warm_s\": {:.6},\n",
                "      \"cold_over_warm\": {:.3},\n",
                "      \"cold_evaluations\": {},\n",
                "      \"cold_appended\": {},\n",
                "      \"warm_evaluations\": {},\n",
                "      \"warm_store_hits\": {},\n",
                "      \"warm_rehydrated\": {},\n",
                "      \"store_bytes\": {},\n",
                "      \"identical_best\": {}\n",
                "    }}{}\n",
            ),
            r.label,
            r.search,
            r.budget,
            r.threads,
            r.cold_s,
            r.warm_s,
            r.ratio,
            r.cold.evaluations(),
            r.cold.appended,
            r.warm.evaluations(),
            r.warm.store_hits(),
            r.warm.rehydrated,
            r.store_bytes,
            r.identical_best,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_session_is_pure_replay() {
        // Scaled-down budget; the bench_store binary runs the same
        // harness with the full sweeps.
        let row = run_pair("test", 256, 2);
        assert!(row.identical_best, "cold and warm best must agree");
        assert!(row.cold.evaluations() > 0);
        assert_eq!(row.cold.store_hits(), 0, "{:?}", row.cold);
        assert_eq!(row.warm.evaluations(), 0, "warm re-measures nothing");
        // Every warm proposal is a store hit — including the ones the
        // cold session answered from its own in-session memo cache.
        assert_eq!(
            row.warm.store_hits(),
            row.cold.evaluations() + row.cold.memo_hits()
        );
        assert_eq!(row.warm.rehydrated, row.cold.appended);
        assert!(row.store_bytes > 0);
        let json = to_json(&[row]);
        assert!(json.contains("\"warm_evaluations\": 0"), "{json}");
        assert!(json.ends_with("}\n"));
    }
}
