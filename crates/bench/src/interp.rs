//! Benchmarks the execution engines against each other: every kernel is
//! run on the tree interpreter, the stack-bytecode VM and the register
//! VM (each timed over several repeats of the full `Machine::run` path,
//! compilation included), plus the register VM's *batched* path
//! (compile once via [`CompiledVariant`], then measure repeatedly) —
//! after first asserting that every path returns bit-identical
//! measurements. The per-kernel speedups over the tree oracle and
//! their geometric means are the headline numbers of
//! `BENCH_interp.json`.
//!
//! The kernels are the corpus the tuner actually evaluates — DGEMM,
//! stencils, Kripke — plus a tiled, OMP-annotated DGEMM variant so the
//! transformed programs the search generates are represented too.

use std::time::Instant;

use locus_corpus::{dgemm_program, kripke_hand_optimized, KripkeKernel, Stencil};
use locus_machine::{CompiledVariant, ExecEngine, Machine, MachineConfig, Measurement};
use locus_srcir::ast::Program;
use locus_transform as transform;

use crate::geomean;

/// One engine comparison on a single kernel: all speedups are over the
/// tree interpreter.
#[derive(Debug, Clone)]
pub struct InterpRow {
    /// Kernel label.
    pub label: String,
    /// Timed repeats per engine.
    pub repeats: usize,
    /// Interpreted operations of one run (identical across engines).
    pub ops: u64,
    /// Wall-clock of `repeats` tree-interpreter runs, seconds.
    pub tree_s: f64,
    /// Wall-clock of `repeats` stack-VM runs, seconds.
    pub stack_s: f64,
    /// Wall-clock of `repeats` register-VM runs (compile every call,
    /// like `Machine::run`), seconds.
    pub reg_s: f64,
    /// Wall-clock of `repeats` register-VM runs through a shared
    /// [`CompiledVariant`] (compile once, measure many), seconds.
    pub batched_s: f64,
    /// `tree_s / stack_s`.
    pub stack_speedup: f64,
    /// `tree_s / reg_s`.
    pub reg_speedup: f64,
    /// `tree_s / batched_s`.
    pub batched_speedup: f64,
    /// Whether all engines *and* the batched path returned bit-identical
    /// measurements.
    pub identical: bool,
}

/// Bit-level measurement identity: floats by bit pattern (stricter than
/// `PartialEq`, which would accept `-0.0 == 0.0`).
pub fn bit_identical(a: &Measurement, b: &Measurement) -> bool {
    a.cycles.to_bits() == b.cycles.to_bits()
        && a.time_ms.to_bits() == b.time_ms.to_bits()
        && a.ops == b.ops
        && a.flops == b.flops
        && a.cache == b.cache
        && a.checksum == b.checksum
}

/// DGEMM tiled and OMP-parallelized the way a tuned variant would be.
fn tuned_dgemm(n: usize) -> Program {
    use locus_srcir::index::HierIndex;
    use locus_srcir::region::{extract_region, find_regions, replace_region};

    let mut program = dgemm_program(n);
    let regions = find_regions(&program);
    let mut stmt = extract_region(&program, &regions[0]).expect("region").stmt;
    transform::interchange::interchange(&mut stmt, &[0, 2, 1], true).expect("interchange");
    transform::tiling::tile(&mut stmt, &HierIndex::root(), &[8, 8, 8], true).expect("tile");
    transform::pragmas::insert_omp_for(&mut stmt, &transform::LoopSel::Outermost, None, true)
        .expect("omp");
    replace_region(&mut program, &regions[0], stmt);
    program
}

/// The benchmarked kernels.
pub fn kernels() -> Vec<(String, Program)> {
    vec![
        ("dgemm-24".to_string(), dgemm_program(24)),
        ("dgemm-24-tuned".to_string(), tuned_dgemm(24)),
        (
            "jacobi2d-32x4".to_string(),
            locus_corpus::stencil_program(Stencil::Jacobi2d, 32, 4),
        ),
        (
            "heat2d-32x4".to_string(),
            locus_corpus::stencil_program(Stencil::Heat2d, 32, 4),
        ),
        (
            "seidel1d-256x8".to_string(),
            locus_corpus::stencil_program(Stencil::Seidel1d, 256, 8),
        ),
        (
            "kripke-ltimes-dgz".to_string(),
            kripke_hand_optimized(KripkeKernel::LTimes, "DGZ"),
        ),
        (
            "kripke-scattering-zgd".to_string(),
            kripke_hand_optimized(KripkeKernel::Scattering, "ZGD"),
        ),
    ]
}

/// Times `repeats` full runs, best of five batches (the minimum is the
/// standard estimator under scheduler noise: every perturbation only
/// adds time).
fn time_engine(
    config: &MachineConfig,
    engine: ExecEngine,
    program: &Program,
    repeats: usize,
) -> f64 {
    let machine = Machine::new(config.clone().with_engine(engine));
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..repeats {
            machine.run(program, "kernel").expect("kernel runs");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Times `repeats` measurements through one compiled variant (the
/// batched path tuning sweeps take: lowering happens once, on the
/// first call, and is amortized across the batch).
fn time_batched(config: &MachineConfig, program: &Program, repeats: usize) -> f64 {
    let variant = CompiledVariant::new(program.clone(), "kernel");
    variant.run(config).expect("kernel runs");
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..repeats {
            variant.run(config).expect("kernel runs");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Runs one kernel on every engine: asserts identity first (tree vs
/// stack vs register vs batched register), then times `repeats` full
/// runs of each path.
pub fn run_kernel(label: &str, program: &Program, repeats: usize) -> InterpRow {
    let config = MachineConfig::scaled_small();
    let tree_m = Machine::new(config.clone().with_engine(ExecEngine::Tree))
        .run(program, "kernel")
        .expect("tree run");
    let stack_m = Machine::new(config.clone().with_engine(ExecEngine::Bytecode))
        .run(program, "kernel")
        .expect("stack vm run");
    let reg_m = Machine::new(config.clone().with_engine(ExecEngine::RegisterVm))
        .run(program, "kernel")
        .expect("register vm run");
    let batched_m = CompiledVariant::new(program.clone(), "kernel")
        .run(&config.clone().with_engine(ExecEngine::RegisterVm))
        .expect("batched run");
    let identical = bit_identical(&tree_m, &stack_m)
        && bit_identical(&tree_m, &reg_m)
        && bit_identical(&tree_m, &batched_m);

    let tree_s = time_engine(&config, ExecEngine::Tree, program, repeats);
    let stack_s = time_engine(&config, ExecEngine::Bytecode, program, repeats);
    let reg_s = time_engine(&config, ExecEngine::RegisterVm, program, repeats);
    let batched_s = time_batched(
        &config.clone().with_engine(ExecEngine::RegisterVm),
        program,
        repeats,
    );
    InterpRow {
        label: label.to_string(),
        repeats,
        ops: tree_m.ops,
        tree_s,
        stack_s,
        reg_s,
        batched_s,
        stack_speedup: tree_s / stack_s.max(1e-12),
        reg_speedup: tree_s / reg_s.max(1e-12),
        batched_speedup: tree_s / batched_s.max(1e-12),
        identical,
    }
}

/// Runs the full engine comparison.
pub fn run_interp(repeats: usize) -> Vec<InterpRow> {
    kernels()
        .iter()
        .map(|(label, program)| run_kernel(label, program, repeats))
        .collect()
}

/// Geometric-mean stack-VM speedup across the rows.
pub fn geomean_stack(rows: &[InterpRow]) -> f64 {
    geomean(&rows.iter().map(|r| r.stack_speedup).collect::<Vec<_>>())
}

/// Geometric-mean register-VM speedup (compile every call).
pub fn geomean_reg(rows: &[InterpRow]) -> f64 {
    geomean(&rows.iter().map(|r| r.reg_speedup).collect::<Vec<_>>())
}

/// Geometric-mean batched register-VM speedup (compile once).
pub fn geomean_batched(rows: &[InterpRow]) -> f64 {
    geomean(&rows.iter().map(|r| r.batched_speedup).collect::<Vec<_>>())
}

/// The cost of the tracing hooks when tracing is off.
#[derive(Debug, Clone)]
pub struct TraceOverheadRow {
    /// Kernel label.
    pub label: String,
    /// Timed repeats per batch.
    pub repeats: usize,
    /// Best batch time of the plain `Machine::run` path, seconds.
    pub plain_s: f64,
    /// Best batch time of `Machine::run_traced` with a disabled
    /// [`locus_trace::Tracer`], seconds.
    pub traced_s: f64,
}

impl TraceOverheadRow {
    /// Relative overhead: `traced_s / plain_s - 1` (0.01 == 1%).
    pub fn overhead(&self) -> f64 {
        self.traced_s / self.plain_s.max(1e-12) - 1.0
    }
}

/// Measures the disabled-tracer overhead of [`Machine::run_traced`]
/// against the plain `run` path on the DGEMM kernel (register engine —
/// the path every tuning evaluation takes).
///
/// Batches of the two paths are interleaved with alternating order and
/// the minimum over 21 batches is kept for each, so scheduler drift and
/// frequency ramps hit both sides equally. The tuning driver calls
/// `run_traced` unconditionally, so this ratio is exactly the tracing
/// tax every untraced session pays.
pub fn trace_overhead(repeats: usize) -> TraceOverheadRow {
    let program = dgemm_program(24);
    let machine = Machine::new(MachineConfig::scaled_small().with_engine(ExecEngine::RegisterVm));
    let tracer = locus_trace::Tracer::disabled();

    // Warm both paths.
    machine.run(&program, "kernel").expect("kernel runs");
    machine
        .run_traced(&program, "kernel", &tracer)
        .expect("kernel runs");

    let time_plain = |plain_s: &mut f64| {
        let start = Instant::now();
        for _ in 0..repeats {
            machine.run(&program, "kernel").expect("kernel runs");
        }
        *plain_s = plain_s.min(start.elapsed().as_secs_f64());
    };
    let time_traced = |traced_s: &mut f64| {
        let start = Instant::now();
        for _ in 0..repeats {
            machine
                .run_traced(&program, "kernel", &tracer)
                .expect("kernel runs");
        }
        *traced_s = traced_s.min(start.elapsed().as_secs_f64());
    };

    let mut plain_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    for batch in 0..21 {
        if batch % 2 == 0 {
            time_plain(&mut plain_s);
            time_traced(&mut traced_s);
        } else {
            time_traced(&mut traced_s);
            time_plain(&mut plain_s);
        }
    }
    TraceOverheadRow {
        label: "dgemm-24".to_string(),
        repeats,
        plain_s,
        traced_s,
    }
}

/// Renders the rows as a JSON document (hand-rolled; the workspace has
/// no serde).
pub fn to_json(rows: &[InterpRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"execution engines vs tree interpreter (full Machine::run, compile included; batched = CompiledVariant, compile once)\",\n",
    );
    out.push_str(&format!(
        concat!(
            "  \"geomean_stack_speedup\": {:.2},\n",
            "  \"geomean_register_speedup\": {:.2},\n",
            "  \"geomean_batched_speedup\": {:.2},\n",
            "  \"rows\": [\n",
        ),
        geomean_stack(rows),
        geomean_reg(rows),
        geomean_batched(rows)
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"label\": \"{}\",\n",
                "      \"repeats\": {},\n",
                "      \"ops\": {},\n",
                "      \"tree_s\": {:.6},\n",
                "      \"stack_s\": {:.6},\n",
                "      \"reg_s\": {:.6},\n",
                "      \"batched_s\": {:.6},\n",
                "      \"stack_speedup\": {:.2},\n",
                "      \"register_speedup\": {:.2},\n",
                "      \"batched_speedup\": {:.2},\n",
                "      \"bit_identical\": {}\n",
                "    }}{}\n",
            ),
            r.label,
            r.repeats,
            r.ops,
            r.tree_s,
            r.stack_s,
            r.reg_s,
            r.batched_s,
            r.stack_speedup,
            r.reg_speedup,
            r.batched_speedup,
            r.identical,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_vm_is_faster() {
        // One repeat keeps the test quick; the bench_interp binary runs
        // the same harness with enough repeats for stable timing.
        let row = run_kernel("dgemm", &dgemm_program(16), 1);
        assert!(row.identical, "engines disagree on dgemm");
        assert!(row.ops > 0);
        let json = to_json(&[row]);
        assert!(json.contains("\"bit_identical\": true"), "{json}");
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn run_traced_with_disabled_tracer_matches_run() {
        let program = dgemm_program(16);
        let machine = Machine::new(MachineConfig::scaled_small());
        let plain = machine.run(&program, "kernel").unwrap();
        let traced = machine
            .run_traced(&program, "kernel", &locus_trace::Tracer::disabled())
            .unwrap();
        assert!(bit_identical(&plain, &traced), "run_traced diverged");
        let row = trace_overhead(1);
        assert!(row.plain_s > 0.0 && row.traced_s > 0.0);
    }

    #[test]
    fn tuned_dgemm_variant_is_transformed_and_identical() {
        let program = tuned_dgemm(16);
        let printed = locus_srcir::print_program(&program);
        assert!(printed.contains("omp parallel for"), "{printed}");
        let row = run_kernel("dgemm-tuned", &program, 1);
        assert!(row.identical, "engines disagree on tuned dgemm");
    }
}
