//! Benchmarks the parallel batched-evaluation engine
//! ([`LocusSystem::tune_parallel`]) against the sequential driver on the
//! Fig. 7 DGEMM tuning problem, and checks the determinism contract
//! while at it: same seed, same best — bit for bit.
//!
//! The interesting effect on a small host is not thread-level speedup
//! (the simulated measurements are CPU-bound) but the shared memo
//! cache: OR-block points whose dead parameters differ specialize to
//! the *same* direct program, so the parallel engine measures each
//! distinct variant exactly once where the sequential driver measures
//! every point.

use std::time::Instant;

use locus_core::{LocusSystem, MemoStats, TuneResult};
use locus_corpus::dgemm_program;
use locus_search::{ExhaustiveSearch, RandomSearch, SearchModule};

use crate::bench_machine_tiny;
use crate::fig6::fig7_locus_program;

/// One comparison row of the parallel-vs-sequential benchmark.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Row label.
    pub label: String,
    /// Search module driven on both sides.
    pub search: String,
    /// Evaluation budget.
    pub budget: usize,
    /// Worker threads of the parallel side.
    pub threads: usize,
    /// Wall-clock of the sequential `tune`.
    pub sequential_s: f64,
    /// Wall-clock of `tune_parallel`.
    pub parallel_s: f64,
    /// `sequential_s / parallel_s`.
    pub speedup: f64,
    /// Evaluations recorded (identical on both sides by contract).
    pub evaluations: usize,
    /// Memo-cache statistics of the parallel run.
    pub stats: MemoStats,
    /// Whether both drivers returned the same best point and objective.
    pub identical_best: bool,
}

fn best_key(result: &TuneResult) -> Option<(String, u64)> {
    result
        .outcome
        .best
        .as_ref()
        .map(|(p, v)| (p.canonical_key(), v.to_bits()))
}

fn compare<F>(label: &str, name: &str, budget: usize, threads: usize, mut make: F) -> ParallelRow
where
    F: FnMut() -> Box<dyn SearchModule>,
{
    let source = dgemm_program(16);
    let locus = fig7_locus_program(4);
    let system = LocusSystem::new(bench_machine_tiny(1));

    let mut search = make();
    let start = Instant::now();
    let sequential = system
        .tune(&source, &locus, search.as_mut(), budget)
        .expect("sequential tuning runs");
    let sequential_s = start.elapsed().as_secs_f64();

    let mut search = make();
    let start = Instant::now();
    let (parallel, stats) = system
        .tune_parallel_with_cache(&source, &locus, search.as_mut(), budget, threads)
        .expect("parallel tuning runs");
    let parallel_s = start.elapsed().as_secs_f64();

    ParallelRow {
        label: label.to_string(),
        search: name.to_string(),
        budget,
        threads,
        sequential_s,
        parallel_s,
        speedup: sequential_s / parallel_s.max(1e-12),
        evaluations: parallel.outcome.evaluations,
        stats,
        identical_best: best_key(&sequential) == best_key(&parallel),
    }
}

/// A Fig. 6-style tuning *session*: several searches over the same
/// source and machine, back to back. Sequential `tune` starts every run
/// from scratch; `tune_parallel_shared` amortizes the whole session
/// through one workspace cache, so later runs mostly replay cached
/// measurements — the OpenTuner-memoization effect of Sec. IV-B.
fn compare_session(threads: usize) -> ParallelRow {
    let source = dgemm_program(8);
    let locus = fig7_locus_program(4);
    let system = LocusSystem::new(bench_machine_tiny(1));
    type MakeSearch = Box<dyn Fn() -> Box<dyn SearchModule>>;
    let runs: Vec<(usize, MakeSearch)> = vec![
        // A full sweep of the 8192-point space, then two adaptive
        // searches that re-propose inside it.
        (8192, Box::new(|| Box::new(ExhaustiveSearch::default()))),
        (512, Box::new(|| Box::new(RandomSearch::new(7)))),
        (
            512,
            Box::new(|| Box::new(locus_search::BanditTuner::new(1))),
        ),
    ];
    let budget: usize = runs.iter().map(|(b, _)| b).sum();

    let mut sequential_s = 0.0;
    let mut seq_best: Option<(String, u64)> = None;
    let mut evaluations = 0;
    for (budget, make) in &runs {
        let mut search = make();
        let start = Instant::now();
        let result = system
            .tune(&source, &locus, search.as_mut(), *budget)
            .expect("sequential session run");
        sequential_s += start.elapsed().as_secs_f64();
        evaluations += result.outcome.evaluations;
        let best = best_key(&result);
        if seq_best.is_none() || best_value(&best) < best_value(&seq_best) {
            seq_best = best;
        }
    }

    let cache = locus_core::MemoCache::new();
    let mut parallel_s = 0.0;
    let mut par_best: Option<(String, u64)> = None;
    for (budget, make) in &runs {
        let mut search = make();
        let start = Instant::now();
        let result = system
            .tune_parallel_shared(&source, &locus, search.as_mut(), *budget, threads, &cache)
            .expect("parallel session run");
        parallel_s += start.elapsed().as_secs_f64();
        let best = best_key(&result);
        if par_best.is_none() || best_value(&best) < best_value(&par_best) {
            par_best = best;
        }
    }

    ParallelRow {
        label: "fig6 dgemm tuning session".to_string(),
        search: "Exhaustive(8192) + Random(512) + Bandit(512), shared cache".to_string(),
        budget,
        threads,
        sequential_s,
        parallel_s,
        speedup: sequential_s / parallel_s.max(1e-12),
        evaluations,
        stats: cache.stats(),
        identical_best: seq_best == par_best,
    }
}

fn best_value(best: &Option<(String, u64)>) -> f64 {
    best.as_ref()
        .map(|(_, bits)| f64::from_bits(*bits))
        .unwrap_or(f64::INFINITY)
}

/// Runs the benchmark: two single-run comparisons on the Fig. 7 program
/// (tiles capped at 4, an 8192-point space), then the shared-cache
/// session — the headline row of `BENCH_parallel.json`.
pub fn run_parallel(threads: usize) -> Vec<ParallelRow> {
    vec![
        // Budget 2048 over the 8192-point space = stride 4: each batch
        // sweeps the fast-varying OR-block params, so most points in the
        // plain branch are dead-param duplicates of an already-measured
        // variant.
        compare(
            "fig7 dgemm exhaustive",
            "ExhaustiveSearch",
            2048,
            threads,
            || Box::new(ExhaustiveSearch::default()),
        ),
        compare(
            "fig7 dgemm random",
            "RandomSearch(seed 7)",
            256,
            threads,
            || Box::new(RandomSearch::new(7)),
        ),
        compare_session(threads),
    ]
}

/// Renders the rows as a JSON document (hand-rolled; the workspace has
/// no serde).
pub fn to_json(rows: &[ParallelRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"tune_parallel vs tune (fig7 dgemm)\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"label\": \"{}\",\n",
                "      \"search\": \"{}\",\n",
                "      \"budget\": {},\n",
                "      \"threads\": {},\n",
                "      \"sequential_s\": {:.6},\n",
                "      \"parallel_s\": {:.6},\n",
                "      \"speedup\": {:.3},\n",
                "      \"evaluations\": {},\n",
                "      \"unique_points\": {},\n",
                "      \"unique_variants\": {},\n",
                "      \"point_hits\": {},\n",
                "      \"variant_hits\": {},\n",
                "      \"identical_best\": {}\n",
                "    }}{}\n",
            ),
            r.label,
            r.search,
            r.budget,
            r.threads,
            r.sequential_s,
            r.parallel_s,
            r.speedup,
            r.evaluations,
            r.stats.unique_points,
            r.stats.unique_variants,
            r.stats.point_hits,
            r.stats.variant_hits,
            r.identical_best,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_bench_rows_are_consistent() {
        // Scaled-down budgets: the real rows (run by the bench_parallel
        // binary) use the same harness with bigger sweeps.
        let rows = vec![
            compare("exhaustive", "ExhaustiveSearch", 512, 2, || {
                Box::new(ExhaustiveSearch::default())
            }),
            compare("random", "RandomSearch(seed 7)", 64, 2, || {
                Box::new(RandomSearch::new(7))
            }),
        ];
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.identical_best, "{}: drivers disagreed", row.label);
            assert!(row.evaluations > 0);
            assert!(
                row.stats.unique_variants <= row.stats.unique_points,
                "{}: variant dedup can only shrink",
                row.label
            );
        }
        // The exhaustive row sweeps dead OR-block parameters: the memo
        // cache must fire.
        assert!(rows[0].stats.hits() > 0, "{:?}", rows[0].stats);
        let json = to_json(&rows);
        assert!(json.contains("\"identical_best\": true"));
        assert!(json.ends_with("}\n"));
    }
}
