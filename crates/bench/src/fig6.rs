//! Fig. 6 harnesses: DGEMM core sweep and the six-stencil comparison.

use locus_baselines::{mkl_like_dgemm, PlutoLike};
use locus_core::LocusSystem;
use locus_corpus::{dgemm_program, stencil_program, Stencil};
use locus_search::BanditTuner;

use crate::{bench_machine, bench_machine_tiny};

/// The paper's Fig. 7 optimization program, verbatim apart from scaled
/// tile ranges (`2..512` on a 2048-point loop maps to `2..{max}` here).
pub fn fig7_locus_program(max_tile: i64) -> locus_lang::LocusProgram {
    let src = format!(
        r#"
Search {{
    buildcmd = "make clean; make";
    runcmd = "./matmul";
}}
CodeReg matmul {{
    RoseLocus.Interchange(order=[0, 2, 1]);
    tileI = poweroftwo(2..{max_tile});
    tileK = poweroftwo(2..{max_tile});
    tileJ = poweroftwo(2..{max_tile});
    Pips.Tiling(loop="0", factor=[tileI, tileK, tileJ]);
    tileI_2 = poweroftwo(2..tileI);
    tileK_2 = poweroftwo(2..tileK);
    tileJ_2 = poweroftwo(2..tileJ);
    Pips.Tiling(loop="0.0.0.0", factor=[tileI_2, tileK_2, tileJ_2]);
    {{
        Pragma.OMPFor(loop="0");
    }} OR {{
        Pragma.OMPFor(loop="0",
                      schedule=enum("static", "dynamic"),
                      chunk=integer(1..32));
    }}
}}
"#
    );
    locus_lang::parse(&src).expect("Fig. 7 program parses")
}

/// One row of the Fig. 6 (right) DGEMM plot.
#[derive(Debug, Clone)]
pub struct DgemmRow {
    /// Core count of this row.
    pub cores: usize,
    /// Locus speedup over the 1-core naive baseline.
    pub locus: f64,
    /// Pluto-like speedup over the same baseline.
    pub pluto: f64,
    /// MKL-like oracle speedup over the same baseline.
    pub mkl: f64,
    /// Search evaluations actually spent.
    pub evaluations: usize,
}

/// Result of the DGEMM sweep.
#[derive(Debug, Clone)]
pub struct DgemmResult {
    /// One row per core count.
    pub rows: Vec<DgemmRow>,
    /// Size of the Fig. 7 optimization space (the paper quotes
    /// 34,012,224 under OpenTuner's encoding).
    pub space_size: u128,
    /// Matrix dimension used.
    pub n: usize,
}

/// Runs the DGEMM core sweep: for each core count, Locus empirical
/// search (Fig. 7 program), Pluto with fixed tiles, and the MKL-like
/// oracle; speedups are over the single-core naive baseline, as in the
/// paper.
pub fn run_dgemm(
    n: usize,
    budget: usize,
    cores: &[usize],
    seed: u64,
    max_tile: i64,
) -> DgemmResult {
    let source = dgemm_program(n);
    let locus = fig7_locus_program(max_tile);

    let base = bench_machine(1)
        .run(&source, "kernel")
        .expect("baseline DGEMM runs");
    let mut rows = Vec::new();
    let mut space_size = 0u128;
    for (k, &c) in cores.iter().enumerate() {
        let system = LocusSystem::new(bench_machine(c));
        let mut search = BanditTuner::new(seed + k as u64);
        let result = system
            .tune(&source, &locus, &mut search, budget)
            .expect("DGEMM tuning runs");
        space_size = result.space_size;
        let locus_speedup = match &result.best {
            Some((_, _, m)) => base.time_ms / m.time_ms,
            None => 1.0,
        };

        let machine = bench_machine(c);
        let (pluto_program, _) = PlutoLike::default().optimize(&source, &machine);
        let pluto_m = machine
            .run(&pluto_program, "kernel")
            .expect("pluto variant runs");
        let mkl_program = mkl_like_dgemm(n, machine.config());
        let mkl_m = machine
            .run(&mkl_program, "kernel")
            .expect("mkl variant runs");

        rows.push(DgemmRow {
            cores: c,
            locus: locus_speedup,
            pluto: base.time_ms / pluto_m.time_ms,
            mkl: base.time_ms / mkl_m.time_ms,
            evaluations: result.outcome.evaluations,
        });
    }
    DgemmResult {
        rows,
        space_size,
        n,
    }
}

/// The paper's Fig. 9 stencil optimization program (Skewing-1 generic
/// tiling + vectorization pragmas), with the skew factor range scaled to
/// the simulated problem sizes.
pub fn fig9_locus_program(
    stencil: Stencil,
    min_skew: i64,
    max_skew: i64,
) -> locus_lang::LocusProgram {
    let id = stencil.region_id();
    let tmat = match stencil.dims() {
        1 => "[[skew1, 0], [0 - skew1, skew1]]",
        _ => "[[skew1, 0, 0], [0 - skew1, skew1, 0], [0 - skew1, 0, skew1]]",
    };
    let src = format!(
        r#"
Search {{
    buildcmd = "make clean; make";
    runcmd = "./{id}";
}}
CodeReg {id} {{
    skew1 = poweroftwo({min_skew}..{max_skew});
    tmat = {tmat};
    Pips.GenericTiling(loop="0", factor=tmat);
    Pragma.Ivdep(loop=innermost);
    Pragma.Vector(loop=innermost);
}}
"#
    );
    locus_lang::parse(&src).expect("Fig. 9 program parses")
}

/// One row of the Fig. 6 (left) stencil plot.
#[derive(Debug, Clone)]
pub struct StencilRow {
    /// The stencil kernel.
    pub stencil: Stencil,
    /// Speedup of the best Locus variant over the baseline.
    pub locus: f64,
    /// Speedup of the Pluto (-tile -pet) output over the baseline.
    pub pluto: f64,
    /// Search evaluations spent.
    pub evaluations: usize,
}

/// Runs the six-stencil comparison (sequential, like the paper's
/// stencil figure).
pub fn run_stencils(n: usize, t_steps: usize, budget: usize) -> Vec<StencilRow> {
    let machine = bench_machine_tiny(1);
    let mut rows = Vec::new();
    for stencil in Stencil::ALL {
        let source = stencil_program(stencil, n, t_steps);
        let locus = fig9_locus_program(stencil, 4, 32);
        let system = LocusSystem::new(machine.clone());
        let mut search = locus_search::ExhaustiveSearch::default();
        let result = system
            .tune(&source, &locus, &mut search, budget)
            .expect("stencil tuning runs");
        let locus_speedup = result.speedup();

        let (pluto_program, _) = PlutoLike::tiling_only().optimize(&source, &machine);
        let pluto_m = machine
            .run(&pluto_program, "kernel")
            .expect("pluto stencil runs");
        rows.push(StencilRow {
            stencil,
            locus: locus_speedup,
            pluto: result.baseline.time_ms / pluto_m.time_ms,
            evaluations: result.outcome.evaluations,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_program_space_matches_expected_encoding() {
        let source = dgemm_program(16);
        let locus = fig7_locus_program(512);
        let system = LocusSystem::new(bench_machine(1));
        let prepared = system.prepare(&source, &locus).unwrap();
        // 9^6 * 2 * 2 * 32 flattened (paper: 34,012,224 under OpenTuner).
        assert_eq!(prepared.space.size(), 68_024_448);
    }

    #[test]
    fn dgemm_sweep_produces_monotone_locus_column() {
        let result = run_dgemm(32, 8, &[1, 4], 3, 32);
        assert_eq!(result.rows.len(), 2);
        assert!(result.rows[0].locus >= 1.0);
        // More cores must not hurt the tuned variant.
        assert!(result.rows[1].locus >= result.rows[0].locus);
        assert!(result.rows[1].mkl > result.rows[0].mkl);
    }

    #[test]
    fn stencil_rows_cover_all_six() {
        let rows = run_stencils(24, 4, 4);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.locus > 0.0, "{:?}", row.stencil);
            assert!(row.pluto > 0.0, "{:?}", row.stencil);
        }
    }
}
