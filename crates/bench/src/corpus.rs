//! Cross-machine corpus sweep: every registry entry tuned on every
//! machine profile, cold search vs store transfer (`BENCH_corpus.json`).
//!
//! The experiment behind the headline number: tune an entry on a
//! *donor* machine once, then on every other profile compare
//!
//! * a **cold** search (fresh store for that machine digest) — pays
//!   `evaluations` simulator runs and reaches its best after
//!   `evals_to_best` of them; against
//! * a **transferred** recipe ([`locus_core::transfer_recipe`]) — one
//!   evaluation of the donor's best recipe, retrieved shape-matched
//!   from the shared store.
//!
//! The transfer is worthwhile exactly when its speedup lands near the
//! cold-search speedup at a fraction of the evaluations; triangular
//! PolyBench entries, whose restructurings are mostly pruned, show
//! where transfer degrades gracefully to the baseline.

use locus_core::{transfer_recipe, tune_across_machines, LocusSystem, MachineTuneResult};
use locus_corpus::{all_programs, CorpusEntry};
use locus_machine::{all_profiles, Machine, MachineProfile};
use locus_search::ExhaustiveSearch;
use locus_store::TuningStore;

/// One (entry, profile) cell of the sweep.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Registry entry name.
    pub entry: String,
    /// Kernel family (`dgemm` / `stencil` / `polybench`).
    pub family: String,
    /// Machine profile name.
    pub profile: String,
    /// The store key this machine's records file under.
    pub machine_digest: u64,
    /// Optimization-space size for this entry's recipe.
    pub space_size: u128,
    /// Evaluation budget of the cold search.
    pub budget: usize,
    /// Simulator runs the cold search actually performed.
    pub cold_evaluations: usize,
    /// Evaluation index at which the cold search last improved
    /// (evaluations-to-best; 0 when nothing beat the baseline).
    pub cold_evals_to_best: usize,
    /// Cold-search speedup over this machine's baseline.
    pub cold_speedup: f64,
    /// Whether this profile is the donor the transfer recipes come from.
    pub is_donor: bool,
    /// Whether the transferred recipe came from a stored session (vs
    /// the static fallback). Donor rows report `false` — nothing to
    /// transfer to yourself.
    pub transfer_from_store: bool,
    /// Speedup of the transferred recipe (one evaluation) over this
    /// machine's baseline. 1.0 on donor rows and failed transfers.
    pub transfer_speedup: f64,
}

fn evals_to_best(r: &MachineTuneResult) -> usize {
    r.result.outcome.history.last().map_or(0, |&(at, _)| at)
}

fn temp_store(tag: &str) -> TuningStore {
    let path = std::env::temp_dir().join(format!(
        "locus-bench-corpus-{tag}-{}.json",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    TuningStore::open(&path).expect("open tuning store")
}

fn drop_store(store: TuningStore) {
    let path = store.path().to_path_buf();
    drop(store);
    std::fs::remove_file(path).ok();
}

/// Sweeps `entries` over `profiles`: the first profile is the donor.
/// Returns one row per (entry, profile).
pub fn run_entries(
    entries: &[CorpusEntry],
    profiles: &[MachineProfile],
    budget: usize,
    threads: usize,
) -> Vec<CorpusRow> {
    assert!(profiles.len() >= 2, "need a donor and at least one target");
    let mut rows = Vec::new();
    for entry in entries {
        let locus = entry.locus_program();
        let template = LocusSystem::new(Machine::new(profiles[0].config.clone()));

        // Donor store: only the first profile's sessions, so transfers
        // to the other profiles genuinely cross machines.
        let mut donor_store = temp_store(&format!("donor-{}", entry.name));
        // Scratch store for the cold searches; distinct digests keep
        // the profiles cold with respect to each other.
        let mut cold_store = temp_store(&format!("cold-{}", entry.name));

        let donor_runs = tune_across_machines(
            &template,
            &profiles[..1],
            &entry.program,
            &locus,
            &mut |_| Box::new(ExhaustiveSearch::default()),
            budget,
            threads,
            &mut donor_store,
        )
        .unwrap_or_else(|e| panic!("{}: donor tuning failed: {e}", entry.name));

        let cold_runs = tune_across_machines(
            &template,
            profiles,
            &entry.program,
            &locus,
            &mut |_| Box::new(ExhaustiveSearch::default()),
            budget,
            threads,
            &mut cold_store,
        )
        .unwrap_or_else(|e| panic!("{}: cold tuning failed: {e}", entry.name));

        for (i, (profile, cold)) in profiles.iter().zip(&cold_runs).enumerate() {
            let is_donor = i == 0;
            let (transfer_from_store, transfer_speedup) = if is_donor {
                (false, 1.0)
            } else {
                let target = {
                    let mut s = template.clone();
                    s.machine = Machine::new(profile.config.clone());
                    s
                };
                let outcome = transfer_recipe(&target, &entry.program, entry.region, &donor_store)
                    .unwrap_or_else(|e| {
                        panic!("{}/{}: transfer failed: {e}", entry.name, profile.name)
                    });
                (outcome.from_store, outcome.speedup())
            };
            rows.push(CorpusRow {
                entry: entry.name.to_string(),
                family: entry.family.to_string(),
                profile: profile.name.to_string(),
                machine_digest: cold.machine_digest,
                space_size: cold.result.space_size,
                budget,
                cold_evaluations: cold.result.outcome.evaluations,
                cold_evals_to_best: evals_to_best(cold),
                cold_speedup: cold.result.speedup(),
                is_donor,
                transfer_from_store,
                transfer_speedup,
            });
        }
        let _ = donor_runs;
        drop_store(donor_store);
        drop_store(cold_store);
    }
    rows
}

/// The full sweep: every registry entry over every machine profile.
pub fn run_corpus(budget: usize, threads: usize) -> Vec<CorpusRow> {
    run_entries(&all_programs(), &all_profiles(), budget, threads)
}

/// The CI smoke: two entries (dgemm and one triangular PolyBench
/// kernel) over two profiles at a tiny budget — exercises the whole
/// fan-out/transfer path in seconds.
pub fn run_smoke(threads: usize) -> Vec<CorpusRow> {
    let entries: Vec<CorpusEntry> = all_programs()
        .into_iter()
        .filter(|e| e.name == "dgemm" || e.name == "poly-syrk")
        .collect();
    assert_eq!(entries.len(), 2, "smoke entries missing from the registry");
    let profiles = all_profiles();
    run_entries(&entries, &profiles[..2], 4, threads)
}

/// Renders the rows as a JSON document (hand-rolled; the workspace has
/// no serde).
pub fn to_json(rows: &[CorpusRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"corpus x machine-profile sweep: cold search vs store transfer\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"entry\": \"{}\",\n",
                "      \"family\": \"{}\",\n",
                "      \"profile\": \"{}\",\n",
                "      \"machine_digest\": {},\n",
                "      \"space_size\": {},\n",
                "      \"budget\": {},\n",
                "      \"cold_evaluations\": {},\n",
                "      \"cold_evals_to_best\": {},\n",
                "      \"cold_speedup\": {:.3},\n",
                "      \"is_donor\": {},\n",
                "      \"transfer_from_store\": {},\n",
                "      \"transfer_evaluations\": {},\n",
                "      \"transfer_speedup\": {:.3}\n",
                "    }}{}\n",
            ),
            r.entry,
            r.family,
            r.profile,
            r.machine_digest,
            r.space_size,
            r.budget,
            r.cold_evaluations,
            r.cold_evals_to_best,
            r.cold_speedup,
            r.is_donor,
            r.transfer_from_store,
            if r.is_donor { 0 } else { 1 },
            r.transfer_speedup,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_produces_transfer_rows() {
        let rows = run_smoke(2);
        // 2 entries x 2 profiles.
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().any(|r| r.is_donor));
        for r in &rows {
            assert!(r.cold_evaluations > 0, "{}/{}", r.entry, r.profile);
            assert!(r.cold_speedup >= 1.0);
            assert!(r.transfer_speedup >= 1.0);
            if !r.is_donor {
                assert!(
                    r.transfer_from_store,
                    "{}/{}: transfer fell back to the static suggestion",
                    r.entry, r.profile
                );
            }
        }
        let json = to_json(&rows);
        assert!(json.contains("\"transfer_evaluations\": 1"), "{json}");
        assert!(json.ends_with("}\n"));
    }
}
