//! Minimal timing harness for the `harness = false` benches.
//!
//! The workspace builds offline with no external dev-dependencies, so
//! criterion is out; this covers what the figure benches need — warm-up,
//! automatic iteration scaling, and a median over a few samples.

use std::time::{Duration, Instant};

/// Samples taken per benchmark after calibration.
const SAMPLES: usize = 5;
/// Minimum wall-clock per sample; iteration count doubles until met.
const MIN_SAMPLE: Duration = Duration::from_millis(20);

/// Times `f`, printing the median per-iteration wall-clock.
pub fn bench_function<T>(name: &str, mut f: impl FnMut() -> T) {
    std::hint::black_box(f()); // warm up caches and lazy state
    let mut iters: u64 = 1;
    let per_iter = loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_SAMPLE || iters >= 1 << 20 {
            let mut samples = vec![elapsed.as_secs_f64() / iters as f64];
            for _ in 1..SAMPLES {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                samples.push(start.elapsed().as_secs_f64() / iters as f64);
            }
            samples.sort_by(f64::total_cmp);
            break samples[samples.len() / 2];
        }
        iters = iters.saturating_mul(2);
    };
    println!(
        "{name:<48} {:>12}/iter   ({iters} iters x {SAMPLES} samples)",
        format_seconds(per_iter)
    );
}

/// Renders a duration in the largest unit that keeps 3 significant
/// digits readable.
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_pick_sane_units() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(0.0042), "4.200 ms");
        assert_eq!(format_seconds(0.0000042), "4.200 us");
        assert_eq!(format_seconds(0.0000000042), "4.2 ns");
    }
}
