//! Fig. 12 harness: Kripke's five kernels, Locus-generated versus
//! hand-optimized, across the six data layouts.

use locus_core::LocusSystem;
use locus_corpus::kripke::{layout_loop_order, placeholder_index};
use locus_corpus::{
    kripke_hand_optimized, kripke_skeleton, kripke_snippets, KripkeKernel, LAYOUTS,
};
use locus_space::{ParamValue, Point};

use crate::bench_machine;

/// Builds the Fig. 11-style Locus program for one kernel: the layout
/// `enum`, per-layout `looporder` table, `Altdesc` splice of the address
/// snippet, then Interchange → LICM → ScalarRepl → OMPFor.
pub fn fig11_locus_program(kernel: KripkeKernel) -> locus_lang::LocusProgram {
    let name = kernel.name();
    let placeholder = placeholder_index(kernel);
    let mut branches = String::new();
    for (i, layout) in LAYOUTS.iter().enumerate() {
        let order = layout_loop_order(kernel, layout);
        let order_text = order
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let kw = if i == 0 { "if" } else { "} elif" };
        branches.push_str(&format!(
            "    {kw} (datalayout == \"{layout}\") {{\n        looporder = [{order_text}];\n"
        ));
    }
    branches.push_str("    }\n");
    let src = format!(
        r#"
datalayout = enum("DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD");
CodeReg {name} {{
{branches}
    sourcepath = "{name}_" + datalayout + ".txt";
    BuiltIn.Altdesc(stmt="{placeholder}", source=sourcepath);
    RoseLocus.Interchange(order=looporder);
    RoseLocus.LICM();
    RoseLocus.ScalarRepl();
    Pragma.OMPFor(loop="0");
}}
"#
    );
    locus_lang::parse(&src).expect("Fig. 11 program parses")
}

/// One bar pair of Fig. 12.
#[derive(Debug, Clone)]
pub struct KripkeRow {
    /// The kernel measured.
    pub kernel: KripkeKernel,
    /// The data layout measured.
    pub layout: &'static str,
    /// Simulated time of the hand-optimized version (ms).
    pub hand_ms: f64,
    /// Simulated time of the Locus-generated version (ms).
    pub locus_ms: f64,
    /// Whether both versions computed identical results.
    pub results_match: bool,
}

impl KripkeRow {
    /// Locus time relative to hand-optimized (1.0 = identical).
    pub fn ratio(&self) -> f64 {
        self.locus_ms / self.hand_ms
    }
}

/// Runs the full Fig. 12 matrix: 5 kernels x 6 layouts.
///
/// As in the paper, the Kripke transformations are forced: the mix of
/// symbolic addresses defeats the dependence analysis, and the expert
/// knows the interchanges are legal — so the system runs with legality
/// checks off (Sec. II's "a programmer might feel interested in
/// enforcing an optimization when she/he knows it is legal").
pub fn run_kripke(cores: usize) -> Vec<KripkeRow> {
    let machine = bench_machine(cores);
    let mut rows = Vec::new();
    for kernel in KripkeKernel::ALL {
        let skeleton = kripke_skeleton(kernel);
        let locus = fig11_locus_program(kernel);
        let mut system = LocusSystem::new(machine.clone());
        system.snippets = kripke_snippets(kernel);
        system.check_legality = false;
        system.verify_results = false; // the raw skeleton cannot run
        let prepared = system
            .prepare(&skeleton, &locus)
            .expect("Kripke program prepares");
        assert_eq!(prepared.space.size(), 6, "one parameter: the layout");

        for (i, layout) in LAYOUTS.iter().enumerate() {
            let mut point = Point::new();
            point.set("datalayout", ParamValue::Choice(i));
            let variant = system
                .build_variant(&skeleton, &prepared, &point)
                .unwrap_or_else(|e| panic!("{kernel}/{layout}: {e:?}"));
            let locus_m = machine
                .run(&variant, "kernel")
                .unwrap_or_else(|e| panic!("{kernel}/{layout}: {e}"));

            let hand = kripke_hand_optimized(kernel, layout);
            let hand_m = machine
                .run(&hand, "kernel")
                .unwrap_or_else(|e| panic!("hand {kernel}/{layout}: {e}"));

            rows.push(KripkeRow {
                kernel,
                layout,
                hand_ms: hand_m.time_ms,
                locus_ms: locus_m.time_ms,
                results_match: locus_m.checksum == hand_m.checksum,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_program_has_one_search_parameter() {
        let p = fig11_locus_program(KripkeKernel::Scattering);
        assert_eq!(p.serial_count, 1);
        assert_eq!(p.codereg_names(), vec!["Scattering"]);
    }

    #[test]
    fn locus_matches_hand_optimized_for_scattering() {
        let machine = bench_machine(1);
        let kernel = KripkeKernel::Scattering;
        let skeleton = kripke_skeleton(kernel);
        let locus = fig11_locus_program(kernel);
        let mut system = LocusSystem::new(machine.clone());
        system.snippets = kripke_snippets(kernel);
        system.check_legality = false;
        system.verify_results = false;
        let prepared = system.prepare(&skeleton, &locus).unwrap();
        for (i, layout) in LAYOUTS.iter().enumerate() {
            let mut point = Point::new();
            point.set("datalayout", ParamValue::Choice(i));
            let variant = system.build_variant(&skeleton, &prepared, &point).unwrap();
            let locus_m = machine.run(&variant, "kernel").unwrap();
            let hand_m = machine
                .run(&kripke_hand_optimized(kernel, layout), "kernel")
                .unwrap();
            assert_eq!(
                locus_m.checksum,
                hand_m.checksum,
                "{layout}: Locus and hand-optimized must agree\n{}",
                locus_srcir::print_program(&variant)
            );
            let ratio = locus_m.time_ms / hand_m.time_ms;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{layout}: ratio {ratio} out of range"
            );
        }
    }
}
