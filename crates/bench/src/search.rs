//! Search-module shoot-out over the corpus registry
//! (`BENCH_search.json`): evaluations-to-best-known per module, per
//! entry, aggregated per family.
//!
//! Every module tunes every registry entry with the *same* budget and a
//! shared [`MemoCache`], so a variant is simulated once no matter how
//! many modules propose it and every module sees bit-identical
//! objectives. The **best-known** value of an entry is the best
//! objective any module reached within the sweep; a module's score is
//! the evaluation index at which its improvement history first reached
//! that value (lower is better), with a `2 x budget` penalty when it
//! never got there. Family aggregates are plain means of that score.
//!
//! The [`check`] acceptance bar (run by `bench_search --check` in CI):
//!
//! 1. at least one family where MCTS or the trace sampler beats *both*
//!    the bandit and the annealer on evaluations-to-best-known; and
//! 2. no family where the default portfolio (now including MCTS and the
//!    sampler) regresses against the pre-extension composition
//!    (bandit + anneal + random) beyond a 10% + 2 evaluations
//!    allowance.
//!
//! Everything is seeded and the simulator is deterministic, so the
//! committed `BENCH_search.json` regenerates bit-for-bit.

use std::collections::BTreeMap;

use locus_core::{LocusSystem, MemoCache};
use locus_corpus::{all_programs, CorpusEntry};
use locus_search::{
    AnnealTuner, BanditTuner, MctsTuner, Member, PortfolioSearch, SearchModule, TraceSampler,
};

use crate::bench_machine_tiny;

/// Fixed sweep seed: one seed for every module so nobody gets a lucky
/// draw the others were denied.
const SEED: u64 = 0xbe7c;

/// Penalty multiplier for a run that never reached the best-known
/// value: scored as `budget * PENALTY`.
const PENALTY: usize = 2;

/// The competitors, in report order. `portfolio-pre` is the portfolio
/// frozen at its pre-MCTS member list — the regression reference.
pub const MODULES: [&str; 6] = [
    "bandit",
    "anneal",
    "mcts",
    "sampler",
    "portfolio",
    "portfolio-pre",
];

fn make_module(name: &str) -> Box<dyn SearchModule> {
    match name {
        "bandit" => Box::new(BanditTuner::new(SEED)),
        "anneal" => Box::new(AnnealTuner::new(SEED)),
        "mcts" => Box::new(MctsTuner::new(SEED)),
        "sampler" => Box::new(TraceSampler::new(SEED)),
        "portfolio" => Box::new(PortfolioSearch::new(SEED)),
        "portfolio-pre" => Box::new(PortfolioSearch::new(SEED).with_members(vec![
            Member::Bandit,
            Member::Anneal,
            Member::Random,
        ])),
        other => panic!("unknown bench module {other}"),
    }
}

/// One (entry, module) run of the shoot-out.
#[derive(Debug, Clone)]
pub struct SearchRow {
    /// Registry entry name.
    pub entry: String,
    /// Kernel family (`dgemm` / `stencil` / `polybench`).
    pub family: String,
    /// Competing module name.
    pub module: String,
    /// Optimization-space size of the entry.
    pub space_size: u128,
    /// Evaluation budget every module got.
    pub budget: usize,
    /// Distinct evaluations the module actually spent.
    pub evaluations: usize,
    /// Best objective (simulated ms) this module reached.
    pub best_value: f64,
    /// Best objective any module reached on this entry.
    pub best_known: f64,
    /// Whether this module reached the best-known value.
    pub reached_best: bool,
    /// Evaluation index at which it first reached best-known
    /// (`budget * 2` penalty when it never did).
    pub evals_to_best_known: usize,
}

/// Mean evaluations-to-best-known per (family, module).
#[derive(Debug, Clone)]
pub struct FamilyAggregate {
    /// Kernel family name.
    pub family: String,
    /// Module name.
    pub module: String,
    /// Entries aggregated.
    pub entries: usize,
    /// Mean evaluations-to-best-known (penalties included).
    pub mean_evals_to_best: f64,
    /// How many entries this module reached best-known on.
    pub reached: usize,
}

/// Runs every module over `entries` and scores them. One shared memo
/// cache per entry keeps objectives bit-identical across modules and
/// simulates each variant once.
pub fn run_entries(entries: &[CorpusEntry], budget: usize, threads: usize) -> Vec<SearchRow> {
    let system = LocusSystem::new(bench_machine_tiny(2));
    let mut rows = Vec::new();
    for entry in entries {
        let locus = entry.locus_program();
        let cache = MemoCache::new();
        let mut runs = Vec::new();
        for module in MODULES {
            let mut search = make_module(module);
            let result = system
                .tune_parallel_shared(
                    &entry.program,
                    &locus,
                    search.as_mut(),
                    budget,
                    threads,
                    &cache,
                )
                .unwrap_or_else(|e| panic!("{}/{module}: tuning failed: {e}", entry.name));
            runs.push((module, result));
        }
        let best_known = runs
            .iter()
            .filter_map(|(_, r)| r.outcome.best.as_ref().map(|(_, v)| *v))
            .fold(f64::INFINITY, f64::min);
        for (module, result) in runs {
            // Objectives are cache-shared, so "reached best-known" is
            // exact equality of the measured value.
            let reached_at = result
                .outcome
                .history
                .iter()
                .find(|(_, v)| *v <= best_known)
                .map(|(at, _)| *at);
            rows.push(SearchRow {
                entry: entry.name.to_string(),
                family: entry.family.to_string(),
                module: module.to_string(),
                space_size: result.space_size,
                budget,
                evaluations: result.outcome.evaluations,
                best_value: result
                    .outcome
                    .best
                    .as_ref()
                    .map_or(f64::INFINITY, |(_, v)| *v),
                best_known,
                reached_best: reached_at.is_some(),
                evals_to_best_known: reached_at.unwrap_or(budget * PENALTY),
            });
        }
    }
    rows
}

/// The full shoot-out: every registry entry.
pub fn run_search(budget: usize, threads: usize) -> Vec<SearchRow> {
    run_entries(&all_programs(), budget, threads)
}

/// Family x module aggregates from a set of rows.
pub fn aggregate(rows: &[SearchRow]) -> Vec<FamilyAggregate> {
    let mut groups: BTreeMap<(String, String), Vec<&SearchRow>> = BTreeMap::new();
    for row in rows {
        groups
            .entry((row.family.clone(), row.module.clone()))
            .or_default()
            .push(row);
    }
    groups
        .into_iter()
        .map(|((family, module), rows)| FamilyAggregate {
            family,
            module,
            entries: rows.len(),
            mean_evals_to_best: rows
                .iter()
                .map(|r| r.evals_to_best_known as f64)
                .sum::<f64>()
                / rows.len() as f64,
            reached: rows.iter().filter(|r| r.reached_best).count(),
        })
        .collect()
}

/// The acceptance bar (see the module docs). Returns the list of
/// violated conditions; empty means pass.
pub fn check(rows: &[SearchRow]) -> Vec<String> {
    let aggregates = aggregate(rows);
    let score = |family: &str, module: &str| -> Option<f64> {
        aggregates
            .iter()
            .find(|a| a.family == family && a.module == module)
            .map(|a| a.mean_evals_to_best)
    };
    let families: Vec<String> = {
        let mut f: Vec<String> = aggregates.iter().map(|a| a.family.clone()).collect();
        f.dedup();
        f
    };
    let mut violations = Vec::new();

    let mut new_module_wins = false;
    for family in &families {
        let (Some(bandit), Some(anneal)) = (score(family, "bandit"), score(family, "anneal"))
        else {
            continue;
        };
        for module in ["mcts", "sampler"] {
            if let Some(s) = score(family, module) {
                if s < bandit && s < anneal {
                    new_module_wins = true;
                }
            }
        }
    }
    if !new_module_wins {
        violations.push(
            "no family where mcts or sampler beats both bandit and anneal \
             on evaluations-to-best-known"
                .to_string(),
        );
    }

    for family in &families {
        let (Some(now), Some(pre)) = (score(family, "portfolio"), score(family, "portfolio-pre"))
        else {
            continue;
        };
        let allowance = pre * 0.10 + 2.0;
        if now > pre + allowance {
            violations.push(format!(
                "family {family}: extended portfolio ({now:.1}) regresses \
                 vs pre-extension composition ({pre:.1})"
            ));
        }
    }
    violations
}

/// Renders rows and aggregates as a JSON document (hand-rolled; the
/// workspace has no serde).
pub fn to_json(rows: &[SearchRow]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"search-module shoot-out: evaluations-to-best-known \
         per corpus entry\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"entry\": \"{}\",\n",
                "      \"family\": \"{}\",\n",
                "      \"module\": \"{}\",\n",
                "      \"space_size\": {},\n",
                "      \"budget\": {},\n",
                "      \"evaluations\": {},\n",
                "      \"best_value_ms\": {:.6},\n",
                "      \"best_known_ms\": {:.6},\n",
                "      \"reached_best\": {},\n",
                "      \"evals_to_best_known\": {}\n",
                "    }}{}\n",
            ),
            r.entry,
            r.family,
            r.module,
            r.space_size,
            r.budget,
            r.evaluations,
            r.best_value,
            r.best_known,
            r.reached_best,
            r.evals_to_best_known,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"families\": [\n");
    let aggregates = aggregate(rows);
    for (i, a) in aggregates.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{ \"family\": \"{}\", \"module\": \"{}\", \"entries\": {}, ",
                "\"mean_evals_to_best\": {:.3}, \"reached\": {} }}{}\n",
            ),
            a.family,
            a.module,
            a.entries,
            a.mean_evals_to_best,
            a.reached,
            if i + 1 == aggregates.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shootout_scores_every_module() {
        let entries: Vec<CorpusEntry> = all_programs()
            .into_iter()
            .filter(|e| e.name == "dgemm")
            .collect();
        let rows = run_entries(&entries, 12, 2);
        assert_eq!(rows.len(), MODULES.len());
        let best_known = rows[0].best_known;
        assert!(best_known.is_finite());
        for r in &rows {
            assert_eq!(r.best_known, best_known, "{}: best-known differs", r.module);
            assert!(r.evaluations <= 12, "{}: overspent", r.module);
            if r.reached_best {
                assert!(r.evals_to_best_known <= 12);
            } else {
                assert_eq!(
                    r.evals_to_best_known, 24,
                    "{}: penalty misapplied",
                    r.module
                );
            }
        }
        // Somebody reached the best-known value by construction.
        assert!(rows.iter().any(|r| r.reached_best));
        let json = to_json(&rows);
        assert!(json.contains("\"families\""));
        assert!(json.ends_with("}\n"));
    }
}
