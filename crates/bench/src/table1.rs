//! Table I + Sec. V-D harness: the generic Fig. 13 optimization program
//! over the synthetic extraction corpus, compared against the Pluto-like
//! baseline.

use locus_baselines::{PlutoLike, PlutoOutcome};
use locus_core::LocusSystem;
use locus_corpus::{generate_corpus, CorpusNest, TABLE1_SUITES};
use locus_search::BanditTuner;

use crate::{bench_machine, geomean};

/// The paper's Fig. 13 program, verbatim (37 lines in the paper).
pub const FIG13_PROGRAM: &str = r#"
Search {
    buildcmd = "make clean; make LOOPEXTRACTED";
    runcmd = "LOOPEXTRACTED ../input 10";
}
CodeReg scop {
    perfect = BuiltIn.IsPerfectLoopNest();
    depth = BuiltIn.LoopNestDepth();
    if (RoseLocus.IsDepAvailable()) {
        if (perfect && depth > 1) {
            permorder = permutation(seq(0, depth));
            RoseLocus.Interchange(order=permorder);
        }
        {
            if (perfect) {
                indexT1 = integer(1..depth);
                T1fac = poweroftwo(2..32);
                RoseLocus.Tiling(loop=indexT1, factor=T1fac);
            }
        } OR {
            if (depth > 1) {
                indexUAJ = integer(1..depth-1);
                UAJfac = poweroftwo(2..4);
                RoseLocus.UnrollAndJam(loop=indexUAJ, factor=UAJfac);
            }
        } OR {
            None; # No tiling, interchange, or unroll and jam.
        }
        innerloops = BuiltIn.ListInnerLoops();
        *RoseLocus.Distribute(loop=innerloops);
    }
    innerloops = BuiltIn.ListInnerLoops();
    RoseLocus.Unroll(loop=innerloops, factor=poweroftwo(2..8));
}
"#;

/// Per-nest result.
#[derive(Debug, Clone)]
pub struct NestResult {
    /// Suite the nest is attributed to.
    pub suite: &'static str,
    /// Nest name within the corpus.
    pub name: String,
    /// Locus shipped-result speedup.
    pub locus_speedup: f64,
    /// Whether Locus produced any valid variant.
    pub locus_transformed: bool,
    /// Pluto-like speedup (1.0 when untransformed).
    pub pluto_speedup: f64,
    /// Whether the Pluto model restructured the nest.
    pub pluto_transformed: bool,
    /// Search evaluations spent on the nest.
    pub variants_assessed: usize,
}

/// Aggregate statistics matching the Sec. V-D narrative.
#[derive(Debug, Clone, Default)]
pub struct Table1Summary {
    /// Nests in this run.
    pub nests: usize,
    /// Total variants assessed.
    pub variants_assessed: usize,
    /// Nests Locus transformed (paper: 822 / 856).
    pub locus_transformed: usize,
    /// Nests Pluto transformed (paper: 397 / 856).
    pub pluto_transformed: usize,
    /// Mean (geometric) Locus speedup (paper: 1.15).
    pub locus_mean_speedup: f64,
    /// Mean (geometric) Pluto speedup (paper: 1.05).
    pub pluto_mean_speedup: f64,
    /// Nests Locus sped up by > 1.05 (paper: 360).
    pub locus_gt_105: usize,
    /// Nests Pluto sped up by > 1.05 (paper: 170).
    pub pluto_gt_105: usize,
    /// Nests both tools sped up by > 1.05 (paper: 170).
    pub both_gt_105: usize,
    /// Of those, how many Locus won (paper: 129).
    pub locus_wins_head_to_head: usize,
}

/// Full harness output.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// `(suite, nests run, variants assessed)` triples.
    pub per_suite: Vec<(String, usize, usize)>,
    /// Per-nest details.
    pub nests: Vec<NestResult>,
    /// Aggregate statistics.
    pub summary: Table1Summary,
}

/// Runs the Table I experiment over a corpus capped at `per_suite_cap`
/// nests per suite with `budget` variants per nest (the paper used the
/// full 856 nests and 500 variants; the defaults in the harness binary
/// scale this to seconds).
pub fn run_table1(seed: u64, per_suite_cap: usize, budget: usize) -> Table1Result {
    let corpus = generate_corpus(seed, per_suite_cap);
    let machine = bench_machine(1);
    let system = LocusSystem::new(machine.clone());
    let locus = locus_lang::parse(FIG13_PROGRAM).expect("Fig. 13 parses");
    let pluto = PlutoLike::gong_flags();

    let mut nests = Vec::new();
    for (k, nest) in corpus.iter().enumerate() {
        let CorpusNest { program, .. } = nest;
        let mut search = BanditTuner::new(seed ^ (k as u64).wrapping_mul(0x9e37_79b9));
        let (locus_speedup, locus_transformed, evals) =
            match system.tune(program, &locus, &mut search, budget) {
                Ok(result) => (
                    result.speedup(),
                    result.best.is_some(),
                    result.outcome.evaluations,
                ),
                Err(_) => (1.0, false, 0),
            };

        let (pluto_program, outcomes) = pluto.optimize(program, &machine);
        let pluto_transformed = outcomes.contains(&PlutoOutcome::Transformed);
        let pluto_speedup = if pluto_transformed {
            let base = machine.run(program, "kernel").expect("baseline runs");
            let m = machine.run(&pluto_program, "kernel").expect("pluto runs");
            base.time_ms / m.time_ms
        } else {
            1.0
        };

        nests.push(NestResult {
            suite: nest.suite,
            name: nest.name.clone(),
            locus_speedup,
            locus_transformed,
            pluto_speedup,
            pluto_transformed,
            variants_assessed: evals,
        });
    }

    let mut per_suite = Vec::new();
    for suite in TABLE1_SUITES {
        let mine: Vec<&NestResult> = nests.iter().filter(|n| n.suite == suite.name).collect();
        if !mine.is_empty() {
            per_suite.push((
                suite.name.to_string(),
                mine.len(),
                mine.iter().map(|n| n.variants_assessed).sum(),
            ));
        }
    }

    let locus_speedups: Vec<f64> = nests.iter().map(|n| n.locus_speedup).collect();
    let pluto_speedups: Vec<f64> = nests.iter().map(|n| n.pluto_speedup).collect();
    let both: Vec<&NestResult> = nests
        .iter()
        .filter(|n| n.locus_speedup > 1.05 && n.pluto_speedup > 1.05)
        .collect();
    let summary = Table1Summary {
        nests: nests.len(),
        variants_assessed: nests.iter().map(|n| n.variants_assessed).sum(),
        locus_transformed: nests.iter().filter(|n| n.locus_transformed).count(),
        pluto_transformed: nests.iter().filter(|n| n.pluto_transformed).count(),
        locus_mean_speedup: geomean(&locus_speedups),
        pluto_mean_speedup: geomean(&pluto_speedups),
        locus_gt_105: nests.iter().filter(|n| n.locus_speedup > 1.05).count(),
        pluto_gt_105: nests.iter().filter(|n| n.pluto_speedup > 1.05).count(),
        both_gt_105: both.len(),
        locus_wins_head_to_head: both
            .iter()
            .filter(|n| n.locus_speedup > n.pluto_speedup)
            .count(),
    };
    Table1Result {
        per_suite,
        nests,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_program_parses_and_prepares_everywhere() {
        let locus = locus_lang::parse(FIG13_PROGRAM).unwrap();
        let system = LocusSystem::new(bench_machine(1));
        for nest in generate_corpus(5, 1) {
            let prepared = system
                .prepare(&nest.program, &locus)
                .unwrap_or_else(|e| panic!("{}: {e}", nest.name));
            assert!(prepared.space.size() >= 1, "{}", nest.name);
        }
    }

    #[test]
    fn small_run_reproduces_the_papers_shape() {
        let result = run_table1(17, 2, 6);
        let s = &result.summary;
        assert!(s.nests >= 30);
        // Locus transforms more nests than the polyhedral baseline.
        assert!(
            s.locus_transformed > s.pluto_transformed,
            "locus {} vs pluto {}",
            s.locus_transformed,
            s.pluto_transformed
        );
        assert!(s.locus_mean_speedup >= 1.0);
    }
}
