//! PolyBench-style kernels: triangular and imperfect loop nests,
//! data-dependent loop bounds and guarded updates.
//!
//! The paper's extraction corpus (Table I) and the PolyBench suite both
//! stress exactly the shapes our original ~10 kernel families avoided:
//! factorizations whose inner trip counts depend on the outer iterator
//! (Cholesky, LU), triangular matrix products (TRMM, SYRK), multi-stage
//! statistics kernels with imperfect nests (correlation, covariance), a
//! sparse ELL-format SpMV whose inner bound is *data*-dependent
//! (`j < rowlen[i]`) with an indirect gather, and a masked stencil whose
//! update sits behind a value guard. Every kernel is a full
//! `locus_srcir` program with a `kernel()` entry and a `#pragma @Locus`
//! region; initialization preludes keep the arithmetic well-conditioned
//! (positive-definite inputs for the factorizations) so no variant ever
//! produces a NaN/Inf checksum.

use locus_srcir::ast::Program;
use locus_srcir::parse_program;

/// The PolyBench-style kernel families.
#[allow(missing_docs)] // variants are the standard kernel names
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolyKernel {
    Cholesky,
    Lu,
    Trmm,
    Syrk,
    Correlation,
    Covariance,
    SpmvEll,
    GuardedStencil,
}

impl PolyKernel {
    /// All eight kernels, factorizations first.
    pub const ALL: [PolyKernel; 8] = [
        PolyKernel::Cholesky,
        PolyKernel::Lu,
        PolyKernel::Trmm,
        PolyKernel::Syrk,
        PolyKernel::Correlation,
        PolyKernel::Covariance,
        PolyKernel::SpmvEll,
        PolyKernel::GuardedStencil,
    ];

    /// The region identifier used in the generated source.
    pub fn region_id(self) -> &'static str {
        match self {
            PolyKernel::Cholesky => "cholesky",
            PolyKernel::Lu => "lu",
            PolyKernel::Trmm => "trmm",
            PolyKernel::Syrk => "syrk",
            PolyKernel::Correlation => "correlation",
            PolyKernel::Covariance => "covariance",
            PolyKernel::SpmvEll => "spmv",
            PolyKernel::GuardedStencil => "guarded",
        }
    }

    /// Whether the annotated region is a perfect nest (every level holds
    /// exactly one loop until the body).
    pub fn perfect(self) -> bool {
        matches!(
            self,
            PolyKernel::Syrk | PolyKernel::SpmvEll | PolyKernel::GuardedStencil
        )
    }

    /// Whether the region's iteration space is rectangular (no loop
    /// bound references an enclosing loop variable or array element).
    pub fn rectangular(self) -> bool {
        matches!(self, PolyKernel::GuardedStencil)
    }
}

impl std::fmt::Display for PolyKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PolyKernel::Cholesky => "Cholesky",
            PolyKernel::Lu => "LU",
            PolyKernel::Trmm => "TRMM",
            PolyKernel::Syrk => "SYRK",
            PolyKernel::Correlation => "Correlation",
            PolyKernel::Covariance => "Covariance",
            PolyKernel::SpmvEll => "SpMV (ELL)",
            PolyKernel::GuardedStencil => "Guarded stencil",
        };
        write!(f, "{name}")
    }
}

/// Builds one PolyBench-style kernel over an `n × n` problem (the
/// statistics kernels use `n` observations of `n` variables; SpMV uses
/// `n` rows).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn polybench_program(kernel: PolyKernel, n: usize) -> Program {
    assert!(n >= 2, "polybench sizes must be at least 2");
    let id = kernel.region_id();
    let nf = n as f64;
    let src = match kernel {
        // A = S·Sᵀ + n·I is symmetric positive definite, so every pivot
        // is >= n and sqrt() always sees a positive argument.
        PolyKernel::Cholesky => format!(
            r#"
double A[{n}][{n}];
double S[{n}][{n}];
void kernel() {{
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j < {n}; j++)
            A[i][j] = 0.0;
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j < {n}; j++)
            for (int k = 0; k < {n}; k++)
                A[i][j] = A[i][j] + 0.01 * S[i][k] * S[j][k];
    for (int i = 0; i < {n}; i++)
        A[i][i] = A[i][i] + {nf:.1};
    #pragma @Locus loop={id}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < i; j++) {{
            for (int k = 0; k < j; k++)
                A[i][j] = A[i][j] - A[i][k] * A[j][k];
            A[i][j] = A[i][j] / A[j][j];
        }}
        for (int k = 0; k < i; k++)
            A[i][i] = A[i][i] - A[i][k] * A[i][k];
        A[i][i] = sqrt(A[i][i]);
    }}
}}
"#
        ),
        // Same positive-definite preconditioning: an SPD matrix has an
        // LU factorization with strictly positive pivots.
        PolyKernel::Lu => format!(
            r#"
double A[{n}][{n}];
double S[{n}][{n}];
void kernel() {{
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j < {n}; j++)
            A[i][j] = 0.0;
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j < {n}; j++)
            for (int k = 0; k < {n}; k++)
                A[i][j] = A[i][j] + 0.01 * S[i][k] * S[j][k];
    for (int i = 0; i < {n}; i++)
        A[i][i] = A[i][i] + {nf:.1};
    #pragma @Locus loop={id}
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < i; j++) {{
            for (int k = 0; k < j; k++)
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
            A[i][j] = A[i][j] / A[j][j];
        }}
        for (int j = i; j < {n}; j++)
            for (int k = 0; k < i; k++)
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }}
}}
"#
        ),
        // B := alpha · Aᵀ · B with A lower-triangular: the k loop starts
        // at i + 1, so the nest is triangular via a *lower* bound.
        PolyKernel::Trmm => format!(
            r#"
double A[{n}][{n}];
double B[{n}][{n}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j < {n}; j++) {{
            for (int k = i + 1; k < {n}; k++)
                B[i][j] = B[i][j] + A[k][i] * B[k][j];
            B[i][j] = 1.5 * B[i][j];
        }}
}}
"#
        ),
        // C := C + A·Aᵀ, lower triangle only: a *perfect* nest whose
        // middle bound references the outer iterator (`j <= i`).
        PolyKernel::Syrk => format!(
            r#"
double A[{n}][{n}];
double C[{n}][{n}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j <= i; j++)
            for (int k = 0; k < {n}; k++)
                C[i][j] = C[i][j] + A[i][k] * A[j][k];
}}
"#
        ),
        // Means and stddevs as untagged preludes; the tagged region is
        // the triangular correlation nest. The deterministic array fill
        // gives every column nonzero variance, so the stddev divisions
        // are well-defined.
        PolyKernel::Correlation => format!(
            r#"
double data[{n}][{n}];
double mean[{n}];
double stddev[{n}];
double corr[{n}][{n}];
void kernel() {{
    for (int j = 0; j < {n}; j++) {{
        mean[j] = 0.0;
        for (int k = 0; k < {n}; k++)
            mean[j] = mean[j] + data[k][j];
        mean[j] = mean[j] / {nf:.1};
    }}
    for (int j = 0; j < {n}; j++) {{
        stddev[j] = 0.0;
        for (int k = 0; k < {n}; k++)
            stddev[j] = stddev[j] + (data[k][j] - mean[j]) * (data[k][j] - mean[j]);
        stddev[j] = sqrt(stddev[j] / {nf:.1});
        if (stddev[j] <= 0.1)
            stddev[j] = 1.0;
    }}
    #pragma @Locus loop={id}
    for (int i = 0; i < {n} - 1; i++) {{
        corr[i][i] = 1.0;
        for (int j = i + 1; j < {n}; j++) {{
            corr[i][j] = 0.0;
            for (int k = 0; k < {n}; k++)
                corr[i][j] = corr[i][j] + (data[k][i] - mean[i]) * (data[k][j] - mean[j]);
            corr[i][j] = corr[i][j] / ({nf:.1} * stddev[i] * stddev[j]);
            corr[j][i] = corr[i][j];
        }}
    }}
}}
"#
        ),
        PolyKernel::Covariance => format!(
            r#"
double data[{n}][{n}];
double mean[{n}];
double cov[{n}][{n}];
void kernel() {{
    for (int j = 0; j < {n}; j++) {{
        mean[j] = 0.0;
        for (int k = 0; k < {n}; k++)
            mean[j] = mean[j] + data[k][j];
        mean[j] = mean[j] / {nf:.1};
    }}
    #pragma @Locus loop={id}
    for (int i = 0; i < {n}; i++)
        for (int j = i; j < {n}; j++) {{
            cov[i][j] = 0.0;
            for (int k = 0; k < {n}; k++)
                cov[i][j] = cov[i][j] + (data[k][i] - mean[i]) * (data[k][j] - mean[j]);
            cov[i][j] = cov[i][j] / ({nf:.1} - 1.0);
            cov[j][i] = cov[i][j];
        }}
}}
"#
        ),
        // ELL-format sparse matrix-vector product: the inner trip count
        // is read from `rowlen[i]` at run time and the gather goes
        // through `colidx`. The deterministic integer fill keeps every
        // rowlen in 0..13 and every colidx in 0..13, inside the 16-wide
        // storage. `n` scales the row count.
        PolyKernel::SpmvEll => format!(
            r#"
double val[{n}][16];
int colidx[{n}][16];
int rowlen[{n}];
double x[16];
double y[{n}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int i = 0; i < {n}; i++)
        for (int j = 0; j < rowlen[i]; j++)
            y[i] = y[i] + val[i][j] * x[colidx[i][j]];
}}
"#
        ),
        // Rectangular perfect nest, but the update is value-guarded, so
        // the region body is a conditional rather than an assignment.
        PolyKernel::GuardedStencil => format!(
            r#"
double A[{n}][{n}];
double B[{n}][{n}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int i = 1; i < {n} - 1; i++)
        for (int j = 1; j < {n} - 1; j++) {{
            if (A[i][j] > 12.0)
                B[i][j] = 0.25 * (A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]);
            else
                B[i][j] = A[i][j];
        }}
}}
"#
        ),
    };
    parse_program(&src).expect("generated polybench source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::{Machine, MachineConfig};
    use locus_srcir::region::{extract_region, find_regions};

    #[test]
    fn all_kernels_build_and_run() {
        let machine = Machine::new(MachineConfig::scaled_small());
        for k in PolyKernel::ALL {
            let p = polybench_program(k, 10);
            let regions = find_regions(&p);
            assert_eq!(regions.len(), 1, "{k}");
            assert_eq!(regions[0].id, k.region_id());
            let m = machine.run(&p, "kernel").unwrap();
            assert!(m.flops > 0, "{k}");
            let again = machine.run(&p, "kernel").unwrap();
            assert_eq!(
                m.checksum, again.checksum,
                "{k}: checksum not deterministic"
            );
        }
    }

    #[test]
    fn factorizations_stay_finite_across_sizes() {
        let machine = Machine::new(MachineConfig::scaled_tiny());
        for k in [PolyKernel::Cholesky, PolyKernel::Lu] {
            for n in [2, 5, 12] {
                let p = polybench_program(k, n);
                let m = machine.run(&p, "kernel").unwrap();
                assert!(m.flops > 0, "{k} n={n}");
            }
        }
    }

    #[test]
    fn perfectness_classification_matches_analysis() {
        for k in PolyKernel::ALL {
            let p = polybench_program(k, 8);
            let regions = find_regions(&p);
            let stmt = extract_region(&p, &regions[0]).unwrap().stmt;
            let info = locus_analysis::loops::loop_nest_info(&stmt);
            assert_eq!(info.perfect, k.perfect(), "{k}");
            assert!(info.depth >= 2, "{k}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_sizes_are_rejected() {
        polybench_program(PolyKernel::Cholesky, 1);
    }
}
