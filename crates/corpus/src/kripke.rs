//! Kripke (Sec. V-C of the paper): five particle-transport kernels whose
//! 3D angular-flux arrays can be linearized under six data layouts —
//! the permutations of the direction/moment (`D`), group (`G`) and zone
//! (`Z`) axes.
//!
//! Two versions of each kernel exist:
//!
//! * [`kripke_skeleton`] — the single compact skeleton the Locus
//!   experiment transforms: the innermost body starts with a placeholder
//!   statement that `BuiltIn.Altdesc` replaces with the layout's address
//!   computation (see [`kripke_snippets`]), after which interchange,
//!   LICM, scalar replacement and an OpenMP pragma produce the final
//!   code (the Fig. 11 recipe);
//! * [`kripke_hand_optimized`] — an independently constructed
//!   per-layout version with loops pre-ordered for the layout, address
//!   bases hoisted by hand, and accumulators introduced where the output
//!   is invariant in the innermost loop — the "6 hand-optimized versions
//!   of each kernel" the paper compares against (Fig. 12).

use std::collections::HashMap;
use std::fmt::Write as _;

use locus_srcir::ast::Program;
use locus_srcir::parse_program;

/// Moments (the `D` axis extent of `phi`-like arrays).
pub const NM: usize = 4;
/// Directions (the `D` axis extent of `psi`-like arrays).
pub const ND: usize = 6;
/// Energy groups.
pub const NG: usize = 8;
/// Zones.
pub const NZ: usize = 32;

/// The six data layouts of the paper.
pub const LAYOUTS: [&str; 6] = ["DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"];

/// Kripke's five kernels (Sec. V-C of the paper).
#[allow(missing_docs)] // variants are the paper's kernel names
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KripkeKernel {
    LTimes,
    LPlusTimes,
    Scattering,
    Source,
    Sweep,
}

impl KripkeKernel {
    /// All five kernels, in the paper's order.
    pub const ALL: [KripkeKernel; 5] = [
        KripkeKernel::LTimes,
        KripkeKernel::LPlusTimes,
        KripkeKernel::Scattering,
        KripkeKernel::Source,
        KripkeKernel::Sweep,
    ];

    /// The region identifier / kernel name.
    pub fn name(self) -> &'static str {
        match self {
            KripkeKernel::LTimes => "LTimes",
            KripkeKernel::LPlusTimes => "LPlusTimes",
            KripkeKernel::Scattering => "Scattering",
            KripkeKernel::Source => "Source",
            KripkeKernel::Sweep => "Sweep",
        }
    }
}

impl std::fmt::Display for KripkeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Axis class of a loop variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Axis {
    D,
    G,
    Z,
}

/// One loop of a kernel: variable name, axis class, extent.
#[derive(Debug, Clone, Copy)]
struct LoopSpec {
    var: &'static str,
    axis: Axis,
    extent: usize,
}

/// One 3D array access: array name and its (a, g, z) index variables
/// ("0" for a constant-zero index) plus the D-axis extent of the array.
#[derive(Debug, Clone, Copy)]
struct Access3d {
    #[allow(dead_code)] // documents which array the access touches
    array: &'static str,
    a: &'static str,
    a_extent: usize,
    g: &'static str,
    z: &'static str,
    /// Identifier prefix for the generated index variables.
    tag: &'static str,
}

struct KernelSpec {
    loops: Vec<LoopSpec>,
    accesses: Vec<Access3d>,
    /// Innermost statement, with `{tag}_idx` placeholders for each 3D
    /// access.
    stmt: &'static str,
    /// Global array declarations shared by all versions.
    globals: &'static str,
}

fn spec(kernel: KripkeKernel) -> KernelSpec {
    let globals_phi = concat!(
        "double phi[1024];\n", // NM*NG*NZ = 4*8*32
        "double phi_out[1024];\n",
        "double psi[1536];\n", // ND*NG*NZ = 6*8*32
        "double rhs[1536];\n",
        "double ell[24];\n",      // NM*ND
        "double ell_plus[24];\n", // ND*NM
        "double sigs[64];\n",     // NG*NG
        "double sigt[256];\n",    // NG*NZ
    );
    match kernel {
        KripkeKernel::LTimes => KernelSpec {
            loops: vec![
                LoopSpec {
                    var: "nm",
                    axis: Axis::D,
                    extent: NM,
                },
                LoopSpec {
                    var: "d",
                    axis: Axis::D,
                    extent: ND,
                },
                LoopSpec {
                    var: "g",
                    axis: Axis::G,
                    extent: NG,
                },
                LoopSpec {
                    var: "z",
                    axis: Axis::Z,
                    extent: NZ,
                },
            ],
            accesses: vec![
                Access3d {
                    array: "phi",
                    a: "nm",
                    a_extent: NM,
                    g: "g",
                    z: "z",
                    tag: "out",
                },
                Access3d {
                    array: "psi",
                    a: "d",
                    a_extent: ND,
                    g: "g",
                    z: "z",
                    tag: "in",
                },
            ],
            stmt: "phi[out_idx] += ell[nm * 6 + d] * psi[in_idx];",
            globals: globals_phi,
        },
        KripkeKernel::LPlusTimes => KernelSpec {
            loops: vec![
                LoopSpec {
                    var: "d",
                    axis: Axis::D,
                    extent: ND,
                },
                LoopSpec {
                    var: "nm",
                    axis: Axis::D,
                    extent: NM,
                },
                LoopSpec {
                    var: "g",
                    axis: Axis::G,
                    extent: NG,
                },
                LoopSpec {
                    var: "z",
                    axis: Axis::Z,
                    extent: NZ,
                },
            ],
            accesses: vec![
                Access3d {
                    array: "rhs",
                    a: "d",
                    a_extent: ND,
                    g: "g",
                    z: "z",
                    tag: "out",
                },
                Access3d {
                    array: "phi_out",
                    a: "nm",
                    a_extent: NM,
                    g: "g",
                    z: "z",
                    tag: "in",
                },
            ],
            stmt: "rhs[out_idx] += ell_plus[d * 4 + nm] * phi_out[in_idx];",
            globals: globals_phi,
        },
        KripkeKernel::Scattering => KernelSpec {
            loops: vec![
                LoopSpec {
                    var: "nm",
                    axis: Axis::D,
                    extent: NM,
                },
                LoopSpec {
                    var: "g",
                    axis: Axis::G,
                    extent: NG,
                },
                LoopSpec {
                    var: "gp",
                    axis: Axis::G,
                    extent: NG,
                },
                LoopSpec {
                    var: "z",
                    axis: Axis::Z,
                    extent: NZ,
                },
            ],
            accesses: vec![
                Access3d {
                    array: "phi_out",
                    a: "nm",
                    a_extent: NM,
                    g: "g",
                    z: "z",
                    tag: "out",
                },
                Access3d {
                    array: "phi",
                    a: "nm",
                    a_extent: NM,
                    g: "gp",
                    z: "z",
                    tag: "in",
                },
            ],
            stmt: "phi_out[out_idx] += sigs[g * 8 + gp] * phi[in_idx];",
            globals: globals_phi,
        },
        KripkeKernel::Source => KernelSpec {
            loops: vec![
                LoopSpec {
                    var: "g",
                    axis: Axis::G,
                    extent: NG,
                },
                LoopSpec {
                    var: "z",
                    axis: Axis::Z,
                    extent: NZ,
                },
            ],
            accesses: vec![Access3d {
                array: "phi_out",
                a: "0",
                a_extent: NM,
                g: "g",
                z: "z",
                tag: "out",
            }],
            stmt: "phi_out[out_idx] += 1.0;",
            globals: globals_phi,
        },
        KripkeKernel::Sweep => KernelSpec {
            loops: vec![
                LoopSpec {
                    var: "d",
                    axis: Axis::D,
                    extent: ND,
                },
                LoopSpec {
                    var: "g",
                    axis: Axis::G,
                    extent: NG,
                },
                LoopSpec {
                    var: "z",
                    axis: Axis::Z,
                    extent: NZ,
                },
            ],
            accesses: vec![
                Access3d {
                    array: "psi",
                    a: "d",
                    a_extent: ND,
                    g: "g",
                    z: "z",
                    tag: "out",
                },
                Access3d {
                    array: "rhs",
                    a: "d",
                    a_extent: ND,
                    g: "g",
                    z: "z",
                    tag: "in",
                },
            ],
            stmt: "psi[out_idx] = (rhs[in_idx] + psi[out_idx]) / (2.0 + sigt[g * 32 + z]);",
            globals: globals_phi,
        },
    }
}

/// Maps an access's (a, g, z) triple onto the layout's axis order:
/// returns `[(var, extent); 3]` outermost first.
fn layout_order(layout: &str, acc: &Access3d) -> [(String, usize); 3] {
    let pick = |c: char| -> (String, usize) {
        match c {
            'D' => (acc.a.to_string(), acc.a_extent),
            'G' => (acc.g.to_string(), NG),
            'Z' => (acc.z.to_string(), NZ),
            _ => unreachable!("layout chars are D/G/Z"),
        }
    };
    let mut chars = layout.chars();
    [
        pick(chars.next().expect("3-char layout")),
        pick(chars.next().expect("3-char layout")),
        pick(chars.next().expect("3-char layout")),
    ]
}

/// The decomposed address computation for one access under a layout:
/// `int {tag}_b = x * EY + y; int {tag}_idx = {tag}_b * EW + w;`
fn address_decls(layout: &str, acc: &Access3d) -> String {
    let [(x, _), (y, ey), (w, ew)] = layout_order(layout, acc);
    format!(
        "int {tag}_b = {x} * {ey} + {y};\nint {tag}_idx = {tag}_b * {ew} + {w};\n",
        tag = acc.tag
    )
}

/// The address-computation snippets for one kernel: one per layout,
/// keyed `"{kernel}_{layout}.txt"` — the stand-ins for the paper's
/// `scatter_DZG.txt`-style files.
pub fn kripke_snippets(kernel: KripkeKernel) -> HashMap<String, String> {
    let spec = spec(kernel);
    let mut out = HashMap::new();
    for layout in LAYOUTS {
        let mut text = String::new();
        for acc in &spec.accesses {
            text.push_str(&address_decls(layout, acc));
        }
        out.insert(format!("{}_{layout}.txt", kernel.name()), text);
    }
    out
}

/// The kernel skeleton: canonical loop order, placeholder statement for
/// the address computation (the paper's "Address calculation to be
/// included here"), annotated `#pragma @Locus loop=<kernel>`.
pub fn kripke_skeleton(kernel: KripkeKernel) -> Program {
    let spec = spec(kernel);
    let mut src = String::from(spec.globals);
    src.push_str("void kernel() {\n");
    let _ = writeln!(src, "    #pragma @Locus loop={}", kernel.name());
    for (depth, l) in spec.loops.iter().enumerate() {
        let indent = "    ".repeat(depth + 1);
        let _ = writeln!(
            src,
            "{indent}for (int {v} = 0; {v} < {e}; {v}++)",
            v = l.var,
            e = l.extent
        );
        if depth + 1 == spec.loops.len() {
            let indent2 = "    ".repeat(depth + 2);
            let _ = writeln!(src, "{indent2}{{");
            let _ = writeln!(src, "{indent2}    ;");
            let _ = writeln!(src, "{indent2}    {}", spec.stmt);
            let _ = writeln!(src, "{indent2}}}");
        }
    }
    src.push_str("}\n");
    parse_program(&src).expect("generated Kripke skeleton is valid")
}

/// The hierarchical index of the skeleton's placeholder statement (the
/// `stmt=` argument of `BuiltIn.Altdesc` in the optimization program).
pub fn placeholder_index(kernel: KripkeKernel) -> String {
    let depth = spec(kernel).loops.len();
    let mut s = String::from("0");
    for _ in 1..depth {
        s.push_str(".0");
    }
    s.push_str(".0");
    s
}

/// The interchange order (old loop levels in new order) that sorts a
/// kernel's loops by the layout's axis order, same-axis loops keeping
/// their source order. This is the `looporder` table of Fig. 11.
pub fn layout_loop_order(kernel: KripkeKernel, layout: &str) -> Vec<usize> {
    let spec = spec(kernel);
    let mut order = Vec::new();
    for c in layout.chars() {
        let axis = match c {
            'D' => Axis::D,
            'G' => Axis::G,
            'Z' => Axis::Z,
            _ => unreachable!("layout chars are D/G/Z"),
        };
        for (i, l) in spec.loops.iter().enumerate() {
            if l.axis == axis {
                order.push(i);
            }
        }
    }
    order
}

/// Builds the hand-optimized version of a kernel for a layout: loops in
/// layout order, address bases declared at the outermost level where
/// they are computable, an accumulator when the output address is
/// invariant in the innermost loop, and `omp parallel for` on the
/// outermost loop.
pub fn kripke_hand_optimized(kernel: KripkeKernel, layout: &str) -> Program {
    let spec = spec(kernel);
    let order = layout_loop_order(kernel, layout);
    let loops: Vec<LoopSpec> = order.iter().map(|&i| spec.loops[i]).collect();
    let innermost = loops.last().expect("kernels have loops").var;

    // For each access: the level (after which loop) its base becomes
    // computable, i.e. once x and y are known ("0" is always known).
    let known_at = |var: &str| -> usize {
        if var == "0" {
            0
        } else {
            loops
                .iter()
                .position(|l| l.var == var)
                .map(|p| p + 1)
                .expect("index var is a loop var")
        }
    };

    let out_acc = &spec.accesses[0];
    let use_accumulator = out_acc.a != innermost
        && out_acc.g != innermost
        && out_acc.z != innermost
        && spec.stmt.contains("+=");

    let mut src = String::from(spec.globals);
    src.push_str("void kernel() {\n");
    src.push_str("    #pragma omp parallel for\n");
    let mut indent = String::from("    ");
    for (depth, l) in loops.iter().enumerate() {
        let _ = writeln!(
            src,
            "{indent}for (int {v} = 0; {v} < {e}; {v}++) {{",
            v = l.var,
            e = l.extent
        );
        indent.push_str("    ");
        let level = depth + 1;
        // Emit base/idx declarations as soon as computable (hand-hoisted
        // LICM), but no earlier than needed and not below the innermost.
        for acc in &spec.accesses {
            let [(x, _), (y, ey), (w, ew)] = layout_order(layout, acc);
            let base_level = known_at(&x).max(known_at(&y));
            let idx_level = base_level.max(known_at(&w));
            if base_level == level {
                let _ = writeln!(
                    src,
                    "{indent}int {tag}_b = {x} * {ey} + {y};",
                    tag = acc.tag
                );
            }
            if idx_level == level && level < loops.len() {
                let _ = writeln!(
                    src,
                    "{indent}int {tag}_idx = {tag}_b * {ew} + {w};",
                    tag = acc.tag
                );
            }
        }
        if level == loops.len() {
            // Innermost: remaining idx decls, then the statement (with
            // accumulator rewriting when profitable).
            for acc in &spec.accesses {
                let [(x, _), (y, _), (w, ew)] = layout_order(layout, acc);
                let idx_level = known_at(&x).max(known_at(&y)).max(known_at(&w));
                if idx_level == level {
                    let _ = writeln!(
                        src,
                        "{indent}int {tag}_idx = {tag}_b * {ew} + {w};",
                        tag = acc.tag
                    );
                }
            }
            let _ = writeln!(src, "{indent}{}", spec.stmt);
        }
    }
    for depth in (0..loops.len()).rev() {
        indent.truncate(4 * (depth + 1));
        let _ = writeln!(src, "{indent}}}");
    }
    src.push_str("}\n");

    let mut program = parse_program(&src).expect("generated hand-optimized Kripke is valid");
    if use_accumulator {
        // Introduce the accumulator with the same machinery a human
        // would reason by: the innermost loop's output reference is
        // invariant, so load once / store once.
        let f = program.function_mut("kernel").expect("kernel exists");
        let root = &mut f.body[0];
        locus_transform::scalar_repl::scalar_replacement(root)
            .expect("scalar replacement never fails");
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::{Machine, MachineConfig};
    use locus_srcir::region::find_regions;

    #[test]
    fn skeletons_build_for_all_kernels() {
        for k in KripkeKernel::ALL {
            let p = kripke_skeleton(k);
            let regions = find_regions(&p);
            assert_eq!(regions.len(), 1, "{k}");
            assert_eq!(regions[0].id, k.name());
        }
    }

    #[test]
    fn snippets_exist_for_every_layout() {
        for k in KripkeKernel::ALL {
            let snippets = kripke_snippets(k);
            assert_eq!(snippets.len(), 6, "{k}");
            for layout in LAYOUTS {
                let key = format!("{}_{layout}.txt", k.name());
                let text = snippets.get(&key).unwrap_or_else(|| panic!("{key}"));
                assert!(text.contains("out_idx"), "{key}: {text}");
            }
        }
    }

    #[test]
    fn placeholder_index_points_at_the_empty_statement() {
        for k in KripkeKernel::ALL {
            let p = kripke_skeleton(k);
            let region = &find_regions(&p)[0];
            let stmt = locus_srcir::region::extract_region(&p, region)
                .unwrap()
                .stmt;
            let idx: locus_srcir::HierIndex = placeholder_index(k).parse().unwrap();
            let placeholder = idx.resolve(&stmt).expect("placeholder resolves");
            assert!(matches!(
                placeholder.kind,
                locus_srcir::ast::StmtKind::Empty
            ));
        }
    }

    #[test]
    fn hand_optimized_versions_run_for_all_layouts() {
        let machine = Machine::new(MachineConfig::scaled_small().with_cores(1));
        for k in KripkeKernel::ALL {
            for layout in LAYOUTS {
                let p = kripke_hand_optimized(k, layout);
                let m = machine.run(&p, "kernel").unwrap_or_else(|e| {
                    panic!("{k}/{layout}: {e}\n{}", locus_srcir::print_program(&p))
                });
                assert!(m.flops > 0, "{k}/{layout}");
            }
        }
    }

    #[test]
    fn layouts_produce_different_loop_orders() {
        let dgz = layout_loop_order(KripkeKernel::Scattering, "DGZ");
        let zgd = layout_loop_order(KripkeKernel::Scattering, "ZGD");
        assert_eq!(dgz, vec![0, 1, 2, 3]);
        assert_eq!(zgd, vec![3, 1, 2, 0]);
    }

    #[test]
    fn accumulator_appears_where_profitable() {
        // ZDG puts gp innermost for Scattering; the output reference is
        // gp-invariant, so the hand-optimized version uses a scalar
        // accumulator.
        let p = kripke_hand_optimized(KripkeKernel::Scattering, "ZDG");
        let printed = locus_srcir::print_program(&p);
        assert!(printed.contains("double __t"), "printed:\n{printed}");
    }
}
