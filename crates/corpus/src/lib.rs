//! Benchmark corpus for the Locus evaluation (Sec. V of the paper).
//!
//! * [`dgemm`] — the naive matrix-matrix multiplication baseline of
//!   Fig. 3;
//! * [`stencils`] — the six stencils of Sec. V-B (Jacobi 1D/2D, Heat
//!   1D/2D, Seidel 1D/2D), Fig. 8 style;
//! * [`kripke`] — skeletons of Kripke's five kernels with the six
//!   per-data-layout address snippets, plus independently built
//!   hand-optimized versions for the Fig. 12 comparison;
//! * [`generator`] — a deterministic synthetic loop-nest corpus standing
//!   in for the 16-suite extraction corpus of Table I (the LORE corpus
//!   is not redistributable; the generator reproduces its *structure*:
//!   controlled depth, perfect/imperfect nests, affine and non-affine
//!   accesses);
//! * [`polybench`] — PolyBench-style triangular and imperfect nests
//!   (Cholesky, LU, TRMM, SYRK, correlation, covariance), a
//!   data-dependent-bound sparse SpMV and a guarded stencil;
//! * [`registry`] — the single [`all_programs`] iterator every test
//!   suite and bench sweeps, pairing each runnable kernel with a Locus
//!   DSL recipe.
//!
//! All kernels are full `locus_srcir` programs with a `kernel()` entry
//! and `#pragma @Locus` region annotations, sized so a search of
//! hundreds of variants runs in seconds on the simulated machine.

#![warn(missing_docs)]

pub mod dgemm;
pub mod generator;
pub mod kripke;
pub mod polybench;
pub mod registry;
pub mod stencils;

pub use dgemm::dgemm_program;
pub use generator::{generate_corpus, CorpusNest, SuiteSpec, TABLE1_SUITES};
pub use kripke::{kripke_hand_optimized, kripke_skeleton, kripke_snippets, KripkeKernel, LAYOUTS};
pub use polybench::{polybench_program, PolyKernel};
pub use registry::{all_programs, CorpusEntry, Family};
pub use stencils::{stencil_program, Stencil};
