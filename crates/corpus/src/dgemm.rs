//! The DGEMM baseline of the paper's Fig. 3.

use locus_srcir::ast::Program;
use locus_srcir::parse_program;

/// Builds the naive triple-loop DGEMM program
/// `C = beta*C + alpha*A*B` with square `n x n` matrices, annotated with
/// `#pragma @Locus loop=matmul` exactly like Fig. 3 (scaled from the
/// paper's 2048 to laptop-friendly sizes).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn dgemm_program(n: usize) -> Program {
    assert!(n > 0, "matrix dimension must be positive");
    let src = format!(
        r#"
double A[{n}][{n}];
double B[{n}][{n}];
double C[{n}][{n}];
double alpha = 1.5;
double beta = 1.2;
void kernel() {{
    int i;
    int j;
    int k;
    #pragma @Locus loop=matmul
    for (i = 0; i < {n}; i++)
        for (j = 0; j < {n}; j++)
            for (k = 0; k < {n}; k++)
                C[i][j] = beta * C[i][j] + alpha * A[i][k] * B[k][j];
}}
"#
    );
    parse_program(&src).expect("generated DGEMM source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::region::find_regions;

    #[test]
    fn program_has_the_matmul_region() {
        let p = dgemm_program(16);
        let regions = find_regions(&p);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].id, "matmul");
    }

    #[test]
    fn runs_on_the_machine() {
        let p = dgemm_program(16);
        let machine = locus_machine::Machine::new(locus_machine::MachineConfig::scaled_small());
        let m = machine.run(&p, "kernel").unwrap();
        assert!(m.flops >= 16 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = dgemm_program(0);
    }
}
