//! Synthetic loop-nest corpus for the Table I experiment.
//!
//! The paper extracts 3,146 loop nests from 16 benchmark suites (via the
//! LORE extractor of Gong et al.) and selects the 856 slower than 10,000
//! cycles. That corpus is not redistributable, so this module generates
//! a *structurally matched* synthetic stand-in: deterministic loop nests
//! with controlled depth, perfect/imperfect shape, affine or non-affine
//! (indirect) accesses, dependence-free or recurrence-carrying bodies —
//! the properties that decide which transformations of the paper's
//! Fig. 13 program apply, and that make Pluto's polyhedral gate reject a
//! nest.

use locus_space::rng::SplitMix64;
use locus_srcir::ast::Program;
use locus_srcir::parse_program;

/// Per-suite specification: suite name and how many nests the paper
/// selected from it (Table I, column "# of loop nests").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteSpec {
    /// Suite name as printed in Table I.
    pub name: &'static str,
    /// Loop nests the paper selected from the suite.
    pub selected: usize,
    /// Variants the paper assessed for the suite (Table I).
    pub variants_assessed: usize,
}

/// Table I of the paper: the 16 suites, their selected-nest counts and
/// assessed-variant counts.
pub const TABLE1_SUITES: [SuiteSpec; 16] = [
    SuiteSpec {
        name: "ALPBench",
        selected: 13,
        variants_assessed: 39,
    },
    SuiteSpec {
        name: "ASC Sequoia",
        selected: 1,
        variants_assessed: 3,
    },
    SuiteSpec {
        name: "Cortexsuite",
        selected: 47,
        variants_assessed: 1_297,
    },
    SuiteSpec {
        name: "FreeBench",
        selected: 30,
        variants_assessed: 431,
    },
    SuiteSpec {
        name: "Parallel Research Kernels",
        selected: 37,
        variants_assessed: 1_055,
    },
    SuiteSpec {
        name: "Livermore Loops",
        selected: 11,
        variants_assessed: 121,
    },
    SuiteSpec {
        name: "MediaBench",
        selected: 39,
        variants_assessed: 159,
    },
    SuiteSpec {
        name: "Netlib",
        selected: 18,
        variants_assessed: 260,
    },
    SuiteSpec {
        name: "NAS Parallel Benchmarks",
        selected: 208,
        variants_assessed: 23_384,
    },
    SuiteSpec {
        name: "Polybench",
        selected: 93,
        variants_assessed: 7_582,
    },
    SuiteSpec {
        name: "Scimark2",
        selected: 4,
        variants_assessed: 83,
    },
    SuiteSpec {
        name: "SPEC2000",
        selected: 71,
        variants_assessed: 2_228,
    },
    SuiteSpec {
        name: "SPEC2006",
        selected: 50,
        variants_assessed: 216,
    },
    SuiteSpec {
        name: "Extended TSVC",
        selected: 156,
        variants_assessed: 6_943,
    },
    SuiteSpec {
        name: "Libraries",
        selected: 61,
        variants_assessed: 1_966,
    },
    SuiteSpec {
        name: "Neural Network Kernels",
        selected: 17,
        variants_assessed: 132,
    },
];

/// One extracted loop nest: its provenance and the runnable program.
#[derive(Debug, Clone)]
pub struct CorpusNest {
    /// Suite the nest is attributed to.
    pub suite: &'static str,
    /// Unique name within the corpus.
    pub name: String,
    /// The program; the nest is annotated `#pragma @Locus loop=scop`
    /// (like the paper's extracted kernels) with a `kernel()` entry.
    pub program: Program,
    /// Loop nest depth (structural ground truth, for reporting).
    pub depth: usize,
    /// Whether the nest is perfect.
    pub perfect: bool,
    /// Whether all accesses are affine.
    pub affine: bool,
}

/// Generates a deterministic corpus of `per_suite_cap`-limited nests per
/// Table I suite (pass `usize::MAX` for the full per-suite counts).
///
/// The shape mix approximates LORE's population: ~55% depth-1, ~30%
/// depth-2, ~15% depth-3; roughly a quarter of bodies are non-affine
/// (indirection or modulo), and a fifth of the multi-loop nests are
/// imperfect.
pub fn generate_corpus(seed: u64, per_suite_cap: usize) -> Vec<CorpusNest> {
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::new();
    for suite in TABLE1_SUITES {
        let count = suite.selected.min(per_suite_cap);
        for k in 0..count {
            let name = format!("{}_{k}", suite.name.to_lowercase().replace(' ', "_"));
            out.push(generate_nest(&mut rng, suite.name, name));
        }
    }
    out
}

fn generate_nest(rng: &mut SplitMix64, suite: &'static str, name: String) -> CorpusNest {
    let depth = match rng.below(100) {
        0..=54 => 1,
        55..=84 => 2,
        _ => 3,
    };
    let mut affine = rng.below(100) >= 25;
    let perfect = depth == 1 || rng.below(100) >= 20;
    // The imperfect templates are all affine.
    if !perfect {
        affine = true;
    }
    // Sizes chosen so every nest runs past the paper's 10k-cycle floor
    // without dominating the harness, and so the multi-loop nests exceed
    // Pluto's default 32-tile (the extracted nests of the paper do too).
    let n: usize = match depth {
        1 => 512,
        2 => 96,
        _ => 56,
    };

    let program = build_nest(rng, depth, perfect, affine, n);
    CorpusNest {
        suite,
        name,
        program,
        depth,
        perfect,
        affine,
    }
}

fn build_nest(
    rng: &mut SplitMix64,
    depth: usize,
    perfect: bool,
    affine: bool,
    n: usize,
) -> Program {
    let body_kind = rng.below(4);
    let src = match (depth, perfect) {
        (1, _) => {
            let body = match (affine, body_kind) {
                (true, 0) => "A[i] = B[i] * 0.5 + C[i];",
                (true, 1) => "A[i] = A[i] + B[i];",
                (true, 2) => "A[i] = B[i] * B[i] - C[i] * 0.25;",
                (true, _) => "A[i + 1] = A[i] * 0.5 + B[i];", // recurrence
                (false, 0) => "A[idx[i]] = B[i];",
                (false, 1) => "A[i] = B[idx[i]];",
                (false, _) => "A[i % 7] = A[i % 7] + B[i];",
            };
            format!(
                r#"
double A[{m}];
double B[{m}];
double C[{m}];
int idx[{m}];
void kernel() {{
    #pragma @Locus loop=scop
    for (int i = 0; i < {n}; i++)
        {body}
}}
"#,
                m = n + 2
            )
        }
        (2, true) => {
            // Triangular nests (body_kind 3, affine) exercise the
            // non-rectangular error paths of tiling/interchange.
            if affine && body_kind == 3 {
                return parse_program(&format!(
                    r#"
double A[{n}][{n}];
double B[{n}][{n}];
void kernel() {{
    #pragma @Locus loop=scop
    for (int i = 0; i < {n}; i++)
        for (int j = i; j < {n}; j++)
            A[i][j] = A[i][j] + B[j][i];
}}
"#
                ))
                .expect("generated triangular nest is valid");
            }
            let body = match (affine, body_kind) {
                (true, 0) => "A[i][j] = B[i][j] * 0.5 + A[i][j];",
                (true, 1) => "A[i][j] = B[j][i];",
                (true, _) => "A[i][j] = A[i][j] + B[i][j] * C[j][i];",
                (false, _) => "A[i][idx[j] % {n}] = B[i][j];",
            }
            .replace("{n}", &n.to_string());
            format!(
                r#"
double A[{n}][{np}];
double B[{n}][{n}];
double C[{n}][{n}];
int idx[{n}];
void kernel() {{
    #pragma @Locus loop=scop
    for (int i = 0; i < {n}; i++)
        for (int j = 1; j < {n}; j++)
            {body}
}}
"#,
                np = n + 1
            )
        }
        (2, false) => format!(
            r#"
double A[{n}][{n}];
double B[{n}][{n}];
double s[{n}];
void kernel() {{
    #pragma @Locus loop=scop
    for (int i = 0; i < {n}; i++) {{
        s[i] = 0.0;
        for (int j = 0; j < {n}; j++)
            s[i] = s[i] + A[i][j] * B[j][i];
    }}
}}
"#
        ),
        (_, true) => {
            let body = if affine {
                "A[i][j] = A[i][j] + B[i][k] * C[k][j];"
            } else {
                "A[i][j] = A[i][j] + B[i][idx[k] % {n}] * C[k][j];"
            }
            .replace("{n}", &n.to_string());
            format!(
                r#"
double A[{n}][{n}];
double B[{n}][{n}];
double C[{n}][{n}];
int idx[{n}];
void kernel() {{
    #pragma @Locus loop=scop
    for (int i = 0; i < {n}; i++)
        for (int j = 1; j < {n}; j++)
            for (int k = 0; k < {n}; k++)
                {body}
}}
"#
            )
        }
        (_, false) => format!(
            r#"
double A[{n}][{n}];
double B[{n}][{n}];
double C[{n}][{n}];
void kernel() {{
    #pragma @Locus loop=scop
    for (int i = 0; i < {n}; i++) {{
        for (int j = 0; j < {n}; j++) {{
            A[i][j] = B[i][j] * 2.0;
            for (int k = 0; k < {n}; k++)
                C[i][k] = C[i][k] + A[i][j] * B[k][j];
        }}
    }}
}}
"#
        ),
    };
    parse_program(&src).expect("generated corpus nest is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::region::find_regions;

    #[test]
    fn table1_totals_match_the_paper() {
        let selected: usize = TABLE1_SUITES.iter().map(|s| s.selected).sum();
        let variants: usize = TABLE1_SUITES.iter().map(|s| s.variants_assessed).sum();
        assert_eq!(selected, 856);
        assert_eq!(variants, 45_899);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus(42, 3);
        let b = generate_corpus(42, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program, y.program, "{}", x.name);
        }
    }

    #[test]
    fn capped_corpus_has_expected_size() {
        let corpus = generate_corpus(1, 2);
        // 16 suites, at most 2 each, ASC Sequoia has only 1.
        assert_eq!(corpus.len(), 16 * 2 - 1);
    }

    #[test]
    fn every_nest_has_a_scop_region_and_runs() {
        let machine = locus_machine::Machine::new(locus_machine::MachineConfig::scaled_small());
        for nest in generate_corpus(7, 2) {
            let regions = find_regions(&nest.program);
            assert_eq!(regions.len(), 1, "{}", nest.name);
            assert_eq!(regions[0].id, "scop");
            let m = machine.run(&nest.program, "kernel").unwrap_or_else(|e| {
                panic!(
                    "{} failed: {e}\n{}",
                    nest.name,
                    locus_srcir::print_program(&nest.program)
                )
            });
            assert!(
                m.cycles > 10_000.0,
                "{} too fast (paper's floor)",
                nest.name
            );
        }
    }

    #[test]
    fn shape_metadata_matches_reality() {
        for nest in generate_corpus(3, 4) {
            let regions = find_regions(&nest.program);
            let stmt = locus_srcir::region::extract_region(&nest.program, &regions[0])
                .unwrap()
                .stmt;
            let info = locus_analysis::loops::loop_nest_info(&stmt);
            assert_eq!(info.depth, nest.depth, "{}", nest.name);
            assert_eq!(info.perfect, nest.perfect, "{}", nest.name);
            let deps = locus_analysis::deps::analyze_region(&stmt);
            assert_eq!(deps.available, nest.affine, "{}", nest.name);
        }
    }

    #[test]
    fn corpus_mixes_shapes() {
        let corpus = generate_corpus(11, usize::MAX);
        assert_eq!(corpus.len(), 856);
        let d1 = corpus.iter().filter(|n| n.depth == 1).count();
        let nonaffine = corpus.iter().filter(|n| !n.affine).count();
        let imperfect = corpus.iter().filter(|n| !n.perfect).count();
        assert!(d1 > 300 && d1 < 600, "depth-1 {d1}");
        assert!(nonaffine > 120 && nonaffine < 350, "non-affine {nonaffine}");
        assert!(imperfect > 30, "imperfect {imperfect}");
    }
}
