//! The corpus registry: every standalone-runnable kernel family, each
//! paired with a Locus optimization program, behind one iterator.
//!
//! Test suites and benches sweep [`all_programs`] instead of
//! hand-listing kernels, so a kernel added here is automatically picked
//! up by the VM-equivalence differential, the legality-vs-dependence
//! differential, corpus conformance, and the cross-machine bench.
//!
//! The registry deliberately excludes the Kripke skeletons: their
//! placeholder statements reference address variables that only exist
//! after a `BuiltIn.Altdesc` rewrite, so they have no *baseline* run
//! (the Kripke suites keep their dedicated harnesses in `fig12`).

use locus_srcir::ast::Program;

use crate::dgemm::dgemm_program;
use crate::polybench::{polybench_program, PolyKernel};
use crate::stencils::{stencil_program, Stencil};

/// Which part of the corpus an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// The Fig. 3 DGEMM baseline.
    Dgemm,
    /// The six Sec. V-B stencils.
    Stencil,
    /// The PolyBench-style triangular/imperfect/guarded kernels.
    PolyBench,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Family::Dgemm => "dgemm",
            Family::Stencil => "stencil",
            Family::PolyBench => "polybench",
        };
        write!(f, "{name}")
    }
}

/// One corpus kernel: a runnable `locus_srcir` program, the region the
/// optimization program targets, and a matching Locus DSL recipe whose
/// extracted [`locus_space::Space`] is the kernel's search space.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Unique registry name (stable across sessions; used as store and
    /// report keys).
    pub name: &'static str,
    /// Corpus family the entry belongs to.
    pub family: Family,
    /// The `#pragma @Locus` region identifier inside the program.
    pub region: &'static str,
    /// The full program (a `kernel()` entry plus globals).
    pub program: Program,
    /// Locus DSL source: a `CodeReg` block for [`CorpusEntry::region`].
    pub recipe: String,
    /// Whether the annotated region's iteration space is rectangular
    /// (no loop bound references an enclosing loop variable or memory).
    pub rectangular: bool,
}

impl CorpusEntry {
    /// Parses the entry's recipe into a [`locus_lang::LocusProgram`].
    ///
    /// # Panics
    ///
    /// Panics when the recipe does not parse — registry recipes are
    /// static and covered by the conformance suite, so a failure here is
    /// a registry bug.
    pub fn locus_program(&self) -> locus_lang::LocusProgram {
        locus_lang::parse(&self.recipe)
            .unwrap_or_else(|e| panic!("registry recipe for `{}` parses: {e}", self.name))
    }
}

/// A recipe exercising interchange + two-level tiling + OMP, scaled to
/// registry problem sizes (the Fig. 7 shape without the second level).
fn dgemm_recipe() -> String {
    r#"
CodeReg matmul {
    *RoseLocus.Interchange(order=[0, 2, 1]);
    tileI = poweroftwo(2..8);
    *Pips.Tiling(loop="0", factor=[tileI, tileI, tileI]);
    *Pragma.OMPFor(loop="outermost");
}
"#
    .to_string()
}

/// Vectorization pragmas plus inner unrolling — legal on every stencil,
/// cheap enough for exhaustive sweeps.
fn stencil_recipe(id: &str) -> String {
    format!(
        r#"
CodeReg {id} {{
    *Pragma.Ivdep(loop="innermost");
    *Pragma.Vector(loop="innermost");
    uf = poweroftwo(2..4);
    *RoseLocus.Unroll(loop="innermost", factor=uf);
}}
"#
    )
}

/// Per-kernel recipes for the PolyBench-style families. Triangular
/// kernels deliberately include tiling/interchange steps that the
/// legality engine must route through its conservative path (refused,
/// never mis-measured); every recipe keeps at least the all-optional-off
/// baseline point valid.
fn polybench_recipe(kernel: PolyKernel) -> String {
    let id = kernel.region_id();
    match kernel {
        PolyKernel::Cholesky | PolyKernel::Lu => format!(
            r#"
CodeReg {id} {{
    tileT = poweroftwo(2..8);
    *Pips.Tiling(loop="0", factor=[tileT, tileT]);
    uf = poweroftwo(2..4);
    *RoseLocus.Unroll(loop="innermost", factor=uf);
}}
"#
        ),
        PolyKernel::Trmm => format!(
            r#"
CodeReg {id} {{
    *RoseLocus.Interchange(order=[1, 0]);
    tileT = poweroftwo(2..8);
    *Pips.Tiling(loop="0", factor=[tileT, tileT]);
    uf = poweroftwo(2..4);
    *RoseLocus.Unroll(loop="innermost", factor=uf);
}}
"#
        ),
        PolyKernel::Syrk => format!(
            r#"
CodeReg {id} {{
    *RoseLocus.Interchange(order=[0, 2, 1]);
    tileS = poweroftwo(2..8);
    *Pips.Tiling(loop="0", factor=[tileS, tileS, tileS]);
    uf = poweroftwo(2..4);
    *RoseLocus.Unroll(loop="innermost", factor=uf);
}}
"#
        ),
        PolyKernel::Correlation | PolyKernel::Covariance => format!(
            r#"
CodeReg {id} {{
    uf = poweroftwo(2..4);
    *RoseLocus.Unroll(loop="innermost", factor=uf);
    *Pragma.OMPFor(loop="outermost");
}}
"#
        ),
        PolyKernel::SpmvEll => format!(
            r#"
CodeReg {id} {{
    *Pragma.Ivdep(loop="innermost");
    uf = poweroftwo(2..4);
    *RoseLocus.Unroll(loop="outermost", factor=uf);
}}
"#
        ),
        PolyKernel::GuardedStencil => format!(
            r#"
CodeReg {id} {{
    tileG = poweroftwo(2..8);
    *Pips.Tiling(loop="0", factor=[tileG, tileG]);
    *Pragma.OMPFor(loop="outermost");
    *Pragma.Vector(loop="innermost");
}}
"#
        ),
    }
}

/// Every registry entry at its default (test-sized) problem size:
/// DGEMM, the six stencils, and the eight PolyBench-style kernels.
pub fn all_programs() -> Vec<CorpusEntry> {
    let mut out = vec![CorpusEntry {
        name: "dgemm",
        family: Family::Dgemm,
        region: "matmul",
        program: dgemm_program(12),
        recipe: dgemm_recipe(),
        rectangular: true,
    }];
    for s in Stencil::ALL {
        let name: &'static str = match s {
            Stencil::Jacobi1d => "stencil-jacobi1d",
            Stencil::Jacobi2d => "stencil-jacobi2d",
            Stencil::Heat1d => "stencil-heat1d",
            Stencil::Heat2d => "stencil-heat2d",
            Stencil::Seidel1d => "stencil-seidel1d",
            Stencil::Seidel2d => "stencil-seidel2d",
        };
        out.push(CorpusEntry {
            name,
            family: Family::Stencil,
            region: s.region_id(),
            program: stencil_program(s, 10, 3),
            recipe: stencil_recipe(s.region_id()),
            rectangular: true,
        });
    }
    for k in PolyKernel::ALL {
        let name: &'static str = match k {
            PolyKernel::Cholesky => "poly-cholesky",
            PolyKernel::Lu => "poly-lu",
            PolyKernel::Trmm => "poly-trmm",
            PolyKernel::Syrk => "poly-syrk",
            PolyKernel::Correlation => "poly-correlation",
            PolyKernel::Covariance => "poly-covariance",
            PolyKernel::SpmvEll => "poly-spmv",
            PolyKernel::GuardedStencil => "poly-guarded",
        };
        out.push(CorpusEntry {
            name,
            family: Family::PolyBench,
            region: k.region_id(),
            program: polybench_program(k, 10),
            recipe: polybench_recipe(k),
            rectangular: k.rectangular(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_srcir::region::find_regions;

    #[test]
    fn registry_names_and_regions_are_unique_and_resolvable() {
        let entries = all_programs();
        assert!(entries.len() >= 15);
        let mut names = std::collections::HashSet::new();
        for e in &entries {
            assert!(names.insert(e.name), "duplicate registry name {}", e.name);
            let regions = find_regions(&e.program);
            assert!(
                regions.iter().any(|r| r.id == e.region),
                "{}: region `{}` not found",
                e.name,
                e.region
            );
        }
    }

    #[test]
    fn every_recipe_parses_and_targets_the_entry_region() {
        for e in all_programs() {
            let locus = e.locus_program();
            let printed = locus_lang::print_program(&locus);
            assert!(
                printed.contains(&format!("CodeReg {}", e.region)),
                "{}: recipe does not declare CodeReg {}",
                e.name,
                e.region
            );
        }
    }

    #[test]
    fn polybench_families_meet_the_growth_floor() {
        let polys = all_programs()
            .into_iter()
            .filter(|e| e.family == Family::PolyBench)
            .count();
        assert!(polys >= 6, "need >= 6 new families, have {polys}");
    }
}
