//! The six stencil kernels of Sec. V-B: Jacobi 1D/2D, Heat 1D/2D,
//! Seidel 1D/2D, written like the paper's Fig. 8 (double-buffered over
//! `t % 2` where applicable, in-place for Seidel).

use locus_srcir::ast::Program;
use locus_srcir::parse_program;

/// The stencil kernels evaluated in the paper's Fig. 6 (left).
#[allow(missing_docs)] // variants are the paper's kernel names
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stencil {
    Jacobi1d,
    Jacobi2d,
    Heat1d,
    Heat2d,
    Seidel1d,
    Seidel2d,
}

impl Stencil {
    /// All six stencils, in the paper's presentation order.
    pub const ALL: [Stencil; 6] = [
        Stencil::Jacobi1d,
        Stencil::Jacobi2d,
        Stencil::Heat1d,
        Stencil::Heat2d,
        Stencil::Seidel1d,
        Stencil::Seidel2d,
    ];

    /// The region identifier used in the generated source.
    pub fn region_id(self) -> &'static str {
        match self {
            Stencil::Jacobi1d => "jacobi1d",
            Stencil::Jacobi2d => "jacobi2d",
            Stencil::Heat1d => "heat1d",
            Stencil::Heat2d => "heat2d",
            Stencil::Seidel1d => "seidel1d",
            Stencil::Seidel2d => "seidel2d",
        }
    }

    /// Spatial dimensionality (1 or 2).
    pub fn dims(self) -> usize {
        match self {
            Stencil::Jacobi1d | Stencil::Heat1d | Stencil::Seidel1d => 1,
            _ => 2,
        }
    }
}

impl std::fmt::Display for Stencil {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Stencil::Jacobi1d => "Jacobi 1D",
            Stencil::Jacobi2d => "Jacobi 2D",
            Stencil::Heat1d => "Heat 1D",
            Stencil::Heat2d => "Heat 2D",
            Stencil::Seidel1d => "Seidel 1D",
            Stencil::Seidel2d => "Seidel 2D",
        };
        write!(f, "{name}")
    }
}

/// Builds a stencil program with `t_steps` time steps over an interior
/// of `n` points per spatial dimension (the arrays allocate `n + 2` to
/// hold the boundary).
///
/// # Panics
///
/// Panics if `n == 0` or `t_steps == 0`.
pub fn stencil_program(stencil: Stencil, n: usize, t_steps: usize) -> Program {
    assert!(n > 0 && t_steps > 0, "stencil sizes must be positive");
    let id = stencil.region_id();
    let n2 = n + 2;
    let hi = n + 1;
    let src = match stencil {
        Stencil::Heat2d => format!(
            r#"
double A[2][{n2}][{n2}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int t = 0; t < {t_steps}; t++)
        for (int i = 1; i < {hi}; i++)
            for (int j = 1; j < {hi}; j++)
                A[(t + 1) % 2][i][j] = 0.125 * (A[t % 2][i + 1][j] - 2.0 * A[t % 2][i][j] + A[t % 2][i - 1][j])
                    + 0.125 * (A[t % 2][i][j + 1] - 2.0 * A[t % 2][i][j] + A[t % 2][i][j - 1])
                    + A[t % 2][i][j];
}}
"#
        ),
        Stencil::Heat1d => format!(
            r#"
double A[2][{n2}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int t = 0; t < {t_steps}; t++)
        for (int i = 1; i < {hi}; i++)
            A[(t + 1) % 2][i] = 0.125 * (A[t % 2][i + 1] - 2.0 * A[t % 2][i] + A[t % 2][i - 1]) + A[t % 2][i];
}}
"#
        ),
        Stencil::Jacobi2d => format!(
            r#"
double A[2][{n2}][{n2}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int t = 0; t < {t_steps}; t++)
        for (int i = 1; i < {hi}; i++)
            for (int j = 1; j < {hi}; j++)
                A[(t + 1) % 2][i][j] = 0.2 * (A[t % 2][i][j] + A[t % 2][i - 1][j] + A[t % 2][i + 1][j] + A[t % 2][i][j - 1] + A[t % 2][i][j + 1]);
}}
"#
        ),
        Stencil::Jacobi1d => format!(
            r#"
double A[2][{n2}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int t = 0; t < {t_steps}; t++)
        for (int i = 1; i < {hi}; i++)
            A[(t + 1) % 2][i] = 0.33333 * (A[t % 2][i - 1] + A[t % 2][i] + A[t % 2][i + 1]);
}}
"#
        ),
        Stencil::Seidel2d => format!(
            r#"
double A[{n2}][{n2}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int t = 0; t < {t_steps}; t++)
        for (int i = 1; i < {hi}; i++)
            for (int j = 1; j < {hi}; j++)
                A[i][j] = 0.2 * (A[i][j] + A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]);
}}
"#
        ),
        Stencil::Seidel1d => format!(
            r#"
double A[{n2}];
void kernel() {{
    #pragma @Locus loop={id}
    for (int t = 0; t < {t_steps}; t++)
        for (int i = 1; i < {hi}; i++)
            A[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
}}
"#
        ),
    };
    parse_program(&src).expect("generated stencil source is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use locus_machine::{Machine, MachineConfig};
    use locus_srcir::region::find_regions;

    #[test]
    fn all_stencils_build_and_run() {
        let machine = Machine::new(MachineConfig::scaled_small());
        for s in Stencil::ALL {
            let p = stencil_program(s, 16, 4);
            let regions = find_regions(&p);
            assert_eq!(regions.len(), 1, "{s}");
            assert_eq!(regions[0].id, s.region_id());
            let m = machine.run(&p, "kernel").unwrap();
            assert!(m.flops > 0, "{s}");
        }
    }

    #[test]
    fn heat2d_matches_fig8_shape() {
        let p = stencil_program(Stencil::Heat2d, 8, 2);
        let printed = locus_srcir::print_program(&p);
        assert!(printed.contains("A[(t + 1) % 2][i][j]"));
        assert!(printed.contains("0.125"));
    }

    #[test]
    fn region_depth_matches_dimensionality() {
        for s in Stencil::ALL {
            let p = stencil_program(s, 8, 2);
            let regions = find_regions(&p);
            let stmt = locus_srcir::region::extract_region(&p, &regions[0])
                .unwrap()
                .stmt;
            let depth = locus_analysis::loops::loop_nest_info(&stmt).depth;
            assert_eq!(depth, 1 + s.dims(), "{s}");
        }
    }
}
