//! The `locusd` wire protocol: newline-delimited flat JSON.
//!
//! One request per line, one response line per request, over a TCP
//! stream. The codec is hand-rolled in the same style as the store's
//! record codec — flat objects only, string values escaped, `f64`
//! values carried as exact bit patterns (16 hex digits) with an
//! approximate `_dec` sibling for human readers, so a tuning result
//! survives the wire bit-identically.
//!
//! Robustness contract (pinned by `tests/daemon_protocol.rs`): a
//! malformed, truncated, or oversized request line yields a structured
//! [`Response::error`] reply — never a panic, never a dropped
//! connection.

use std::fmt;

/// Hard cap on one request or response line, in bytes (excluding the
/// newline). Oversized requests are answered with an
/// [`codes::OVERSIZED`] error and the rest of the line is discarded.
pub const MAX_LINE: usize = 64 * 1024;

/// Stable error codes carried in the `code` field of error responses.
pub mod codes {
    /// The request line is not a flat JSON object with known fields.
    pub const PARSE: &str = "parse";
    /// The request line exceeds [`super::MAX_LINE`] bytes.
    pub const OVERSIZED: &str = "oversized";
    /// The `op` field names no known operation.
    pub const UNKNOWN_OP: &str = "unknown-op";
    /// The `kernel` field names no registry kernel.
    pub const UNKNOWN_KERNEL: &str = "unknown-kernel";
    /// The `machine` field names no machine profile.
    pub const UNKNOWN_MACHINE: &str = "unknown-machine";
    /// The `search` field names no search module.
    pub const UNKNOWN_SEARCH: &str = "unknown-search";
    /// The request panicked inside the daemon and was isolated at the
    /// session boundary.
    pub const PANIC: &str = "panic";
    /// The request spent longer than its `deadline_ms` queued.
    pub const DEADLINE: &str = "deadline";
    /// The tuning run itself failed (apply error, store I/O).
    pub const INTERNAL: &str = "internal";
}

/// The operations `locusd` serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Liveness probe; answered inline.
    Ping,
    /// Tune a registry kernel against the shared store.
    Tune,
    /// Retrieve or synthesize a recipe for a registry kernel.
    Suggest,
    /// Shared-store statistics; answered inline.
    Stats,
    /// Compact every store shard; answered inline.
    Compact,
    /// Deliberately panic inside the supervised request path — the
    /// fault-isolation probe used by tests and the benchmark.
    DebugPanic,
    /// Stop the daemon after replying.
    Shutdown,
}

impl Op {
    /// The wire spelling of this op.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Ping => "ping",
            Op::Tune => "tune",
            Op::Suggest => "suggest",
            Op::Stats => "stats",
            Op::Compact => "compact",
            Op::DebugPanic => "debug-panic",
            Op::Shutdown => "shutdown",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Op> {
        Some(match s {
            "ping" => Op::Ping,
            "tune" => Op::Tune,
            "suggest" => Op::Suggest,
            "stats" => Op::Stats,
            "compact" => Op::Compact,
            "debug-panic" => Op::DebugPanic,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen request id, echoed on the response and stamped
    /// onto every trace event of the request.
    pub id: String,
    /// What to do.
    pub op: Op,
    /// Registry kernel name (`tune`, `suggest`, `debug-panic`).
    pub kernel: String,
    /// Search module: `exhaustive`, `random`, `bandit`, `anneal`,
    /// `portfolio`.
    pub search: String,
    /// Deterministic search seed.
    pub seed: u64,
    /// Requested evaluation budget; the daemon clamps it to its
    /// configured per-request maximum.
    pub budget: usize,
    /// Requested evaluation threads; clamped likewise.
    pub threads: usize,
    /// Machine-profile name the kernel is tuned for.
    pub machine: String,
    /// Queue deadline: if the request waits longer than this before a
    /// worker picks it up, it is answered with a `deadline` error
    /// instead of running.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A request with every tunable field at its default: bandit
    /// search, seed 7, budget 16, one thread, the `scaled-xeon`
    /// profile, no deadline.
    pub fn new(id: &str, op: Op) -> Request {
        Request {
            id: id.to_string(),
            op,
            kernel: String::new(),
            search: "bandit".to_string(),
            seed: 7,
            budget: 16,
            threads: 1,
            machine: "scaled-xeon".to_string(),
            deadline_ms: None,
        }
    }

    /// Encodes the request as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "id", &self.id);
        push_str_field(&mut out, "op", self.op.as_str());
        if !self.kernel.is_empty() {
            push_str_field(&mut out, "kernel", &self.kernel);
        }
        push_str_field(&mut out, "search", &self.search);
        push_raw_field(&mut out, "seed", self.seed);
        push_raw_field(&mut out, "budget", self.budget);
        push_raw_field(&mut out, "threads", self.threads);
        push_str_field(&mut out, "machine", &self.machine);
        if let Some(ms) = self.deadline_ms {
            push_raw_field(&mut out, "deadline_ms", ms);
        }
        finish(out)
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming what is wrong, carrying whatever request
    /// id could be salvaged so the error reply still correlates.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let fields = parse_object(line).ok_or_else(|| ProtoError {
            id: salvage_id(line),
            code: codes::PARSE,
            message: "request is not a flat JSON object".to_string(),
        })?;
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        let id = get("id").unwrap_or_default().to_string();
        let fail = |code: &'static str, message: String| ProtoError {
            id: id.clone(),
            code,
            message,
        };
        let op_text =
            get("op").ok_or_else(|| fail(codes::PARSE, "request has no `op` field".to_string()))?;
        let op = Op::parse(op_text)
            .ok_or_else(|| fail(codes::UNKNOWN_OP, format!("unknown op `{op_text}`")))?;
        let mut request = Request::new(&id, op);
        if let Some(kernel) = get("kernel") {
            request.kernel = kernel.to_string();
        }
        if let Some(search) = get("search") {
            request.search = search.to_string();
        }
        if let Some(machine) = get("machine") {
            request.machine = machine.to_string();
        }
        if let Some(raw) = get("seed") {
            request.seed = raw
                .parse()
                .map_err(|_| fail(codes::PARSE, format!("bad seed `{raw}`")))?;
        }
        if let Some(raw) = get("budget") {
            request.budget = raw
                .parse()
                .map_err(|_| fail(codes::PARSE, format!("bad budget `{raw}`")))?;
        }
        if let Some(raw) = get("threads") {
            request.threads = raw
                .parse()
                .map_err(|_| fail(codes::PARSE, format!("bad threads `{raw}`")))?;
        }
        if let Some(raw) = get("deadline_ms") {
            request.deadline_ms = Some(
                raw.parse()
                    .map_err(|_| fail(codes::PARSE, format!("bad deadline_ms `{raw}`")))?,
            );
        }
        Ok(request)
    }
}

/// A request that could not be parsed or dispatched; converts directly
/// into the error [`Response`] the client sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Salvaged request id ("" when even the id was unreadable).
    pub id: String,
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// One response line: `ok` with typed payload fields, or `error` with a
/// code and message.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    /// `true` for `ok`, `false` for `error`.
    pub ok: bool,
    /// Payload fields in encode order.
    pub fields: Vec<(String, WireValue)>,
}

/// A typed response payload value.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// UTF-8 text.
    Str(String),
    /// Unsigned integer (encoded as a raw JSON number).
    U64(u64),
    /// Exact double: encoded as a 16-hex-digit bit pattern plus an
    /// approximate `<key>_dec` sibling field.
    F64(f64),
}

impl Response {
    /// An `ok` response with no payload yet.
    pub fn ok(id: &str) -> Response {
        Response {
            id: id.to_string(),
            ok: true,
            fields: Vec::new(),
        }
    }

    /// An `error` response.
    pub fn error(id: &str, code: &str, message: &str) -> Response {
        let mut r = Response {
            id: id.to_string(),
            ok: false,
            fields: Vec::new(),
        };
        r.fields.push(("code".into(), WireValue::Str(code.into())));
        r.fields
            .push(("message".into(), WireValue::Str(message.into())));
        r
    }

    /// Appends a string payload field (builder style).
    pub fn with_str(mut self, key: &str, value: &str) -> Response {
        self.fields
            .push((key.to_string(), WireValue::Str(value.to_string())));
        self
    }

    /// Appends an integer payload field.
    pub fn with_u64(mut self, key: &str, value: u64) -> Response {
        self.fields.push((key.to_string(), WireValue::U64(value)));
        self
    }

    /// Appends an exact-double payload field.
    pub fn with_f64(mut self, key: &str, value: f64) -> Response {
        self.fields.push((key.to_string(), WireValue::F64(value)));
        self
    }

    /// Looks a string field up.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| {
                if let WireValue::Str(s) = v {
                    Some(s.as_str())
                } else {
                    None
                }
            })
    }

    /// Looks an integer field up.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| {
                if let WireValue::U64(n) = v {
                    Some(*n)
                } else {
                    None
                }
            })
    }

    /// Looks an exact-double field up.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| {
                if let WireValue::F64(x) = v {
                    Some(*x)
                } else {
                    None
                }
            })
    }

    /// The `code` of an error response.
    pub fn error_code(&self) -> Option<&str> {
        if self.ok {
            None
        } else {
            self.get_str("code")
        }
    }

    /// Encodes the response as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::from("{");
        push_str_field(&mut out, "id", &self.id);
        push_str_field(&mut out, "status", if self.ok { "ok" } else { "error" });
        for (key, value) in &self.fields {
            match value {
                WireValue::Str(s) => push_str_field(&mut out, key, s),
                WireValue::U64(n) => push_raw_field(&mut out, key, n),
                WireValue::F64(x) => {
                    push_str_field(&mut out, key, &format!("{:016x}", x.to_bits()));
                    push_raw_field(&mut out, &format!("{key}_dec"), format!("{x:.6}"));
                }
            }
        }
        finish(out)
    }

    /// Parses one response line (the client side of the codec).
    ///
    /// Typing is recovered structurally: quoted 16-hex-digit values
    /// with a `<key>_dec` sibling decode as [`WireValue::F64`], other
    /// quoted values as [`WireValue::Str`], unquoted integers as
    /// [`WireValue::U64`].
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let fields = parse_object_typed(line).ok_or_else(|| ProtoError {
            id: String::new(),
            code: codes::PARSE,
            message: "response is not a flat JSON object".to_string(),
        })?;
        let find = |key: &str| {
            fields
                .iter()
                .find(|(k, _, _)| k == key)
                .map(|(_, v, q)| (v.as_str(), *q))
        };
        let id = find("id").map(|(v, _)| v.to_string()).unwrap_or_default();
        let ok = match find("status").map(|(v, _)| v) {
            Some("ok") => true,
            Some("error") => false,
            _ => {
                return Err(ProtoError {
                    id,
                    code: codes::PARSE,
                    message: "response has no `status` field".to_string(),
                })
            }
        };
        let mut payload = Vec::new();
        for (key, value, quoted) in &fields {
            if key == "id" || key == "status" || key.ends_with("_dec") {
                continue;
            }
            let has_dec = fields.iter().any(|(k, _, _)| *k == format!("{key}_dec"));
            let wire = if *quoted && has_dec && value.len() == 16 {
                match u64::from_str_radix(value, 16) {
                    Ok(bits) => WireValue::F64(f64::from_bits(bits)),
                    Err(_) => WireValue::Str(value.clone()),
                }
            } else if *quoted {
                WireValue::Str(value.clone())
            } else if let Ok(n) = value.parse::<u64>() {
                WireValue::U64(n)
            } else {
                WireValue::Str(value.clone())
            };
            payload.push((key.clone(), wire));
        }
        Ok(Response {
            id,
            ok,
            fields: payload,
        })
    }
}

// ---------------------------------------------------------------------
// Flat JSON codec (same dialect as the store's record codec)
// ---------------------------------------------------------------------

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    escape(value, out);
    out.push(',');
}

fn push_raw_field(out: &mut String, key: &str, value: impl fmt::Display) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
    out.push(',');
}

fn finish(mut out: String) -> String {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
    out
}

/// Parses a flat JSON object into `(key, value)` pairs, values as
/// unescaped text.
fn parse_object(line: &str) -> Option<Vec<(String, String)>> {
    parse_object_typed(line).map(|fields| fields.into_iter().map(|(k, v, _)| (k, v)).collect())
}

/// Like `parse_object` but also reports whether each value was quoted,
/// which is how the response parser recovers types.
fn parse_object_typed(line: &str) -> Option<Vec<(String, String, bool)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                // Trailing garbage after the object is a malformed line.
                return if chars.next().is_none() {
                    Some(fields)
                } else {
                    None
                };
            }
            ',' | ' ' => {
                chars.next();
            }
            '"' => {
                let key = parse_string(&mut chars)?;
                skip_ws(&mut chars);
                if chars.next()? != ':' {
                    return None;
                }
                skip_ws(&mut chars);
                let (value, quoted) = if chars.peek() == Some(&'"') {
                    (parse_string(&mut chars)?, true)
                } else {
                    let mut raw = String::new();
                    while let Some(&c) = chars.peek() {
                        if c == ',' || c == '}' {
                            break;
                        }
                        raw.push(c);
                        chars.next();
                    }
                    (raw.trim().to_string(), false)
                };
                fields.push((key, value, quoted));
            }
            _ => return None,
        }
    }
}

/// Best-effort id extraction from a line that failed to parse, so even
/// a truncated request's error reply correlates with its sender.
fn salvage_id(line: &str) -> String {
    let Some(pos) = line.find("\"id\":") else {
        return String::new();
    };
    let mut chars = line[pos + 5..].trim_start().chars().peekable();
    parse_string(&mut chars).unwrap_or_default()
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek() == Some(&' ') {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut req = Request::new("r-1", Op::Tune);
        req.kernel = "dgemm".into();
        req.search = "exhaustive".into();
        req.seed = 11;
        req.budget = 24;
        req.threads = 4;
        req.machine = "manycore".into();
        req.deadline_ms = Some(5000);
        let line = req.encode();
        assert_eq!(Request::parse(&line).unwrap(), req);
    }

    #[test]
    fn request_defaults_fill_missing_fields() {
        let req = Request::parse(r#"{"id":"a","op":"tune","kernel":"dgemm"}"#).unwrap();
        assert_eq!(req.search, "bandit");
        assert_eq!(req.seed, 7);
        assert_eq!(req.budget, 16);
        assert_eq!(req.threads, 1);
        assert_eq!(req.machine, "scaled-xeon");
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn malformed_requests_salvage_the_id() {
        let err = Request::parse(r#"{"id":"r-9","op":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.id, "r-9");
        assert_eq!(err.code, codes::UNKNOWN_OP);
        let err = Request::parse(r#"{"id":"r-9","op":"tune","seed":"abc"}"#).unwrap_err();
        assert_eq!(err.id, "r-9");
        assert_eq!(err.code, codes::PARSE);
        let err = Request::parse("not json").unwrap_err();
        assert_eq!(err.id, "");
        assert_eq!(err.code, codes::PARSE);
        // Even a truncated line salvages a completed id field.
        let err = Request::parse(r#"{"id":"cut","op":"tu"#).unwrap_err();
        assert_eq!(err.id, "cut");
        assert_eq!(err.code, codes::PARSE);
    }

    #[test]
    fn response_round_trips_f64_bit_exactly() {
        let ms = 1.0 / 3.0 + 1e-13;
        let resp = Response::ok("r-2")
            .with_str("best_point", "tileI=i16;")
            .with_u64("evaluations", 12)
            .with_f64("best_ms", ms);
        let line = resp.encode();
        let back = Response::parse(&line).unwrap();
        assert!(back.ok);
        assert_eq!(back.get_str("best_point"), Some("tileI=i16;"));
        assert_eq!(back.get_u64("evaluations"), Some(12));
        assert_eq!(back.get_f64("best_ms").unwrap().to_bits(), ms.to_bits());
    }

    #[test]
    fn error_responses_carry_code_and_message() {
        let resp = Response::error("r-3", codes::PANIC, "worker died: boom");
        let back = Response::parse(&resp.encode()).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error_code(), Some(codes::PANIC));
        assert_eq!(back.get_str("message"), Some("worker died: boom"));
    }

    #[test]
    fn trailing_garbage_is_malformed() {
        assert!(Request::parse(r#"{"id":"x","op":"ping"} extra"#).is_err());
    }
}
