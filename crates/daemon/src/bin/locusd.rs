//! `locusd` — the Locus tuning service daemon.
//!
//! Serves tuning, suggestion, and store-maintenance requests over a
//! newline-delimited JSON protocol on a TCP socket (see the
//! `locus_daemon::protocol` docs and the README's "Tuning service"
//! section for the wire format).
//!
//! Usage:
//!
//! ```text
//! locusd --store DIR [--addr 127.0.0.1:7417] [--workers N]
//!        [--shards N] [--max-budget N] [--max-threads N]
//!        [--trace FILE]
//! ```
//!
//! The daemon prints `locusd listening on ADDR` once ready and runs
//! until a client sends the `shutdown` op. Exit status: 0 on clean
//! shutdown, 2 on usage or startup errors.

use std::process::ExitCode;

use locus_daemon::{Daemon, DaemonConfig};

fn main() -> ExitCode {
    let mut store_dir: Option<String> = None;
    let mut addr = "127.0.0.1:7417".to_string();
    let mut workers: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut max_budget: Option<usize> = None;
    let mut max_threads: Option<usize> = None;
    let mut trace: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next().ok_or_else(|| {
                eprintln!("{name} needs a value");
            })
        };
        match arg.as_str() {
            "--store" => store_dir = take("--store").ok(),
            "--addr" => match take("--addr").ok() {
                Some(a) => addr = a,
                None => return ExitCode::from(2),
            },
            "--workers" => workers = take("--workers").ok().and_then(|v| v.parse().ok()),
            "--shards" => shards = take("--shards").ok().and_then(|v| v.parse().ok()),
            "--max-budget" => max_budget = take("--max-budget").ok().and_then(|v| v.parse().ok()),
            "--max-threads" => {
                max_threads = take("--max-threads").ok().and_then(|v| v.parse().ok())
            }
            "--trace" => trace = take("--trace").ok(),
            "--help" | "-h" => {
                println!(
                    "usage: locusd --store DIR [--addr HOST:PORT] [--workers N] [--shards N] \
                     [--max-budget N] [--max-threads N] [--trace FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let Some(store_dir) = store_dir else {
        eprintln!("--store DIR is required (the shared tuning-store directory)");
        return ExitCode::from(2);
    };

    let mut config = DaemonConfig::new(store_dir);
    config.addr = addr;
    if let Some(n) = workers {
        config.workers = n;
    }
    if let Some(n) = shards {
        config.shards = n;
    }
    if let Some(n) = max_budget {
        config.max_budget = n;
    }
    if let Some(n) = max_threads {
        config.max_threads = n;
    }
    config.trace_log = trace.map(Into::into);

    let mut daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("locusd: cannot start: {e}");
            return ExitCode::from(2);
        }
    };
    println!("locusd listening on {}", daemon.addr());
    daemon.join();
    println!("locusd stopped");
    ExitCode::SUCCESS
}
