//! `locus-client` — command-line client for a running `locusd`.
//!
//! Usage:
//!
//! ```text
//! locus-client ADDR OP [--kernel NAME] [--search MODULE] [--seed N]
//!              [--budget N] [--threads N] [--machine PROFILE]
//!              [--deadline-ms N] [--id ID]
//! ```
//!
//! `OP` is one of `ping`, `tune`, `suggest`, `stats`, `compact`,
//! `shutdown`. The response's payload fields print one per line as
//! `key: value`; exact doubles print their decimal value with the bit
//! pattern alongside. Exit status: 0 on an `ok` reply, 1 on an `error`
//! reply, 2 on usage or connection errors.

use std::process::ExitCode;

use locus_daemon::{Client, Op, Request, WireValue};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: locus-client ADDR OP [--kernel NAME] [--search MODULE] [--seed N] [--budget N] [--threads N] [--machine PROFILE] [--deadline-ms N] [--id ID]");
        return ExitCode::from(2);
    }
    let addr = &args[0];
    let Some(op) = Op::parse(&args[1]) else {
        eprintln!("unknown op `{}`", args[1]);
        return ExitCode::from(2);
    };
    let mut request = Request::new("cli", op);
    let mut rest = args[2..].iter();
    while let Some(flag) = rest.next() {
        let Some(value) = rest.next() else {
            eprintln!("{flag} needs a value");
            return ExitCode::from(2);
        };
        let numeric = |v: &str| v.parse::<u64>().ok();
        match flag.as_str() {
            "--kernel" => request.kernel = value.clone(),
            "--search" => request.search = value.clone(),
            "--machine" => request.machine = value.clone(),
            "--id" => request.id = value.clone(),
            "--seed" => match numeric(value) {
                Some(n) => request.seed = n,
                None => return bad_number(flag, value),
            },
            "--budget" => match numeric(value) {
                Some(n) => request.budget = n as usize,
                None => return bad_number(flag, value),
            },
            "--threads" => match numeric(value) {
                Some(n) => request.threads = n as usize,
                None => return bad_number(flag, value),
            },
            "--deadline-ms" => match numeric(value) {
                Some(n) => request.deadline_ms = Some(n),
                None => return bad_number(flag, value),
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    let response = match client.request(&request) {
        Ok(response) => response,
        Err(e) => {
            eprintln!("request failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "{}: {}",
        response.id,
        if response.ok { "ok" } else { "error" }
    );
    for (key, value) in &response.fields {
        match value {
            WireValue::Str(s) => println!("{key}: {s}"),
            WireValue::U64(n) => println!("{key}: {n}"),
            WireValue::F64(x) => println!("{key}: {x:.6} (bits {:016x})", x.to_bits()),
        }
    }
    if response.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn bad_number(flag: &str, value: &str) -> ExitCode {
    eprintln!("{flag}: `{value}` is not a number");
    ExitCode::from(2)
}
