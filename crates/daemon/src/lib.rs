//! `locusd` — tuning as a long-running service.
//!
//! The paper frames Locus as infrastructure for reusing optimization
//! effort: spaces are searched once and winning recipes are shipped and
//! shared (Sec. II). This crate takes the systematic next step — a
//! daemon that serves many concurrent tuning and suggestion requests
//! over a newline-delimited JSON protocol, multiplexed onto one shared
//! worker pool and one process-wide sharded tuning store, so every
//! client's evaluations warm every other client's sessions.
//!
//! The moving parts:
//!
//! * [`protocol`] — the wire format: one flat-JSON request line in, one
//!   response line out; `f64` payloads travel as exact bit patterns;
//!   malformed, truncated, or oversized lines yield structured errors,
//!   never a dropped connection or a daemon panic;
//! * [`sched`] — per-connection FIFO queues dispatched round-robin, so
//!   a flooding client cannot starve its siblings;
//! * [`server`] — the daemon itself: scoped worker pool, per-request
//!   `catch_unwind` supervision (a panicking request is reported to its
//!   own client and nothing else), per-request budget/deadline
//!   enforcement, and request-id-tagged tracing that `locus-report
//!   --request` can replay;
//! * [`client`] — the blocking client library behind the
//!   `locus-client` binary and the benchmark/test harnesses.
//!
//! Determinism is load-bearing: a daemon `tune` request runs the exact
//! library driver (`tune_parallel_with_sharded_store`) with seeded
//! search modules, so its results are bit-identical to a direct
//! in-process call — the property `tests/daemon_service.rs` pins.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod sched;
pub mod server;

pub use client::Client;
pub use protocol::{codes, Op, ProtoError, Request, Response, WireValue, MAX_LINE};
pub use sched::FairScheduler;
pub use server::{Daemon, DaemonConfig};
