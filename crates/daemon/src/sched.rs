//! Fair round-robin scheduling of requests onto the shared worker pool.
//!
//! Each connection owns a FIFO queue; the scheduler rotates over the
//! connections that have work, handing one job per turn to whichever
//! worker asks next. A client that floods the daemon with requests
//! therefore cannot starve its siblings: with `k` active connections,
//! every connection receives every `k`-th dispatch slot regardless of
//! queue depth — the classic round-robin fairness bound.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// A blocking multi-producer multi-consumer queue with per-connection
/// FIFO order and round-robin fairness across connections.
#[derive(Debug)]
pub struct FairScheduler<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct State<T> {
    /// Pending jobs per connection.
    queues: HashMap<u64, VecDeque<T>>,
    /// Connections with at least one pending job, in dispatch order.
    rotation: VecDeque<u64>,
    /// Once set, `pop` returns `None` immediately; pending jobs are
    /// dropped (their clients see the connection close).
    shutdown: bool,
}

impl<T> Default for FairScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FairScheduler<T> {
    /// An empty scheduler.
    pub fn new() -> FairScheduler<T> {
        FairScheduler {
            state: Mutex::new(State {
                queues: HashMap::new(),
                rotation: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one job for `conn`. Jobs from the same connection run
    /// in submission order; jobs from different connections interleave
    /// round-robin.
    pub fn push(&self, conn: u64, job: T) {
        let mut state = self.lock();
        if state.shutdown {
            return;
        }
        let queue = state.queues.entry(conn).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(job);
        if was_empty {
            state.rotation.push_back(conn);
        }
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks until a job is available (returns it) or the scheduler is
    /// shut down (returns `None`). The connection the job came from is
    /// rotated to the back of the dispatch order.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if let Some(conn) = state.rotation.pop_front() {
                let queue = state.queues.get_mut(&conn).expect("rotation tracks queues");
                let job = queue.pop_front().expect("rotated queues are non-empty");
                if queue.is_empty() {
                    state.queues.remove(&conn);
                } else {
                    state.rotation.push_back(conn);
                }
                return Some(job);
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Total jobs currently queued across all connections.
    pub fn len(&self) -> usize {
        self.lock().queues.values().map(VecDeque::len).sum()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops the scheduler: every blocked and future `pop` returns
    /// `None`, and queued jobs are dropped.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    /// Whether [`FairScheduler::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.lock().shutdown
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // A panic while holding the scheduler lock cannot corrupt the
        // state (all mutations are single push/pop steps), so poisoned
        // locks are recovered rather than propagated — one crashed
        // worker must not wedge dispatch for every other connection.
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_connection_preserves_fifo_order() {
        let sched = FairScheduler::new();
        sched.push(1, "a");
        sched.push(1, "b");
        sched.push(1, "c");
        assert_eq!(sched.pop(), Some("a"));
        assert_eq!(sched.pop(), Some("b"));
        assert_eq!(sched.pop(), Some("c"));
    }

    #[test]
    fn connections_interleave_round_robin() {
        let sched = FairScheduler::new();
        // Connection 1 floods; connections 2 and 3 submit one job each
        // afterwards. Round-robin still serves them every turn.
        for i in 0..4 {
            sched.push(1, format!("one-{i}"));
        }
        sched.push(2, "two-0".to_string());
        sched.push(3, "three-0".to_string());
        let order: Vec<String> =
            std::iter::from_fn(|| if sched.is_empty() { None } else { sched.pop() }).collect();
        assert_eq!(
            order,
            ["one-0", "two-0", "three-0", "one-1", "one-2", "one-3"]
        );
    }

    #[test]
    fn shutdown_unblocks_poppers() {
        let sched: std::sync::Arc<FairScheduler<u32>> = std::sync::Arc::new(FairScheduler::new());
        let waiter = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.pop())
        };
        // Give the waiter a moment to block, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.shutdown();
        assert_eq!(waiter.join().unwrap(), None);
        // Post-shutdown pushes are dropped and pops return None.
        sched.push(1, 42);
        assert_eq!(sched.pop(), None);
    }
}
