//! A blocking line-protocol client for `locusd`.
//!
//! [`Client`] wraps one TCP connection: encode a [`Request`], write the
//! line, read and parse the [`Response`] line. The daemon answers every
//! request with exactly one line in per-connection submission order, so
//! a blocking request/reply pair per call is the whole protocol. For
//! concurrency, open one client per thread — the daemon's fair
//! scheduler interleaves connections round-robin.

use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{Op, Request, Response};

/// One connection to a running `locusd`.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        // Request/reply over loopback stalls ~40ms per round trip under
        // Nagle + delayed ACK; the protocol is strictly line-at-a-time,
        // so there is nothing to coalesce.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one raw line (no newline) and does not wait for a reply —
    /// the escape hatch the protocol fuzz tests use to deliver
    /// malformed bytes.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads and parses the next response line.
    ///
    /// # Errors
    ///
    /// Read failures; [`io::ErrorKind::UnexpectedEof`] when the daemon
    /// closed the connection; [`io::ErrorKind::InvalidData`] when the
    /// reply is not a protocol line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Response::parse(line.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unparseable reply: {e}"),
            )
        })
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O failures from [`Client::send_raw`] / [`Client::recv`].
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.send_raw(&request.encode())?;
        self.recv()
    }

    /// Liveness probe: `true` when the daemon answers the ping.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn ping(&mut self, id: &str) -> io::Result<bool> {
        Ok(self.request(&Request::new(id, Op::Ping))?.ok)
    }

    /// Asks the daemon to stop.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn shutdown(&mut self, id: &str) -> io::Result<Response> {
        self.request(&Request::new(id, Op::Shutdown))
    }
}
