//! The `locusd` daemon: tuning as a long-running service.
//!
//! One [`Daemon`] owns a TCP listener, a shared [`ShardedStore`], and a
//! scoped worker pool. Each accepted connection gets a reader thread
//! that parses newline-delimited requests ([`crate::protocol`]);
//! cheap operations (`ping`, `stats`, `compact`) are answered inline,
//! while tuning work (`tune`, `suggest`, `debug-panic`) is enqueued on
//! the [`FairScheduler`] and executed by the worker pool — round-robin
//! across connections, so no client can starve its siblings.
//!
//! **Fault isolation** is OTP-flavored: every scheduled request runs
//! under [`std::panic::catch_unwind`] at the session boundary. A
//! panicking request is reported to *its* client as a structured
//! `panic` error; the worker, the daemon, and every sibling request
//! keep running. The layers below cooperate: the store's stripe locks
//! recover from poisoning, and the scheduler's lock does too, so one
//! crashed request cannot wedge shared state.
//!
//! **Determinism**: a daemon tune request runs the exact same
//! [`LocusSystem::tune_parallel_with_sharded_store`] driver a library
//! caller uses, with the same seeded search modules — so results are
//! bit-identical to direct calls (pinned by `tests/daemon_service.rs`),
//! and `f64` payloads cross the wire as exact bit patterns.
//!
//! **Observability**: with a trace log configured, every tune request
//! runs under its own [`Tracer`], and its drained events are stamped
//! with the request id ([`locus_trace::tag_events`]) before being
//! appended to the shared JSONL log — `locus-report --request <id>`
//! replays any single request out of the interleaved service history.

use std::collections::HashMap;
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use locus_core::{suggest_with_sharded_store, LocusSystem};
use locus_corpus::registry::{all_programs, CorpusEntry};
use locus_machine::profiles::all_profiles;
use locus_machine::{Machine, MachineConfig};
use locus_search::{
    AnnealTuner, BanditTuner, ExhaustiveSearch, MctsTuner, PortfolioSearch, RandomSearch,
    SearchModule, TraceSampler,
};
use locus_srcir::region::{extract_region, find_regions};
use locus_store::{ShardedStore, DEFAULT_SHARDS};
use locus_trace::{tag_events, to_jsonl, Tracer};

use crate::protocol::{codes, Op, Request, Response, MAX_LINE};
use crate::sched::FairScheduler;

/// How long blocked reads and accepts wait before re-checking the
/// shutdown flag; bounds daemon stop latency.
const POLL: Duration = Duration::from_millis(50);

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Directory of the shared sharded store.
    pub store_dir: PathBuf,
    /// Store shard count.
    pub shards: usize,
    /// Worker threads executing scheduled requests.
    pub workers: usize,
    /// Per-request evaluation-budget ceiling; requests asking for more
    /// are clamped, which is the daemon's cost-control knob.
    pub max_budget: usize,
    /// Per-request evaluation-thread ceiling.
    pub max_threads: usize,
    /// Shared JSONL trace log; `None` disables per-request tracing.
    pub trace_log: Option<PathBuf>,
}

impl DaemonConfig {
    /// A loopback daemon on an ephemeral port over `store_dir`, with 4
    /// workers, budget ceiling 64, thread ceiling 4, and no trace log.
    pub fn new(store_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            store_dir: store_dir.into(),
            shards: DEFAULT_SHARDS,
            workers: 4,
            max_budget: 64,
            max_threads: 4,
            trace_log: None,
        }
    }
}

/// One scheduled unit of work: a parsed request plus the connection's
/// shared reply stream.
struct Job {
    request: Request,
    reply: Arc<Mutex<TcpStream>>,
    enqueued: Instant,
}

/// State shared by the accept loop, reader threads, and workers.
struct Shared {
    config: DaemonConfig,
    store: ShardedStore,
    registry: HashMap<String, CorpusEntry>,
    profiles: HashMap<String, MachineConfig>,
    sched: Arc<FairScheduler<Job>>,
    shutdown: Arc<AtomicBool>,
    trace: Option<Mutex<std::fs::File>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sched.shutdown();
    }

    /// Tags a finished request's trace events with its id and appends
    /// them to the shared trace log (no-op without one).
    fn append_trace(&self, request_id: &str, events: Vec<locus_trace::Event>) {
        let Some(log) = &self.trace else { return };
        if events.is_empty() {
            return;
        }
        let text = to_jsonl(&tag_events(events, "req", request_id));
        let mut file = log.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(text.as_bytes());
    }
}

/// A running `locusd` instance; stops (and joins its threads) on drop.
pub struct Daemon {
    addr: std::net::SocketAddr,
    sched: Arc<FairScheduler<Job>>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("addr", &self.addr).finish()
    }
}

impl Daemon {
    /// Binds the listener, opens (or creates) the shared store, and
    /// spawns the service threads.
    ///
    /// # Errors
    ///
    /// Address bind failures and store/trace-log open failures.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = ShardedStore::open(&config.store_dir, config.shards)?;
        let trace = match &config.trace_log {
            Some(path) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            None => None,
        };
        let sched = Arc::new(FairScheduler::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Shared {
            registry: all_programs()
                .into_iter()
                .map(|e| (e.name.to_string(), e))
                .collect(),
            profiles: all_profiles()
                .into_iter()
                .map(|p| (p.name.to_string(), p.config))
                .collect(),
            config,
            store,
            sched: sched.clone(),
            shutdown: shutdown.clone(),
            trace,
            next_conn: AtomicU64::new(0),
        };
        let handle = std::thread::spawn(move || {
            std::thread::scope(|scope| {
                for _ in 0..shared.config.workers.max(1) {
                    scope.spawn(|| worker_loop(&shared));
                }
                accept_loop(scope, &shared, listener);
            });
        });
        Ok(Daemon {
            addr,
            sched,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound listen address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins every service thread. Queued but
    /// unstarted requests are dropped; in-flight requests finish first.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.sched.shutdown();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the daemon stops (a client sent `shutdown`, or
    /// another thread called [`Daemon::stop`]).
    pub fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accepts connections until shutdown, spawning one scoped reader
/// thread per connection.
fn accept_loop<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    shared: &'scope Shared,
    listener: TcpListener,
) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                scope.spawn(move || serve_connection(shared, conn, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Writes one response line to a connection's (shared) reply stream.
/// Write errors are ignored: a vanished client only affects itself.
fn send(reply: &Mutex<TcpStream>, response: &Response) {
    let mut line = response.encode();
    line.push('\n');
    let mut stream = reply.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = stream.write_all(line.as_bytes());
}

/// The outcome of reading one request line.
enum LineRead {
    /// A complete line within the size bound.
    Line(String),
    /// A line that exceeded [`MAX_LINE`]; its content was discarded.
    Oversized,
    /// Connection closed (EOF) or shutdown requested.
    Closed,
}

/// Reads one newline-terminated request line, bounding memory at
/// [`MAX_LINE`] and re-checking the shutdown flag on every read
/// timeout. A truncated final line (EOF before the newline) is
/// returned as a line so the client still gets a structured parse
/// error.
fn read_request_line(reader: &mut BufReader<TcpStream>, shutdown: &AtomicBool) -> LineRead {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return LineRead::Closed;
        }
        let (consumed, done) = match reader.fill_buf() {
            Ok([]) => {
                // EOF: a partial line still gets parsed (and refused).
                return if oversized {
                    LineRead::Oversized
                } else if line.is_empty() {
                    LineRead::Closed
                } else {
                    LineRead::Line(String::from_utf8_lossy(&line).into_owned())
                };
            }
            Ok(available) => match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !oversized && line.len() + pos <= MAX_LINE {
                        line.extend_from_slice(&available[..pos]);
                    } else {
                        oversized = true;
                    }
                    (pos + 1, true)
                }
                None => {
                    if !oversized && line.len() + available.len() <= MAX_LINE {
                        line.extend_from_slice(available);
                    } else {
                        oversized = true;
                        line.clear();
                    }
                    (available.len(), false)
                }
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue;
            }
            Err(_) => return LineRead::Closed,
        };
        reader.consume(consumed);
        if done {
            return if oversized {
                LineRead::Oversized
            } else {
                LineRead::Line(String::from_utf8_lossy(&line).into_owned())
            };
        }
    }
}

/// One connection's reader loop: parse lines, answer cheap ops inline,
/// schedule the rest.
fn serve_connection(shared: &Shared, conn: u64, stream: TcpStream) {
    stream.set_read_timeout(Some(POLL)).ok();
    stream.set_nodelay(true).ok();
    let reply = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request_line(&mut reader, &shared.shutdown) {
            LineRead::Closed => return,
            LineRead::Oversized => send(
                &reply,
                &Response::error(
                    "",
                    codes::OVERSIZED,
                    &format!("request line exceeds {MAX_LINE} bytes"),
                ),
            ),
            LineRead::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let request = match Request::parse(&line) {
                    Ok(request) => request,
                    Err(e) => {
                        send(&reply, &Response::error(&e.id, e.code, &e.message));
                        continue;
                    }
                };
                match request.op {
                    Op::Ping => send(
                        &reply,
                        &Response::ok(&request.id).with_str("pong", "locusd"),
                    ),
                    Op::Stats => send(&reply, &stats_response(shared, &request)),
                    Op::Compact => send(&reply, &compact_response(shared, &request)),
                    Op::Shutdown => {
                        send(&reply, &Response::ok(&request.id));
                        shared.begin_shutdown();
                        return;
                    }
                    Op::Tune | Op::Suggest | Op::DebugPanic => shared.sched.push(
                        conn,
                        Job {
                            request,
                            reply: reply.clone(),
                            enqueued: Instant::now(),
                        },
                    ),
                }
            }
        }
    }
}

/// Worker loop: pop fairly-scheduled jobs and run each supervised.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.sched.pop() {
        let response = supervise(shared, &job);
        send(&job.reply, &response);
    }
}

/// Runs one job at the session boundary: deadline check, then the
/// request body under `catch_unwind`. A panic anywhere inside the
/// request — corpus, search, machine, store — becomes a structured
/// `panic` error for this client alone.
fn supervise(shared: &Shared, job: &Job) -> Response {
    let request = &job.request;
    if let Some(deadline_ms) = request.deadline_ms {
        let waited = job.enqueued.elapsed();
        if waited > Duration::from_millis(deadline_ms) {
            return Response::error(
                &request.id,
                codes::DEADLINE,
                &format!(
                    "request waited {}ms in queue, past its {deadline_ms}ms deadline",
                    waited.as_millis()
                ),
            );
        }
    }
    match catch_unwind(AssertUnwindSafe(|| execute(shared, request))) {
        Ok(response) => response,
        Err(payload) => Response::error(
            &request.id,
            codes::PANIC,
            &format!("request panicked: {}", panic_message(payload.as_ref())),
        ),
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Dispatches a scheduled request body.
fn execute(shared: &Shared, request: &Request) -> Response {
    match request.op {
        Op::Tune => execute_tune(shared, request),
        Op::Suggest => execute_suggest(shared, request),
        Op::DebugPanic => panic!(
            "deliberate panic requested by debug-panic op (id `{}`)",
            request.id
        ),
        // Inline ops never reach the scheduler.
        _ => Response::error(
            &request.id,
            codes::INTERNAL,
            &format!("op `{}` is answered inline", request.op.as_str()),
        ),
    }
}

/// Builds the seeded search module a request names.
fn make_search(name: &str, seed: u64) -> Option<Box<dyn SearchModule>> {
    Some(match name {
        "exhaustive" => Box::new(ExhaustiveSearch::new()),
        "random" => Box::new(RandomSearch::new(seed)),
        "bandit" => Box::new(BanditTuner::new(seed)),
        "anneal" => Box::new(AnnealTuner::new(seed)),
        "mcts" => Box::new(MctsTuner::new(seed)),
        "sampler" => Box::new(TraceSampler::new(seed)),
        "portfolio" => Box::new(PortfolioSearch::new(seed)),
        _ => return None,
    })
}

/// `tune`: run the library's parallel store-backed driver against the
/// shared sharded store and serialize the result bit-exactly.
fn execute_tune(shared: &Shared, request: &Request) -> Response {
    let Some(entry) = shared.registry.get(&request.kernel) else {
        return Response::error(
            &request.id,
            codes::UNKNOWN_KERNEL,
            &format!("no registry kernel named `{}`", request.kernel),
        );
    };
    let Some(profile) = shared.profiles.get(&request.machine) else {
        return Response::error(
            &request.id,
            codes::UNKNOWN_MACHINE,
            &format!("no machine profile named `{}`", request.machine),
        );
    };
    let Some(mut search) = make_search(&request.search, request.seed) else {
        return Response::error(
            &request.id,
            codes::UNKNOWN_SEARCH,
            &format!("no search module named `{}`", request.search),
        );
    };
    let budget = request.budget.clamp(1, shared.config.max_budget);
    let threads = request.threads.clamp(1, shared.config.max_threads);
    let system = LocusSystem::new(Machine::new(profile.clone()));
    let locus = entry.locus_program();
    let tracer = if shared.trace.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let tuned = system.tune_parallel_with_sharded_store(
        &entry.program,
        &locus,
        search.as_mut(),
        budget,
        threads,
        &shared.store,
        &tracer,
    );
    shared.append_trace(&request.id, tracer.drain());
    let (result, report) = match tuned {
        Ok(pair) => pair,
        Err(e) => return Response::error(&request.id, codes::INTERNAL, &e.to_string()),
    };
    let mut response = Response::ok(&request.id)
        .with_str("kernel", &request.kernel)
        .with_str("machine", &request.machine)
        .with_str("search", &request.search)
        .with_u64("budget", budget as u64)
        .with_u64("threads", threads as u64)
        .with_f64("baseline_ms", result.baseline.time_ms)
        .with_f64("speedup", result.speedup())
        .with_u64("evaluations", report.evaluations() as u64)
        .with_u64("rehydrated", report.rehydrated as u64)
        .with_u64("appended", report.appended as u64)
        .with_u64("proposed", report.proposed as u64)
        .with_str("space_size", &result.space_size.to_string());
    response = match &result.best {
        Some((point, _, measurement)) => response
            .with_str("best_point", &point.canonical_key())
            .with_f64("best_ms", measurement.time_ms)
            .with_str("checksum", &format!("{:016x}", measurement.checksum)),
        None => response
            .with_str("best_point", "")
            .with_f64("best_ms", result.baseline.time_ms),
    };
    response
}

/// `suggest`: store-backed recipe retrieval over the shared store.
fn execute_suggest(shared: &Shared, request: &Request) -> Response {
    let Some(entry) = shared.registry.get(&request.kernel) else {
        return Response::error(
            &request.id,
            codes::UNKNOWN_KERNEL,
            &format!("no registry kernel named `{}`", request.kernel),
        );
    };
    let region = find_regions(&entry.program)
        .into_iter()
        .find(|r| r.id == entry.region)
        .and_then(|r| extract_region(&entry.program, &r));
    let Some(region) = region else {
        return Response::error(
            &request.id,
            codes::INTERNAL,
            &format!("kernel `{}` has no extractable region", request.kernel),
        );
    };
    let program = suggest_with_sharded_store(entry.region, &region.stmt, &shared.store);
    let retrieved = program.contains("retrieved from tuning store");
    Response::ok(&request.id)
        .with_str("kernel", &request.kernel)
        .with_str("region", entry.region)
        .with_u64("retrieved", u64::from(retrieved))
        .with_str("program", &program)
}

/// `stats`: shared-store and queue counters.
fn stats_response(shared: &Shared, request: &Request) -> Response {
    Response::ok(&request.id)
        .with_u64("evals", shared.store.len() as u64)
        .with_u64("shards", shared.store.shard_count() as u64)
        .with_u64("queued", shared.sched.len() as u64)
        .with_u64("workers", shared.config.workers as u64)
        .with_u64("max_budget", shared.config.max_budget as u64)
}

/// `compact`: compact every shard, reporting aggregate statistics.
fn compact_response(shared: &Shared, request: &Request) -> Response {
    match shared.store.compact_all() {
        Ok(stats) => Response::ok(&request.id)
            .with_u64("bytes_before", stats.bytes_before)
            .with_u64("bytes_after", stats.bytes_after)
            .with_u64("evals", stats.evals as u64)
            .with_u64("prunes", stats.prunes as u64)
            .with_u64("sessions", stats.sessions as u64),
        Err(e) => Response::error(&request.id, codes::INTERNAL, &e.to_string()),
    }
}
