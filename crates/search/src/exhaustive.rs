//! Exhaustive (and stratified) enumeration of a space.

use locus_space::{Point, Space};
use locus_trace::{kv, Tracer};

use crate::{Objective, SearchModule};

/// Enumerates every point of the space in lexicographic order. When the
/// space exceeds the budget, the enumeration is *stratified*: `budget`
/// points evenly spread over the lexicographic index range, so every
/// parameter region is touched.
///
/// Like [`crate::RandomSearch`], the proposal stream is independent of
/// the observed objectives, so batched (parallel) runs are bit-identical
/// to sequential ones.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveSearch {
    next: u128,
    count: u128,
    step: u128,
    tracer: Tracer,
}

impl ExhaustiveSearch {
    /// Creates an exhaustive enumerator.
    pub fn new() -> ExhaustiveSearch {
        ExhaustiveSearch::default()
    }
}

impl SearchModule for ExhaustiveSearch {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn begin(&mut self, space: &Space, budget: usize) {
        let size = space.size();
        self.next = 0;
        if budget == 0 {
            self.count = 0;
            self.step = 1;
        } else if size <= budget as u128 {
            self.count = size;
            self.step = 1;
        } else {
            self.count = budget as u128;
            self.step = size / budget as u128;
        }
        let (count, step) = (self.count, self.step);
        self.tracer.instant("search", "exhaustive-plan", || {
            vec![
                kv("space_size", format!("{size}")),
                kv("count", format!("{count}")),
                kv("stride", format!("{step}")),
            ]
        });
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        if self.next >= self.count {
            return None;
        }
        let point = space.point_at(self.next * self.step);
        self.next += 1;
        Some(point)
    }

    fn observe(&mut self, _point: &Point, _objective: Objective, _fresh: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn finds_global_optimum_when_budget_covers_space() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = ExhaustiveSearch::default().search(&space, usize::MAX, &mut f);
        assert_eq!(out.evaluations as u128, space.size());
        let (best, value) = out.best.unwrap();
        assert_eq!(value, 0.0);
        assert_eq!(best.get("tile"), Some(&locus_space::ParamValue::Int(32)));
    }

    #[test]
    fn stratified_enumeration_respects_budget() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = ExhaustiveSearch::default().search(&space, 50, &mut f);
        assert!(out.evaluations <= 50);
        assert!(out.best.is_some());
    }

    #[test]
    fn empty_space_yields_single_trivial_point() {
        let space = Space::new();
        let mut calls = 0usize;
        let mut f = |_: &Point| {
            calls += 1;
            Objective::Value(1.0)
        };
        let out = ExhaustiveSearch::default().search(&space, 10, &mut f);
        assert_eq!(out.evaluations, 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn zero_budget_proposes_nothing() {
        let space = quadratic_space();
        let mut m = ExhaustiveSearch::default();
        m.begin(&space, 0);
        assert!(m.propose(&space).is_none());
    }

    #[test]
    fn batched_proposals_cover_the_same_stream() {
        let space = quadratic_space();
        let mut a = ExhaustiveSearch::default();
        let mut b = ExhaustiveSearch::default();
        a.begin(&space, 40);
        b.begin(&space, 40);
        let mut batched = Vec::new();
        loop {
            let batch = a.propose_batch(&space, 16);
            if batch.is_empty() {
                break;
            }
            batched.extend(batch);
        }
        let mut singles = Vec::new();
        while let Some(p) = b.propose(&space) {
            singles.push(p);
        }
        assert_eq!(batched, singles);
        assert_eq!(batched.len(), 40);
    }
}
