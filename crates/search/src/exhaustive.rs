//! Exhaustive (and stratified) enumeration of a space.

use locus_space::{Point, Space};

use crate::{Evaluator, Objective, SearchModule, SearchOutcome};

/// Enumerates every point of the space in lexicographic order. When the
/// space exceeds the budget, the enumeration is *stratified*: `budget`
/// points evenly spread over the lexicographic index range, so every
/// parameter region is touched.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveSearch;

impl SearchModule for ExhaustiveSearch {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome {
        let mut eval = Evaluator::new(budget, evaluate);
        let size = space.size();
        if size <= budget as u128 {
            for i in 0..size {
                if eval.done() {
                    break;
                }
                eval.eval(&space.point_at(i));
            }
        } else {
            let step = size / budget as u128;
            for k in 0..budget as u128 {
                if eval.done() {
                    break;
                }
                eval.eval(&space.point_at(k * step));
            }
        }
        eval.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;

    #[test]
    fn finds_global_optimum_when_budget_covers_space() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = ExhaustiveSearch.search(&space, usize::MAX, &mut f);
        assert_eq!(out.evaluations as u128, space.size());
        let (best, value) = out.best.unwrap();
        assert_eq!(value, 0.0);
        assert_eq!(best.get("tile"), Some(&locus_space::ParamValue::Int(32)));
    }

    #[test]
    fn stratified_enumeration_respects_budget() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = ExhaustiveSearch.search(&space, 50, &mut f);
        assert!(out.evaluations <= 50);
        assert!(out.best.is_some());
    }

    #[test]
    fn empty_space_yields_single_trivial_point() {
        let space = Space::new();
        let mut calls = 0usize;
        let mut f = |_: &Point| {
            calls += 1;
            Objective::Value(1.0)
        };
        let out = ExhaustiveSearch.search(&space, 10, &mut f);
        assert_eq!(out.evaluations, 1);
        assert_eq!(calls, 1);
    }
}
