//! Monte Carlo Tree Search over the decision sites of a [`Space`].
//!
//! The Locus paper frames an optimization program as a *sequence* of
//! decisions — which OR branch, which tile size, which schedule — and
//! the flat modules (random/bandit/anneal) throw that structure away.
//! Following Koo et al.'s customized MCTS for composable loop
//! transformations, [`MctsTuner`] keeps it: tree level `d` is the
//! `d`-th [`locus_space::DecisionSite`] of the space (declaration
//! order, so OR blocks and the tiles they gate sit on one root-to-leaf
//! path), an *arm* of a node is one value choice at that site, and a
//! root-to-leaf walk is a complete point.
//!
//! Mechanics:
//!
//! * **UCT selection** over mean rewards, where a finite objective `v`
//!   maps to the normalized reward `(hi - v) / (hi - lo)` against the
//!   observed range — lower objectives, higher rewards.
//! * **Lazy arm opening** (progressive widening): a node opens at most
//!   one untried arm per effective visit, so million-way sites (big
//!   tile products, permutations) never materialize their domain.
//! * **Rollout completion**: descending past the frontier completes the
//!   remaining sites uniformly at random; the tree deepens only along
//!   revisited paths.
//! * **Batch expansion**: proposals in flight add *virtual visits*
//!   (`pending`) to their arms, so one [`SearchModule::propose_batch`]
//!   round expands several distinct leaves instead of hammering the
//!   current UCT favourite.
//! * **Legality pruning at expansion**: with a [`LegalityOracle`]
//!   attached (the core driver wires `verify::legal` through one),
//!   refused candidates die in the tree — a terminal arm outright, an
//!   inner arm after repeated strikes with no legal descendant — so
//!   illegal prefixes are never proposed, let alone simulated.
//!
//! Observations are buffered and folded into the tree only when a full
//! [`OBSERVATION_BLOCK`] has arrived (see the constant's docs): the
//! proposal stream depends only on fully-integrated blocks, which makes
//! sequential and batch-parallel drives bit-identical. The module also
//! never re-proposes a point it already proposed (or was seeded with),
//! so duplicate feedback loops cannot occur; when it cannot find a new
//! candidate it declares itself done, and stays done.

use std::collections::{HashSet, VecDeque};

use locus_space::{Point, Space, SplitMix64};
use locus_trace::{kv, Tracer};

use crate::{LegalityOracle, Objective, SearchModule, OBSERVATION_BLOCK};

/// Candidate-generation attempts per `propose` call before the module
/// declares the space dry. Collisions with already-proposed points and
/// oracle refusals both consume attempts.
const MAX_PROPOSE_TRIES: usize = 128;

/// Illegal strikes after which an inner (non-terminal) arm with no
/// legal descendant yet is considered a dead prefix.
const PRUNE_STRIKES: u32 = 3;

/// One value choice at a node's decision site.
#[derive(Debug, Clone)]
struct Arm {
    /// Decision index at this site ([`locus_space::ParamKind::value_at`]).
    value: u128,
    /// Child node, created once the arm is revisited after integration.
    child: Option<usize>,
    /// Integrated visits and summed normalized rewards.
    visits: f64,
    reward: f64,
    /// In-flight proposals through this arm (virtual visits).
    pending: usize,
    /// Legal (finite-valued) outcomes seen through this arm.
    valid: u32,
    /// Refused outcomes (oracle or observed `Invalid`) at this arm.
    invalid: u32,
    /// Terminal arms only: the complete trace was already proposed.
    taken: bool,
    /// No proposal may descend through this arm any more.
    dead: bool,
}

#[derive(Debug, Clone)]
struct Node {
    /// Decision-site index (tree depth).
    site: usize,
    arms: Vec<Arm>,
}

/// What one descent produced.
enum Descent {
    /// A complete candidate: the arm path through existing nodes plus
    /// the full decision trace (path choices + rollout completion).
    Candidate(Vec<(usize, usize)>, Vec<u128>),
    /// A node saturated mid-walk; its entry arm was marked dead — retry.
    Retry,
    /// The root itself is saturated: the reachable space is exhausted.
    RootClosed,
}

/// Monte Carlo Tree Search over decision sites (see the module docs).
#[derive(Clone)]
pub struct MctsTuner {
    seed: u64,
    exploration: f64,
    sync_block: usize,
    // Per-run state, reset by `begin`.
    rng: SplitMix64,
    /// `(site arity)` per decision site, cached from the space.
    arities: Vec<u128>,
    nodes: Vec<Node>,
    /// Canonical keys of every point proposed or seeded — own dedup.
    proposed: HashSet<String>,
    /// Arm path per in-flight proposal, in proposal order.
    pending: VecDeque<Vec<(usize, usize)>>,
    /// Observed-but-unintegrated `(path, objective)` pairs.
    buffer: Vec<(Vec<(usize, usize)>, Objective)>,
    /// Observed finite-objective range for reward normalization.
    lo: f64,
    hi: f64,
    generation: u64,
    finished: bool,
    oracle: Option<LegalityOracle>,
    tracer: Tracer,
}

impl std::fmt::Debug for MctsTuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MctsTuner")
            .field("seed", &self.seed)
            .field("exploration", &self.exploration)
            .field("nodes", &self.nodes.len())
            .field("proposed", &self.proposed.len())
            .field("generation", &self.generation)
            .field("finished", &self.finished)
            .field("oracle", &self.oracle.is_some())
            .finish()
    }
}

impl MctsTuner {
    /// Creates a tuner with the default exploration constant.
    pub fn new(seed: u64) -> MctsTuner {
        MctsTuner {
            seed,
            exploration: 0.7,
            sync_block: OBSERVATION_BLOCK,
            rng: SplitMix64::new(seed),
            arities: Vec::new(),
            nodes: Vec::new(),
            proposed: HashSet::new(),
            pending: VecDeque::new(),
            buffer: Vec::new(),
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            generation: 0,
            finished: false,
            oracle: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Overrides the UCT exploration constant (rewards are normalized
    /// to `[0, 1]`, so useful values sit around `0.3..2.0`).
    pub fn with_exploration(mut self, c: f64) -> MctsTuner {
        self.exploration = c.max(0.0);
        self
    }

    /// Overrides the observation block size (default
    /// [`OBSERVATION_BLOCK`]). `1` integrates eagerly — the portfolio
    /// uses that for its short member sessions, where cross-driver
    /// bit-identity is owned by the portfolio itself.
    pub fn with_sync_block(mut self, n: usize) -> MctsTuner {
        self.sync_block = n.max(1);
        self
    }

    fn reward(&self, v: f64) -> f64 {
        if self.hi > self.lo {
            ((self.hi - v) / (self.hi - self.lo)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    /// Opens one untried arm at `node`, returning its index.
    fn open_arm(&mut self, node: usize) -> Option<usize> {
        let site = self.nodes[node].site;
        let arity = self.arities[site];
        let opened = self.nodes[node].arms.len() as u128;
        if opened >= arity {
            return None;
        }
        let value = if arity <= 1024 {
            // Small sites: pick uniformly among the untried values.
            let taken: HashSet<u128> = self.nodes[node].arms.iter().map(|a| a.value).collect();
            let untried: Vec<u128> = (0..arity).filter(|v| !taken.contains(v)).collect();
            untried[self.rng.below_usize(untried.len())]
        } else {
            // Huge sites (permutations, big products): sample indices,
            // skipping collisions with already-opened arms.
            let cap = arity.min(u64::MAX as u128) as u64;
            let mut v = u128::from(self.rng.below(cap));
            for _ in 0..8 {
                if !self.nodes[node].arms.iter().any(|a| a.value == v) {
                    break;
                }
                v = u128::from(self.rng.below(cap));
            }
            v
        };
        self.nodes[node].arms.push(Arm {
            value,
            child: None,
            visits: 0.0,
            reward: 0.0,
            pending: 0,
            valid: 0,
            invalid: 0,
            taken: false,
            dead: false,
        });
        Some(self.nodes[node].arms.len() - 1)
    }

    /// UCT choice at `node`: open a new arm while the widening schedule
    /// allows, otherwise pick the best selectable opened arm. `None`
    /// when the node is saturated.
    fn choose_arm(&mut self, node: usize) -> Option<usize> {
        let terminal = self.nodes[node].site + 1 == self.arities.len();
        let selectable: Vec<usize> = self.nodes[node]
            .arms
            .iter()
            .enumerate()
            .filter(|(_, a)| !(a.dead || terminal && a.taken))
            .map(|(i, _)| i)
            .collect();
        let n_eff: f64 = self.nodes[node]
            .arms
            .iter()
            .map(|a| a.visits + a.pending as f64)
            .sum();
        // Progressive widening: one new arm per effective visit keeps
        // the frontier growing without flooding huge sites; a node with
        // no selectable arm left may always widen past the schedule.
        let opened = self.nodes[node].arms.len();
        if selectable.is_empty() || opened as f64 <= n_eff {
            if let Some(ai) = self.open_arm(node) {
                return Some(ai);
            }
        }
        if selectable.is_empty() {
            return None;
        }
        let ln_n = n_eff.max(1.0).ln().max(0.0);
        let mut best = selectable[0];
        let mut best_score = f64::NEG_INFINITY;
        for i in selectable {
            let a = &self.nodes[node].arms[i];
            let n = a.visits + a.pending as f64;
            let q = if a.visits > 0.0 {
                a.reward / a.visits
            } else {
                0.5
            };
            let score = q + self.exploration * (ln_n / (n + 1.0)).sqrt();
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        Some(best)
    }

    /// One walk from the root: select/expand down the tree, then
    /// complete the remaining sites by uniform rollout.
    fn descend(&mut self) -> Descent {
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut trace: Vec<u128> = Vec::with_capacity(self.arities.len());
        let mut node = 0usize;
        loop {
            let Some(ai) = self.choose_arm(node) else {
                // Saturated node: kill the arm that leads here (or give
                // up entirely at the root) and let the caller retry.
                return match path.last() {
                    Some(&(pn, pa)) => {
                        self.nodes[pn].arms[pa].dead = true;
                        Descent::Retry
                    }
                    None => Descent::RootClosed,
                };
            };
            trace.push(self.nodes[node].arms[ai].value);
            path.push((node, ai));
            let depth = self.nodes[node].site;
            if depth + 1 == self.arities.len() {
                return Descent::Candidate(path, trace);
            }
            let arm = &self.nodes[node].arms[ai];
            if let Some(child) = arm.child {
                node = child;
                continue;
            }
            if arm.visits > 0.0 {
                // Revisited frontier arm: deepen the tree here.
                let child = self.nodes.len();
                self.nodes.push(Node {
                    site: depth + 1,
                    arms: Vec::new(),
                });
                self.nodes[node].arms[ai].child = Some(child);
                node = child;
                continue;
            }
            // Fresh expansion: uniform rollout over the remaining sites.
            for site in depth + 1..self.arities.len() {
                let cap = self.arities[site].min(u64::MAX as u128).max(1) as u64;
                trace.push(u128::from(self.rng.below(cap)));
            }
            return Descent::Candidate(path, trace);
        }
    }

    /// Marks a refused candidate in the tree: terminal arms die
    /// outright; inner arms accumulate strikes and die once no legal
    /// descendant has ever been seen through them.
    fn strike(&mut self, path: &[(usize, usize)], full_depth: bool) {
        let Some(&(ni, ai)) = path.last() else {
            return;
        };
        let arm = &mut self.nodes[ni].arms[ai];
        arm.invalid += 1;
        if full_depth || (arm.valid == 0 && arm.invalid >= PRUNE_STRIKES) {
            arm.dead = true;
        }
    }

    /// Folds one observed block into the tree. Uses no randomness, so
    /// integration timing cannot perturb the proposal stream.
    fn integrate(&mut self) {
        let block = std::mem::take(&mut self.buffer);
        for (_, obj) in &block {
            if let Objective::Value(v) = obj {
                if v.is_finite() {
                    self.lo = self.lo.min(*v);
                    self.hi = self.hi.max(*v);
                }
            }
        }
        for (path, obj) in &block {
            let (reward, valid) = match obj {
                Objective::Value(v) if v.is_finite() => (self.reward(*v), true),
                _ => (0.0, false),
            };
            for &(ni, ai) in path {
                let arm = &mut self.nodes[ni].arms[ai];
                arm.visits += 1.0;
                arm.reward += reward;
                arm.pending = arm.pending.saturating_sub(1);
                if valid {
                    arm.valid += 1;
                }
            }
            if matches!(obj, Objective::Invalid) {
                self.strike(path, path.len() == self.arities.len());
            }
        }
        self.generation += 1;
        let (generation, nodes, lo, hi) = (self.generation, self.nodes.len(), self.lo, self.hi);
        self.tracer.instant("search", "mcts-integrate", || {
            let mut args = vec![
                kv("generation", generation),
                kv("block", block.len() as u64),
                kv("nodes", nodes as u64),
            ];
            if hi >= lo {
                args.push(kv("lo_ms", lo));
                args.push(kv("hi_ms", hi));
            }
            args
        });
    }

    /// Walks (creating nodes and arms as needed) the full-depth path of
    /// a seeded trace, so warm-start elites shape early selection.
    fn force_path(&mut self, trace: &[u128]) -> Vec<(usize, usize)> {
        let mut path = Vec::with_capacity(trace.len());
        let mut node = 0usize;
        for (depth, &value) in trace.iter().enumerate() {
            let ai = match self.nodes[node].arms.iter().position(|a| a.value == value) {
                Some(ai) => ai,
                None => {
                    self.nodes[node].arms.push(Arm {
                        value,
                        child: None,
                        visits: 0.0,
                        reward: 0.0,
                        pending: 0,
                        valid: 0,
                        invalid: 0,
                        taken: false,
                        dead: false,
                    });
                    self.nodes[node].arms.len() - 1
                }
            };
            path.push((node, ai));
            if depth + 1 == trace.len() {
                self.nodes[node].arms[ai].taken = true;
                break;
            }
            node = match self.nodes[node].arms[ai].child {
                Some(c) => c,
                None => {
                    let c = self.nodes.len();
                    self.nodes.push(Node {
                        site: depth + 1,
                        arms: Vec::new(),
                    });
                    self.nodes[node].arms[ai].child = Some(c);
                    c
                }
            };
        }
        path
    }
}

impl Default for MctsTuner {
    fn default() -> MctsTuner {
        MctsTuner::new(0x3c75)
    }
}

impl SearchModule for MctsTuner {
    fn name(&self) -> &str {
        "mcts (decision-site tree search)"
    }

    fn begin(&mut self, space: &Space, _budget: usize) {
        self.rng = SplitMix64::new(self.seed);
        self.arities = space
            .decision_sites()
            .into_iter()
            .map(|s| s.arity)
            .collect();
        self.nodes = vec![Node {
            site: 0,
            arms: Vec::new(),
        }];
        self.proposed.clear();
        self.pending.clear();
        self.buffer.clear();
        self.lo = f64::INFINITY;
        self.hi = f64::NEG_INFINITY;
        self.generation = 0;
        self.finished = false;
        let sites = self.arities.len();
        self.tracer.instant("search", "mcts-begin", || {
            vec![
                kv("sites", sites as u64),
                kv("size", format!("{}", space.size())),
            ]
        });
    }

    fn seed_observations(&mut self, space: &Space, prior: &[(Point, f64)]) {
        let mut seeded: Vec<(Vec<(usize, usize)>, f64)> = Vec::new();
        for (point, value) in prior {
            if !value.is_finite() {
                continue;
            }
            let Some(trace) = space.trace_of(point) else {
                continue;
            };
            // Never re-propose an elite the store already measured —
            // both under its stored key and under the snapped key its
            // trace decodes to.
            self.proposed.insert(point.canonical_key());
            if let Some(snapped) = space.point_from_trace(&trace) {
                self.proposed.insert(snapped.canonical_key());
            }
            self.lo = self.lo.min(*value);
            self.hi = self.hi.max(*value);
            if !trace.is_empty() {
                seeded.push((self.force_path(&trace), *value));
            }
        }
        for (path, value) in &seeded {
            let reward = self.reward(*value);
            for &(ni, ai) in path {
                let arm = &mut self.nodes[ni].arms[ai];
                arm.visits += 1.0;
                arm.reward += reward;
                arm.valid += 1;
            }
        }
        let count = seeded.len() as u64;
        self.tracer
            .instant("search", "mcts-seed", || vec![kv("elites", count)]);
    }

    fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    fn attach_pruner(&mut self, oracle: &LegalityOracle) {
        self.oracle = Some(std::sync::Arc::clone(oracle));
    }

    fn propose(&mut self, space: &Space) -> Option<Point> {
        if self.finished {
            return None;
        }
        if self.arities.is_empty() {
            // A space without parameters has a single trivial point.
            let point = Point::new();
            if self.proposed.insert(point.canonical_key()) {
                self.pending.push_back(Vec::new());
                return Some(point);
            }
            self.finished = true;
            return None;
        }
        for _ in 0..MAX_PROPOSE_TRIES {
            let (path, trace) = match self.descend() {
                Descent::Candidate(path, trace) => (path, trace),
                Descent::Retry => continue,
                Descent::RootClosed => {
                    self.finished = true;
                    return None;
                }
            };
            let point = space
                .point_from_trace(&trace)
                .expect("descent stays inside the space");
            let key = point.canonical_key();
            let full_depth = path.len() == self.arities.len();
            if self.proposed.contains(&key) {
                if full_depth {
                    // Full-depth re-selection of an already-proposed
                    // leaf: close the arm so selection moves on.
                    let (ni, ai) = *path.last().expect("non-empty path");
                    self.nodes[ni].arms[ai].taken = true;
                }
                continue;
            }
            if let Some(oracle) = &self.oracle {
                if !oracle(&point) {
                    self.proposed.insert(key);
                    self.strike(&path, full_depth);
                    let depth = path.len() as u64;
                    self.tracer.instant("search", "mcts-prune", || {
                        vec![kv("depth", depth), kv("point", point.canonical_key())]
                    });
                    continue;
                }
            }
            self.proposed.insert(key);
            if full_depth {
                let (ni, ai) = *path.last().expect("non-empty path");
                self.nodes[ni].arms[ai].taken = true;
            }
            for &(ni, ai) in &path {
                self.nodes[ni].arms[ai].pending += 1;
            }
            let (depth, generation) = (path.len() as u64, self.generation);
            self.pending.push_back(path);
            self.tracer.instant("search", "mcts-propose", || {
                vec![
                    kv("depth", depth),
                    kv("generation", generation),
                    kv("point", point.canonical_key()),
                ]
            });
            return Some(point);
        }
        self.finished = true;
        None
    }

    fn observe(&mut self, _point: &Point, objective: Objective, _fresh: bool) {
        let Some(path) = self.pending.pop_front() else {
            return;
        };
        self.buffer.push((path, objective));
        if self.buffer.len() >= self.sync_block {
            self.integrate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use locus_space::{ParamDef, ParamKind};

    #[test]
    fn converges_on_the_quadratic_space() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = MctsTuner::new(3).search(&space, 160, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 1.0, "mcts best {best}");
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = MctsTuner::new(7).search(&space, 60, &mut f1);
        let b = MctsTuner::new(7).search(&space, 60, &mut f2);
        assert_eq!(a, b);
    }

    #[test]
    fn never_reproposes_a_point() {
        let space = quadratic_space();
        let mut m = MctsTuner::new(11);
        m.begin(&space, 200);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0;
        while let Some(p) = m.propose(&space) {
            assert!(seen.insert(p.canonical_key()), "duplicate proposal");
            m.observe(&p, quadratic_objective(&p), true);
            count += 1;
            if count >= 300 {
                break;
            }
        }
        assert!(count > 60, "proposed only {count} points");
    }

    #[test]
    fn exhausts_tiny_spaces_and_stays_finished() {
        let space: Space = vec![ParamDef::new("x", ParamKind::Bool)]
            .into_iter()
            .collect();
        let mut m = MctsTuner::new(5);
        m.begin(&space, 50);
        let mut points = Vec::new();
        while let Some(p) = m.propose(&space) {
            m.observe(&p, Objective::Value(1.0), true);
            points.push(p);
        }
        assert_eq!(points.len(), 2, "only two points exist");
        assert!(m.propose(&space).is_none(), "finished is sticky");
    }

    #[test]
    fn empty_spaces_yield_one_trivial_point() {
        let space = Space::new();
        let mut m = MctsTuner::new(1);
        m.begin(&space, 10);
        assert_eq!(m.propose(&space), Some(Point::new()));
        m.observe(&Point::new(), Objective::Value(1.0), true);
        assert_eq!(m.propose(&space), None);
    }

    #[test]
    fn oracle_refusals_are_never_proposed() {
        let space = quadratic_space();
        let mut m = MctsTuner::new(13);
        // Refuse every point whose tile exceeds 32.
        let oracle: crate::LegalityOracle = std::sync::Arc::new(
            |p: &Point| matches!(p.get("tile"), Some(locus_space::ParamValue::Int(v)) if *v <= 32),
        );
        m.attach_pruner(&oracle);
        m.begin(&space, 120);
        let mut proposals = 0;
        while let Some(p) = m.propose(&space) {
            let tile = p.get("tile").and_then(|v| v.as_int()).unwrap();
            assert!(tile <= 32, "illegal point proposed: tile {tile}");
            m.observe(&p, quadratic_objective(&p), true);
            proposals += 1;
            if proposals >= 200 {
                break;
            }
        }
        assert!(proposals > 20, "legal region barely explored: {proposals}");
    }

    #[test]
    fn invalid_feedback_kills_the_subtree() {
        // Space whose second site is illegal for alternative 1: after a
        // few strikes MCTS must stop proposing beneath it.
        let space = quadratic_space();
        let mut m = MctsTuner::new(17).with_sync_block(1);
        m.begin(&space, 400);
        let mut bad_after_grace = 0;
        for i in 0..200 {
            let Some(p) = m.propose(&space) else { break };
            let bad = matches!(p.get("alg"), Some(locus_space::ParamValue::Choice(0)));
            let obj = if bad {
                Objective::Invalid
            } else {
                quadratic_objective(&p)
            };
            if bad && i > 120 {
                bad_after_grace += 1;
            }
            m.observe(&p, obj, true);
        }
        // The `alg = a` half of the space (288 points) must be mostly
        // abandoned well before it is enumerated.
        assert!(
            bad_after_grace < 20,
            "still proposing into the dead subtree: {bad_after_grace}"
        );
    }

    #[test]
    fn seeding_warm_starts_without_reproposing_elites() {
        let space = quadratic_space();
        let elite = {
            let mut p = Point::new();
            p.set("tile", locus_space::ParamValue::Int(32));
            p.set("alg", locus_space::ParamValue::Choice(1));
            p.set("n", locus_space::ParamValue::Int(10));
            p
        };
        let mut m = MctsTuner::new(23);
        m.begin(&space, 80);
        m.seed_observations(&space, &[(elite.clone(), 0.0), (space.point_at(7), 9.0)]);
        let elite_key = elite.canonical_key();
        for _ in 0..80 {
            let Some(p) = m.propose(&space) else { break };
            assert_ne!(p.canonical_key(), elite_key, "re-proposed the elite");
            m.observe(&p, quadratic_objective(&p), true);
        }
    }

    #[test]
    fn non_finite_feedback_does_not_panic_or_poison() {
        let space = quadratic_space();
        let mut i = 0usize;
        let mut f = |p: &Point| {
            i += 1;
            match i % 4 {
                0 => Objective::Value(f64::NAN),
                1 => Objective::Value(f64::INFINITY),
                2 => Objective::Error,
                _ => quadratic_objective(p),
            }
        };
        let out = MctsTuner::new(29).search(&space, 60, &mut f);
        let (_, best) = out.best.expect("finite evaluations exist");
        assert!(best.is_finite());
    }
}
