//! Portfolio search: multiple search modules combined in one run.
//!
//! The paper's Sec. VII names this as future work: "we plan to combine
//! the use of multiple search modules in the same run to speed up the
//! search process". This module implements it: the budget is spent in
//! rounds, each round split between the member modules; all members
//! share one memo table (through the crate's common evaluator) so no variant
//! is ever assessed twice, and each member resumes from the shared
//! best-so-far. Budget allocation across rounds shifts toward members
//! that recently improved the shared best (the same credit idea the
//! bandit uses across techniques, lifted to whole modules).

use locus_space::{Point, Space};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Evaluator, Objective, SearchModule, SearchOutcome};

/// Identifier of a member module in a [`PortfolioSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Member {
    /// The OpenTuner-like bandit ensemble.
    Bandit,
    /// The Hyperopt-like annealer.
    Anneal,
    /// Uniform random sampling.
    Random,
}

/// A portfolio over the built-in search modules.
///
/// (Member modules are re-instantiated per round with derived seeds; a
/// fully generic portfolio over `dyn SearchModule` would need members to
/// expose resumable state, which the built-ins do via their seeds.)
#[derive(Debug, Clone)]
pub struct PortfolioSearch {
    seed: u64,
    members: Vec<Member>,
    /// Evaluations per member per round.
    round_share: usize,
}

impl PortfolioSearch {
    /// A portfolio of the bandit, the annealer, and uniform random.
    pub fn new(seed: u64) -> PortfolioSearch {
        PortfolioSearch {
            seed,
            members: vec![Member::Bandit, Member::Anneal, Member::Random],
            round_share: 6,
        }
    }

    /// Overrides the member list.
    pub fn with_members(mut self, members: Vec<Member>) -> PortfolioSearch {
        self.members = members;
        self
    }

    /// Overrides the per-member evaluations per round.
    pub fn with_round_share(mut self, share: usize) -> PortfolioSearch {
        self.round_share = share.max(1);
        self
    }
}

impl Default for PortfolioSearch {
    fn default() -> PortfolioSearch {
        PortfolioSearch::new(0x90f0)
    }
}

impl SearchModule for PortfolioSearch {
    fn name(&self) -> &str {
        "portfolio (multi-module)"
    }

    fn search(
        &mut self,
        space: &Space,
        budget: usize,
        evaluate: &mut dyn FnMut(&Point) -> Objective,
    ) -> SearchOutcome {
        let mut eval = Evaluator::new(budget, evaluate);
        let mut rng = StdRng::seed_from_u64(self.seed);
        if self.members.is_empty() {
            return eval.finish();
        }
        // Per-member improvement credit.
        let mut credit = vec![1.0f64; self.members.len()];
        let mut round = 0u64;
        while !eval.done() {
            // Allocate this round's shares proportionally to credit.
            let total: f64 = credit.iter().sum();
            let mut progressed = false;
            for (mi, member) in self.members.iter().enumerate() {
                if eval.done() {
                    break;
                }
                let share = ((credit[mi] / total) * (self.round_share * self.members.len()) as f64)
                    .round()
                    .max(1.0) as usize;
                let before = eval.best_value();
                let spent = run_member(
                    *member,
                    self.seed ^ round.wrapping_mul(0x9e37_79b9) ^ mi as u64,
                    space,
                    share,
                    &mut eval,
                    &mut rng,
                );
                progressed |= spent > 0;
                let improved = match (before, eval.best_value()) {
                    (None, Some(_)) => true,
                    (Some(b), Some(a)) => a < b,
                    _ => false,
                };
                credit[mi] = (credit[mi] * 0.7) + if improved { 1.0 } else { 0.1 };
            }
            if !progressed {
                break; // space exhausted
            }
            round += 1;
        }
        eval.finish()
    }
}

/// Runs one member for up to `share` fresh evaluations against the
/// shared evaluator. Returns the number of fresh evaluations spent.
fn run_member(
    member: Member,
    seed: u64,
    space: &Space,
    share: usize,
    eval: &mut Evaluator<'_>,
    rng: &mut StdRng,
) -> usize {
    let mut spent = 0usize;
    let mut proposals = 0usize;
    // Warm start from the shared best.
    let mut current = eval.best_point().cloned();
    let mut member_rng = StdRng::seed_from_u64(seed);
    let mut temperature = 0.2f64;
    while spent < share && !eval.done() && proposals < share * 16 + 16 {
        proposals += 1;
        let proposal = match member {
            Member::Random => space.random_point(&mut member_rng),
            Member::Bandit => match &current {
                Some(best) if member_rng.random_bool(0.75) => {
                    let strength = 1 + member_rng.random_range(0..3);
                    space.mutate(best, strength, &mut member_rng)
                }
                _ => space.random_point(&mut member_rng),
            },
            Member::Anneal => match &current {
                Some(point) if !member_rng.random_bool(0.15) => {
                    space.mutate(point, 1, &mut member_rng)
                }
                _ => space.random_point(&mut member_rng),
            },
        };
        let before = eval.best_value();
        let (objective, fresh) = eval.eval(&proposal);
        if fresh && !matches!(objective, Objective::Invalid) {
            spent += 1;
        }
        // Member-local acceptance (annealing keeps a walking point).
        match (member, objective) {
            (Member::Anneal, Objective::Value(v)) => {
                let accept = match (&current, before) {
                    (Some(_), Some(b)) => {
                        let denom = (temperature * b.abs()).max(1e-12);
                        let mut prob = (-(v - b) / denom).exp();
                        if !prob.is_finite() {
                            prob = 0.0;
                        }
                        v < b || member_rng.random_bool(prob.clamp(0.0, 1.0))
                    }
                    _ => true,
                };
                if accept {
                    current = Some(proposal);
                }
                temperature *= 0.95;
            }
            (_, Objective::Value(_)) => {
                current = eval.best_point().cloned();
            }
            _ => {}
        }
        let _ = rng;
    }
    spent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::*;
    use crate::{BanditTuner, RandomSearch};

    #[test]
    fn portfolio_converges() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = PortfolioSearch::new(2).search(&space, 120, &mut f);
        let (_, best) = out.best.unwrap();
        assert!(best < 0.5, "portfolio best {best}");
    }

    #[test]
    fn members_share_the_memo_table() {
        let space = quadratic_space();
        let mut calls = 0usize;
        let mut f = |p: &Point| {
            calls += 1;
            quadratic_objective(p)
        };
        let out = PortfolioSearch::new(3).search(&space, 60, &mut f);
        // Every objective call corresponds to a distinct point: no
        // member re-assessed another member's variant.
        assert_eq!(calls, out.evaluations + out.invalid);
        assert!(out.duplicates > 0, "members did propose overlapping points");
    }

    #[test]
    fn respects_budget_and_is_deterministic() {
        let space = quadratic_space();
        let mut f1 = quadratic_objective;
        let mut f2 = quadratic_objective;
        let a = PortfolioSearch::new(9).search(&space, 30, &mut f1);
        let b = PortfolioSearch::new(9).search(&space, 30, &mut f2);
        assert_eq!(a.evaluations, 30);
        assert_eq!(a.best, b.best);
    }

    #[test]
    fn no_worse_than_its_weakest_member_on_average() {
        let space = quadratic_space();
        let budget = 40;
        let mut pf_total = 0.0;
        let mut rnd_total = 0.0;
        let mut bandit_total = 0.0;
        for seed in 0..5 {
            let mut f = quadratic_objective;
            pf_total += PortfolioSearch::new(seed)
                .search(&space, budget, &mut f)
                .best
                .unwrap()
                .1;
            let mut f = quadratic_objective;
            rnd_total += RandomSearch::new(seed)
                .search(&space, budget, &mut f)
                .best
                .unwrap()
                .1;
            let mut f = quadratic_objective;
            bandit_total += BanditTuner::new(seed)
                .search(&space, budget, &mut f)
                .best
                .unwrap()
                .1;
        }
        let worst = rnd_total.max(bandit_total);
        assert!(
            pf_total <= worst * 1.2,
            "portfolio {pf_total} vs worst member {worst}"
        );
    }

    #[test]
    fn custom_member_lists_work() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = PortfolioSearch::new(4)
            .with_members(vec![Member::Random])
            .with_round_share(10)
            .search(&space, 20, &mut f);
        assert_eq!(out.evaluations, 20);
    }

    #[test]
    fn empty_member_list_is_harmless() {
        let space = quadratic_space();
        let mut f = quadratic_objective;
        let out = PortfolioSearch::new(1)
            .with_members(Vec::new())
            .search(&space, 10, &mut f);
        assert_eq!(out.evaluations, 0);
    }
}
